"""Figure 7 benchmark: query run-time per strategy.

Each strategy's end-to-end query evaluation is timed individually by
pytest-benchmark (the authoritative numbers), and the Figure 7 table of
per-phase means is regenerated for the summary.
"""

import pytest
from conftest import register_report

from repro.core import STRATEGIES
from repro.experiments import fig7_runtime

_reported = False


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fig7_runtime(benchmark, context, strategy):
    gamma = context.workload.items[1]
    answer = benchmark(
        context.index.query, gamma, context.scale.max_k, strategy=strategy
    )
    assert len(answer.seeds) >= 1

    global _reported
    if not _reported:
        _reported = True
        result = fig7_runtime.run(context)
        register_report("Figure 7 - run-time comparison", result.render())
        means = result.strategy_means()
        # Everything answers in milliseconds; the full-traversal exact
        # search is the slowest retrieval.
        assert all(v < 100.0 for v in means.values())
        assert means["exact-knn"] >= means["approx-knn-sel"]
