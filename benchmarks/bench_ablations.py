"""Ablation benchmarks for the design choices DESIGN.md calls out.

* KL sidedness in retrieval (right vs left vs symmetrized);
* sensitivity of the neighbor-selection gap threshold (paper: 0.005);
* index size ``h`` vs accuracy and query time.

The index-size ablation rebuilds indexes, so it runs at a reduced
query count; the others reuse the shared context directly.
"""

from conftest import register_report

from repro.experiments import ablations
from repro.ranking import importance_weights, select_neighbors
from repro.simplex import kl_divergence_matrix

import numpy as np


def test_ablation_kl_side(benchmark, context):
    gamma = context.workload.items[4]
    divs = benchmark(
        kl_divergence_matrix, context.index.index_points, gamma
    )
    assert divs.shape == (context.index.num_index_points,)

    result = ablations.run_kl_side(context)
    register_report("Ablation - KL sidedness", result.render())
    assert set(result.distances) == {"right (paper)", "left", "symmetrized"}


def test_ablation_selection_threshold(benchmark, context):
    gamma = context.workload.items[5]
    divs = np.sort(kl_divergence_matrix(context.index.index_points, gamma))
    weights = importance_weights(divs[:10], context.scale.num_topics)
    keep = benchmark(select_neighbors, weights)
    assert 1 <= keep <= 10

    result = ablations.run_selection_threshold(context)
    register_report(
        "Ablation - selection threshold", result.render()
    )
    # More lists survive a larger threshold (the stop is harder to hit).
    kept = [result.mean_lists_kept[t] for t in result.thresholds]
    assert all(a <= b + 1e-9 for a, b in zip(kept, kept[1:]))


def test_ablation_ad_alpha(benchmark, context):
    from repro.bbtree import inflex_search

    gamma = context.workload.items[2]
    benchmark(inflex_search, context.index.tree, gamma)

    result = ablations.run_ad_alpha(context)
    register_report("Ablation - Anderson-Darling alpha", result.render())
    # Direction: larger alpha -> stopping is harder -> more leaves and
    # (weakly) better recall.
    leaves = [result.mean_leaves[a] for a in result.alphas]
    assert all(a <= b + 1e-9 for a, b in zip(leaves, leaves[1:]))
    assert (
        result.recall_at_10[result.alphas[-1]]
        >= result.recall_at_10[result.alphas[0]] - 0.05
    )


def test_ablation_index_size(benchmark, context):
    # Time one query against the full-size index as the reference op.
    gamma = context.workload.items[6]
    benchmark(context.index.query, gamma, context.scale.max_k)

    small = context.scale.num_index_points // 8
    large = context.scale.num_index_points // 2
    result = ablations.run_index_size(context, sizes=(small, large))
    register_report("Ablation - index size", result.render())
    # More index points should not hurt accuracy.
    assert (
        result.mean_distance[large] <= result.mean_distance[small] + 0.05
    )
