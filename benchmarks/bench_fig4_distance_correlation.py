"""Figure 4 benchmark: KL vs Kendall-tau correlation.

Times the top-list Kendall-tau computation (the distance the whole
evaluation is built on) and regenerates the Figure 4 correlation.
"""

from conftest import register_report

from repro.experiments import fig4_distance_correlation
from repro.ranking import kendall_tau_top


def test_fig4_distance_correlation(benchmark, context):
    list_a = context.index.seed_lists[0]
    list_b = context.index.seed_lists[1]
    value = benchmark(kendall_tau_top, list_a, list_b)
    assert 0.0 <= value <= 1.0

    result = fig4_distance_correlation.run(context)
    register_report(
        "Figure 4 - distance correlation",
        result.render() + "\n\n" + result.render_plot(),
    )
    # The paper's core assumption: strong positive correlation.
    assert result.pearson > 0.2
