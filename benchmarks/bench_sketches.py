"""Sketch-vs-retrieval crossover benchmark -> ``BENCH_sketches.json``.

The issue's acceptance bar: on a *far-from-index* query mix the
composed-sketch answer must close the quality gap — its spread gap (to
a fresh large-sample referee's own greedy answer) must be no larger
than the gap of the degraded nearest-neighbor answers INFLEX falls
back to today.  On a *near-index* mix full INFLEX retrieval is
expected to stay competitive; the two mixes together chart the
accuracy/latency crossover between the strategies.

Three answering paths run on the same index and the same query mixes:

* **inflex** — the paper's full pipeline (bb-tree search, weighting,
  rank aggregation);
* **inflex-degraded** — the nearest neighbor's precomputed list, i.e.
  what a far query or expired deadline degrades to without a bank;
* **sketch** — gamma-weighted composition over per-topic RR pools with
  lazy-greedy max coverage (no retrieval at all).

Quality is judged by a referee the strategies cannot influence: for
every query a fresh 4000-set RR index is sampled at gamma_q itself,
and each answer's seed set is scored by referee coverage against the
referee's own greedy selection.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import register_report

from repro.core import InflexConfig, InflexIndex, SketchConfig
from repro.graph import interest_topic_graph
from repro.im.imm import RRIndex, RRSampler
from repro.serving import build_far_mix
from repro.sketches import SketchBank

NUM_NODES = 400
NUM_TOPICS = 4
NUM_ITEMS = 60
NUM_INDEX_POINTS = 12
SEED_LIST_LENGTH = 10
SKETCH_SETS = 2000
K = 10
QUERIES_PER_MIX = 10
REFEREE_SETS = 4000

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sketches.json"


def _graph():
    return interest_topic_graph(
        NUM_NODES,
        NUM_TOPICS,
        topics_per_node=1,
        base_strength=0.2,
        seed=307,
    )


def _index(graph):
    rng = np.random.default_rng(311)
    catalog = rng.dirichlet(np.full(NUM_TOPICS, 0.7), size=NUM_ITEMS)
    config = InflexConfig(
        num_index_points=NUM_INDEX_POINTS,
        num_dirichlet_samples=2000,
        seed_list_length=SEED_LIST_LENGTH,
        knn=4,
        leaf_size=4,
        seed=313,
    )
    return InflexIndex.build(graph, catalog, config)


def _near_queries(index):
    """Queries drawn from the catalog-fitted Dirichlet: the workload
    the index points were clustered to cover."""
    return index.dirichlet.sample(QUERIES_PER_MIX, seed=317)


def _far_queries(index):
    gammas, min_kl = build_far_mix(
        NUM_TOPICS,
        index.index_points,
        num_distinct=QUERIES_PER_MIX,
        seed=331,
    )
    return gammas, min_kl


def _evaluate(index, bank, queries, sampler):
    """Per-query spread gaps and latencies of the three paths."""
    gaps = {"inflex": [], "inflex_degraded": [], "sketch": []}
    latencies = {"inflex": [], "inflex_degraded": [], "sketch": []}
    for i, gamma in enumerate(queries):
        referee = RRIndex(
            *sampler.sample(gamma, REFEREE_SETS, seed=337, request=100 + i),
            index.graph.num_nodes,
        )
        best_seeds, _ = referee.greedy_select(K)
        best = referee.spread_of(best_seeds)

        index.attach_sketches(None)
        start = time.perf_counter()
        full = index.query(gamma, K, strategy="inflex")
        latencies["inflex"].append(time.perf_counter() - start)

        start = time.perf_counter()
        degraded = index.query(gamma, K, deadline_ms=1e-7)
        latencies["inflex_degraded"].append(time.perf_counter() - start)
        assert degraded.degraded and degraded.reason == "deadline"

        index.attach_sketches(bank)
        start = time.perf_counter()
        sketch = index.query(gamma, K, strategy="sketch")
        latencies["sketch"].append(time.perf_counter() - start)

        for name, answer in (
            ("inflex", full),
            ("inflex_degraded", degraded),
            ("sketch", sketch),
        ):
            spread = referee.spread_of(list(answer.seeds))
            gaps[name].append(1.0 - spread / best)
    return gaps, latencies


def _summarize(gaps, latencies):
    return {
        name: {
            "mean_spread_gap": round(float(np.mean(gaps[name])), 4),
            "max_spread_gap": round(float(np.max(gaps[name])), 4),
            "median_latency_ms": round(
                float(np.median(latencies[name])) * 1000, 3
            ),
        }
        for name in gaps
    }


def test_sketch_accuracy_latency_crossover(benchmark):
    graph = _graph()
    index = _index(graph)
    bank = SketchBank.build(
        graph, SketchConfig(num_sets=SKETCH_SETS, seed=347)
    )

    # Worker invariance end to end: a 2-worker bank must produce the
    # same composed answers as the serial one.
    bank_wide = SketchBank.build(
        graph, SketchConfig(num_sets=SKETCH_SETS, seed=347), workers=2
    )
    workers_identical = all(
        np.array_equal(array, bank_wide.arrays()[name])
        for name, array in bank.arrays().items()
    )
    assert workers_identical, "sketch bank differs between 1 and 2 workers"

    near = _near_queries(index)
    far, far_min_kl = _far_queries(index)

    # Micro-op for pytest-benchmark: one composed sketch query.
    index.attach_sketches(bank)
    benchmark(lambda: index.query(near[0], K, strategy="sketch"))

    with RRSampler(graph) as sampler:
        near_gaps, near_lat = _evaluate(index, bank, near, sampler)
        far_gaps, far_lat = _evaluate(index, bank, far, sampler)

    near_summary = _summarize(near_gaps, near_lat)
    far_summary = _summarize(far_gaps, far_lat)
    sketch_far = far_summary["sketch"]["mean_spread_gap"]
    degraded_far = far_summary["inflex_degraded"]["mean_spread_gap"]

    report = {
        "graph": {
            "num_nodes": NUM_NODES,
            "num_topics": NUM_TOPICS,
            "num_arcs": graph.num_arcs,
        },
        "config": {
            "num_index_points": NUM_INDEX_POINTS,
            "seed_list_length": SEED_LIST_LENGTH,
            "sketch_sets_per_topic": SKETCH_SETS,
            "k": K,
            "queries_per_mix": QUERIES_PER_MIX,
            "referee_sets": REFEREE_SETS,
        },
        "near_mix": near_summary,
        "far_mix": far_summary,
        "far_min_kl": {
            "min": round(float(far_min_kl.min()), 4),
            "max": round(float(far_min_kl.max()), 4),
        },
        "far_gap_sketch_vs_inflex_degraded": {
            "sketch": sketch_far,
            "inflex_degraded": degraded_far,
            "sketch_no_worse": bool(sketch_far <= degraded_far),
        },
        "workers_identical_1_vs_2": workers_identical,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"k={K}, {QUERIES_PER_MIX} queries/mix, "
        f"{SKETCH_SETS} sets/topic, referee={REFEREE_SETS} sets",
        "  near mix (mean gap / median ms):",
    ]
    for name in ("inflex", "inflex_degraded", "sketch"):
        lines.append(
            f"    {name:<16} {near_summary[name]['mean_spread_gap']:7.4f}"
            f" / {near_summary[name]['median_latency_ms']:8.3f} ms"
        )
    lines.append(
        f"  far mix (min-KL {report['far_min_kl']['min']}.."
        f"{report['far_min_kl']['max']}):"
    )
    for name in ("inflex", "inflex_degraded", "sketch"):
        lines.append(
            f"    {name:<16} {far_summary[name]['mean_spread_gap']:7.4f}"
            f" / {far_summary[name]['median_latency_ms']:8.3f} ms"
        )
    lines.append(
        f"  far-mix bar: sketch gap {sketch_far:.4f} <= "
        f"degraded gap {degraded_far:.4f}: "
        f"{sketch_far <= degraded_far}"
    )
    lines.append(f"  1 vs 2 workers identical: {workers_identical}")
    register_report(
        "sketch crossover (BENCH_sketches.json)", "\n".join(lines)
    )

    assert sketch_far <= degraded_far + 1e-9, (
        f"far-mix sketch spread gap {sketch_far:.4f} exceeds the "
        f"inflex degraded-answer gap {degraded_far:.4f}"
    )
