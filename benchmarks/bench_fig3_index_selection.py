"""Figure 3 benchmark: index-point selection pipeline.

Times the offline selection machinery (Dirichlet MLE + sampling +
Bregman K-means++) at a reduced size and regenerates the coverage
comparison of Figure 3.
"""

from conftest import register_report

from repro.clustering import bregman_kmeans
from repro.divergence import KLDivergence
from repro.experiments import fig3_index_selection
from repro.simplex import fit_dirichlet_mle


def test_fig3_index_selection(benchmark, context):
    catalog = context.dataset.item_topics

    def select_index_points():
        dirichlet = fit_dirichlet_mle(catalog)
        samples = dirichlet.sample(2000, seed=1)
        return bregman_kmeans(samples, 32, KLDivergence(), seed=2).centroids

    centroids = benchmark(select_index_points)
    assert centroids.shape == (32, context.scale.num_topics)

    result = fig3_index_selection.run(context)
    register_report(
        "Figure 3 - index selection",
        result.render() + "\n\n" + result.render_plot(),
    )
    inflex = result.coverage["dirichlet+kmeans++ (INFLEX)"]
    uniform = result.coverage["uniform simplex (space-based)"]
    assert inflex < uniform
