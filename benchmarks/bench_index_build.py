"""Index-build engine benchmark -> ``BENCH_index_build.json``.

Builds the issue's h=200, eps=0.1 index with the IMM engine and
compares it against the engines it supersedes at matched accuracy:

* **imm** — the full 200-point build is timed end to end (one shared
  :class:`~repro.im.imm.RRSampler` per batch, as production builds
  run).
* **celf++-mc** — timed on a deterministic sample of index points and
  extrapolated to 200 (a full CELF++-MC build takes ~an hour, which is
  exactly the point of this benchmark).
* **ris** — the legacy sequential sampler, timed on the full 200
  points.

Accuracy is matched, not assumed: on the sampled points the seeds of
imm and celf++-mc are evaluated with one shared fresh-randomness
Monte-Carlo estimator and the mean spread ratio must stay within 2%.
Determinism is part of the acceptance bar too: the 200 imm seed lists
must be bit-identical for 1 and 4 sampling workers.

Acceptance bar from the issue: imm >= 5x faster than celf++-mc at
matched spread (within 2%), recorded in ``BENCH_index_build.json``.

``test_paper_scale_imm_build`` additionally records the ROADMAP's
outstanding follow-up from the imm-default flip: the full h=1000,
100k-Dirichlet-sample laptop build (Dirichlet MLE -> cloud sampling ->
Bregman K-means++ -> 1000 IMM seed lists -> bb-tree), end to end on
one core, merged into the same JSON under ``paper_scale``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import register_report

from repro.core.offline import offline_seed_list, offline_seed_lists_batch
from repro.graph import interest_topic_graph
from repro.propagation import estimate_spread
from repro.simplex.sampling import sample_uniform_simplex

NUM_NODES = 300
NUM_TOPICS = 4
NUM_POINTS = 200  # h from the issue's acceptance criteria
SEED_LIST_LENGTH = 10
IMM_EPSILON = 0.1
#: celf++-mc is timed on this many sampled points and extrapolated.
CELF_SAMPLE_POINTS = 5
CELF_SIMULATIONS = 200
RIS_NUM_SETS = 3000
EVAL_SIMULATIONS = 2000
#: Acceptance bars from the issue.
SPEEDUP_THRESHOLD = 5.0
SPREAD_MATCH_TOLERANCE = 0.02

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_index_build.json"


def _graph():
    return interest_topic_graph(
        NUM_NODES,
        NUM_TOPICS,
        topics_per_node=1,
        base_strength=0.2,
        seed=211,
    )


def _index_points():
    return sample_uniform_simplex(NUM_POINTS, NUM_TOPICS, seed=223)


def _item_seeds():
    return [1000 + i for i in range(NUM_POINTS)]


def test_imm_vs_celfpp_index_build(benchmark):
    graph = _graph()
    points = _index_points()
    item_seeds = _item_seeds()

    # Micro-op for pytest-benchmark: one IMM seed-list extraction.
    benchmark(
        lambda: offline_seed_list(
            graph,
            points[0],
            SEED_LIST_LENGTH,
            engine="imm",
            imm_epsilon=IMM_EPSILON,
            seed=item_seeds[0],
        )
    )

    # Full h=200 IMM build, timed end to end.
    start = time.perf_counter()
    imm_lists = offline_seed_lists_batch(
        graph,
        points,
        SEED_LIST_LENGTH,
        engine="imm",
        imm_epsilon=IMM_EPSILON,
        seeds=item_seeds,
        workers=1,
        sim_workers=1,
    )
    imm_seconds = time.perf_counter() - start

    # Determinism across sampling-pool widths: the same 200 lists must
    # come back bit-identical with 4 workers.
    start = time.perf_counter()
    imm_lists_wide = offline_seed_lists_batch(
        graph,
        points,
        SEED_LIST_LENGTH,
        engine="imm",
        imm_epsilon=IMM_EPSILON,
        seeds=item_seeds,
        workers=1,
        sim_workers=4,
    )
    imm_wide_seconds = time.perf_counter() - start
    workers_identical = imm_lists == imm_lists_wide
    assert workers_identical, "imm seed lists differ between 1 and 4 workers"

    # CELF++-MC on a deterministic sample of points, extrapolated.
    sample_ids = np.linspace(
        0, NUM_POINTS - 1, CELF_SAMPLE_POINTS
    ).astype(int)
    celf_lists = {}
    start = time.perf_counter()
    for i in sample_ids:
        celf_lists[int(i)] = offline_seed_list(
            graph,
            points[i],
            SEED_LIST_LENGTH,
            engine="celf++-mc",
            num_simulations=CELF_SIMULATIONS,
            seed=item_seeds[i],
        )
    celf_sampled_seconds = time.perf_counter() - start
    celf_per_point = celf_sampled_seconds / CELF_SAMPLE_POINTS
    celf_seconds_extrapolated = celf_per_point * NUM_POINTS

    # Legacy sequential RIS, full build, for the record.
    start = time.perf_counter()
    offline_seed_lists_batch(
        graph,
        points,
        SEED_LIST_LENGTH,
        engine="ris",
        ris_num_sets=RIS_NUM_SETS,
        seeds=item_seeds,
        workers=1,
    )
    ris_seconds = time.perf_counter() - start

    # Matched accuracy: shared-estimator spreads on the sampled points.
    ratios = []
    spreads = []
    for i, celf_list in celf_lists.items():
        imm_spread = estimate_spread(
            graph,
            points[i],
            list(imm_lists[i].nodes),
            num_simulations=EVAL_SIMULATIONS,
            seed=42,
        ).mean
        celf_spread = estimate_spread(
            graph,
            points[i],
            list(celf_list.nodes),
            num_simulations=EVAL_SIMULATIONS,
            seed=42,
        ).mean
        ratios.append(imm_spread / celf_spread)
        spreads.append(
            {
                "point": i,
                "imm_spread": round(imm_spread, 3),
                "celfpp_mc_spread": round(celf_spread, 3),
                "ratio": round(imm_spread / celf_spread, 4),
            }
        )
    mean_ratio = float(np.mean(ratios))
    speedup = celf_seconds_extrapolated / imm_seconds

    report = {
        "graph": {
            "num_nodes": NUM_NODES,
            "num_topics": NUM_TOPICS,
            "num_arcs": graph.num_arcs,
        },
        "config": {
            "num_index_points": NUM_POINTS,
            "seed_list_length": SEED_LIST_LENGTH,
            "imm_epsilon": IMM_EPSILON,
            "celfpp_mc_simulations": CELF_SIMULATIONS,
            "celfpp_mc_sampled_points": int(CELF_SAMPLE_POINTS),
            "ris_num_sets": RIS_NUM_SETS,
            "eval_simulations": EVAL_SIMULATIONS,
        },
        "timings_seconds": {
            "imm_full_build": round(imm_seconds, 3),
            "imm_full_build_4_workers": round(imm_wide_seconds, 3),
            "celfpp_mc_sampled": round(celf_sampled_seconds, 3),
            "celfpp_mc_extrapolated_full": round(
                celf_seconds_extrapolated, 3
            ),
            "ris_full_build": round(ris_seconds, 3),
        },
        "speedup_imm_vs_celfpp_mc": round(speedup, 1),
        "spread_match": {
            "mean_ratio": round(mean_ratio, 4),
            "tolerance": SPREAD_MATCH_TOLERANCE,
            "per_point": spreads,
        },
        "workers_identical_1_vs_4": workers_identical,
    }
    if OUT_PATH.exists():
        # Preserve the paper-scale section recorded by the companion
        # test (the two tests own disjoint keys of the same report).
        previous = json.loads(OUT_PATH.read_text())
        if "paper_scale" in previous:
            report["paper_scale"] = previous["paper_scale"]
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"h={NUM_POINTS} eps={IMM_EPSILON} index build "
        f"(n={NUM_NODES}, l={SEED_LIST_LENGTH})",
        f"  imm full build:            {imm_seconds:8.1f} s",
        f"  celf++-mc (extrapolated):  {celf_seconds_extrapolated:8.1f} s",
        f"  ris full build:            {ris_seconds:8.1f} s",
        f"  speedup imm vs celf++-mc:  {speedup:8.1f} x "
        f"(bar: {SPEEDUP_THRESHOLD}x)",
        f"  spread ratio imm/celf++:   {mean_ratio:8.4f} "
        f"(bar: within {SPREAD_MATCH_TOLERANCE:.0%})",
        f"  1 vs 4 workers identical:  {workers_identical}",
    ]
    register_report("index build engines (BENCH_index_build.json)",
                    "\n".join(lines))

    assert speedup >= SPEEDUP_THRESHOLD, (
        f"imm speedup {speedup:.1f}x below the {SPEEDUP_THRESHOLD}x bar"
    )
    assert abs(mean_ratio - 1.0) <= SPREAD_MATCH_TOLERANCE, (
        f"imm/celf++-mc spread ratio {mean_ratio:.4f} outside "
        f"the {SPREAD_MATCH_TOLERANCE:.0%} matched-accuracy window"
    )


# ----------------------------------------------------------------------
# Paper-scale laptop build (ROADMAP follow-up from the imm-default flip)
# ----------------------------------------------------------------------
PAPER_NUM_NODES = 1000
PAPER_NUM_TOPICS = 4
PAPER_NUM_ITEMS = 200
PAPER_H = 1000
PAPER_DIRICHLET_SAMPLES = 100_000
PAPER_IMM_EPSILON = 0.2


def test_paper_scale_imm_build():
    """The h=1000, 100k-sample build, timed end to end on one core."""
    from repro.core import InflexConfig
    from repro.core.index import InflexIndex

    graph = interest_topic_graph(
        PAPER_NUM_NODES,
        PAPER_NUM_TOPICS,
        topics_per_node=1,
        base_strength=0.2,
        seed=401,
    )
    catalog = np.random.default_rng(409).dirichlet(
        np.full(PAPER_NUM_TOPICS, 0.7), size=PAPER_NUM_ITEMS
    )
    config = InflexConfig(
        num_index_points=PAPER_H,
        num_dirichlet_samples=PAPER_DIRICHLET_SAMPLES,
        seed_list_length=SEED_LIST_LENGTH,
        imm_epsilon=PAPER_IMM_EPSILON,
        seed=419,
    )
    stage_seconds: dict[str, float] = {}
    marks = {"start": time.perf_counter()}

    def progress(stage, done, total):
        # First time a stage reports, close out the previous one.
        if stage not in stage_seconds and done in (0, 1):
            now = time.perf_counter()
            if "current" in marks:
                stage_seconds[marks["current"]] = now - marks["at"]
            marks["current"] = stage
            marks["at"] = now

    start = time.perf_counter()
    index = InflexIndex.build(graph, catalog, config, progress=progress)
    total_seconds = time.perf_counter() - start
    if "current" in marks:
        stage_seconds[marks["current"]] = (
            time.perf_counter() - marks["at"]
        )

    assert index.num_index_points == PAPER_H
    answer = index.query(
        np.full(PAPER_NUM_TOPICS, 1.0 / PAPER_NUM_TOPICS), 10
    )
    assert len(answer.seeds) == 10

    section = {
        "graph": {
            "num_nodes": PAPER_NUM_NODES,
            "num_topics": PAPER_NUM_TOPICS,
            "num_arcs": graph.num_arcs,
        },
        "config": {
            "num_index_points": PAPER_H,
            "num_dirichlet_samples": PAPER_DIRICHLET_SAMPLES,
            "seed_list_length": SEED_LIST_LENGTH,
            "imm_epsilon": PAPER_IMM_EPSILON,
            "engine": "imm",
            "workers": 1,
        },
        "timings_seconds": {
            "total": round(total_seconds, 1),
            "per_stage": {
                name: round(seconds, 1)
                for name, seconds in stage_seconds.items()
            },
            "per_seed_list": round(
                stage_seconds.get("seed-lists", total_seconds) / PAPER_H,
                3,
            ),
        },
    }
    report = (
        json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    )
    report["paper_scale"] = section
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    per_stage = ", ".join(
        f"{name}={seconds:.1f}s"
        for name, seconds in stage_seconds.items()
    )
    register_report(
        "paper-scale index build (BENCH_index_build.json)",
        (
            f"h={PAPER_H}, {PAPER_DIRICHLET_SAMPLES:,} Dirichlet samples, "
            f"n={PAPER_NUM_NODES}, eps={PAPER_IMM_EPSILON}, 1 worker\n"
            f"  total: {total_seconds:.1f} s ({per_stage})\n"
            f"  per seed list: "
            f"{section['timings_seconds']['per_seed_list'] * 1000:.0f} ms"
        ),
    )
