"""Figure 8 / Table 2 benchmark: expected spread of the seed sets.

Times one Monte-Carlo spread estimation (the evaluation primitive) and
regenerates Table 2: per-method expected spread with RMSE/NRMSE against
the offline-TIC ground truth.
"""

from conftest import register_report

from repro.propagation import estimate_spread


def test_fig8_spread(benchmark, context, spread_result):
    gamma = context.workload.items[0]
    seeds = list(context.ground_truth(0, context.scale.max_k))
    estimate = benchmark(
        estimate_spread,
        context.graph,
        gamma,
        seeds,
        num_simulations=context.scale.spread_simulations,
        seed=7,
    )
    assert estimate.mean > 0

    register_report(
        "Table 2 / Figure 8 - expected spread", spread_result.render()
    )
    tic = spread_result.mean_spread("offline TIC")
    inflex = spread_result.mean_spread("INFLEX")
    ic = spread_result.mean_spread("offline IC")
    random = spread_result.mean_spread("random")
    # Paper's headline ordering: aggregation methods land near the
    # ground truth; topic-blind selection below; random far below
    # everything.  The IC gap is milder here than the paper's "less
    # than half": half of the workload is uniform-on-the-simplex
    # queries (mixed topics), on which a topic-blind seed set is
    # inherently competitive; see EXPERIMENTS.md for the split.
    assert random < ic < tic
    assert inflex >= 0.85 * tic
    assert ic <= 0.93 * tic
    assert random <= 0.5 * tic
    _, inflex_nrmse = spread_result.error_metrics("INFLEX")
    assert inflex_nrmse < 0.2
