"""Campaign allocation benchmark -> ``BENCH_campaign.json``.

The issue's acceptance bar: joint k-submodular allocation must
*measurably* beat B independent single-item queries at the same total
seed budget, and allocations must be bit-identical for 1 and 4
sampling workers.

Three allocators run on the same planner (so every comparison shares
one set of per-item RR oracles):

* **lazy** — joint lazy k-submodular greedy (1/2-approx);
* **threshold** — joint threshold greedy (1/2 - eps, fewer oracle
  calls);
* **independent** — B per-item greedy selections at an even budget
  split, the "run B separate queries" baseline.

The oracle-side uplift is cross-checked with a fresh-randomness
Monte-Carlo estimate of every item's spread, so the claim does not
rest on the allocator grading its own homework.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import register_report

from repro.campaign import CampaignPlanner
from repro.core import CampaignConfig
from repro.graph import interest_topic_graph
from repro.propagation import estimate_spread

NUM_NODES = 400
NUM_TOPICS = 5
NUM_ITEMS = 5
BUDGET = 25
NUM_SETS = 3000
EPSILON = 0.2
MC_SIMULATIONS = 600
#: Acceptance bar: joint lazy greedy must beat independent by >= 1%
#: on the shared oracles (observed ~3-4%).
UPLIFT_THRESHOLD = 0.01

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def _graph():
    return interest_topic_graph(
        NUM_NODES,
        NUM_TOPICS,
        topics_per_node=1,
        base_strength=0.2,
        seed=97,
    )


def _gammas():
    rng = np.random.default_rng(41)
    return list(rng.dirichlet(np.full(NUM_TOPICS, 0.7), size=NUM_ITEMS))


def _mc_total(graph, gammas, allocation) -> float:
    """Fresh-randomness Monte-Carlo estimate of the total objective."""
    total = 0.0
    for gamma, nodes in zip(gammas, allocation.assignments):
        if nodes:
            total += estimate_spread(
                graph,
                gamma,
                list(nodes),
                num_simulations=MC_SIMULATIONS,
                seed=5,
            ).mean
    return total


def test_campaign_joint_vs_independent(benchmark):
    graph = _graph()
    gammas = _gammas()
    config = CampaignConfig(num_sets=NUM_SETS, epsilon=EPSILON, seed=17)

    with CampaignPlanner(graph, config, workers=1) as planner:
        # Warm the oracle cache so the timed sections measure
        # allocation, not RR sampling (the cache is the serving shape).
        planner.allocate_independent(gammas, 1)

        # Micro-op for pytest-benchmark: one joint lazy allocation.
        benchmark(lambda: planner.allocate(gammas, BUDGET))

        start = time.perf_counter()
        joint = planner.allocate(gammas, BUDGET, algorithm="lazy")
        lazy_seconds = time.perf_counter() - start

        start = time.perf_counter()
        thresh = planner.allocate(gammas, BUDGET, algorithm="threshold")
        threshold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        indep = planner.allocate_independent(gammas, BUDGET)
        independent_seconds = time.perf_counter() - start

    # Determinism across sampling-pool widths: a fresh planner with 4
    # workers must reproduce the single-worker allocation bit for bit.
    with CampaignPlanner(graph, config, workers=4) as planner_wide:
        joint_wide = planner_wide.allocate(gammas, BUDGET, algorithm="lazy")
    workers_identical = (
        joint.assignments == joint_wide.assignments
        and joint.gains == joint_wide.gains
        and joint.total_spread == joint_wide.total_spread
    )
    assert workers_identical, (
        "campaign allocations differ between 1 and 4 workers"
    )

    uplift = joint.total_spread / indep.total_spread - 1.0
    mc_joint = _mc_total(graph, gammas, joint)
    mc_indep = _mc_total(graph, gammas, indep)
    mc_uplift = mc_joint / mc_indep - 1.0

    report = {
        "graph": {
            "num_nodes": NUM_NODES,
            "num_topics": NUM_TOPICS,
            "num_arcs": graph.num_arcs,
        },
        "config": {
            "num_items": NUM_ITEMS,
            "budget_k": BUDGET,
            "num_sets": NUM_SETS,
            "epsilon": EPSILON,
            "mc_simulations": MC_SIMULATIONS,
        },
        "timings_seconds": {
            "lazy": round(lazy_seconds, 4),
            "threshold": round(threshold_seconds, 4),
            "independent": round(independent_seconds, 4),
        },
        "total_spread": {
            "lazy": round(joint.total_spread, 3),
            "threshold": round(thresh.total_spread, 3),
            "independent": round(indep.total_spread, 3),
        },
        "uplift_lazy_vs_independent": round(uplift, 4),
        "mc_cross_check": {
            "joint": round(mc_joint, 3),
            "independent": round(mc_indep, 3),
            "uplift": round(mc_uplift, 4),
        },
        "workers_identical_1_vs_4": workers_identical,
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"B={NUM_ITEMS} items, k={BUDGET} total budget "
        f"(n={NUM_NODES}, {NUM_SETS} RR sets/item)",
        f"  lazy greedy:        {joint.total_spread:8.2f} spread "
        f"({lazy_seconds * 1000:6.1f} ms)",
        f"  threshold greedy:   {thresh.total_spread:8.2f} spread "
        f"({threshold_seconds * 1000:6.1f} ms)",
        f"  independent (B=5):  {indep.total_spread:8.2f} spread "
        f"({independent_seconds * 1000:6.1f} ms)",
        f"  joint uplift:       {uplift * 100:+7.2f}% "
        f"(bar: >= {UPLIFT_THRESHOLD:.0%})",
        f"  MC cross-check:     {mc_uplift * 100:+7.2f}% "
        f"({mc_joint:.1f} vs {mc_indep:.1f})",
        f"  1 vs 4 workers identical: {workers_identical}",
    ]
    register_report(
        "campaign allocation (BENCH_campaign.json)", "\n".join(lines)
    )

    assert uplift >= UPLIFT_THRESHOLD, (
        f"joint uplift {uplift:.4f} below the {UPLIFT_THRESHOLD:.0%} bar"
    )
    assert mc_uplift > 0.0, (
        f"Monte-Carlo cross-check shows no uplift ({mc_uplift:.4f})"
    )
