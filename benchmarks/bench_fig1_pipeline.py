"""Figure-1 pipeline benchmark: cost of learning error downstream."""

from conftest import register_report

from repro.experiments import fig1_pipeline
from repro.learning import TICLearner, generate_propagation_log


def test_fig1_pipeline(benchmark, context):
    # Timed micro-operation: one EM iteration's worth of fitting on a
    # small log (the pipeline's bottleneck besides IM itself).
    graph = context.dataset.graph
    items = context.dataset.item_topics[:20]
    log = generate_propagation_log(
        graph, items, seeds_per_item=5, seed=3
    )
    learner = TICLearner(graph, context.scale.num_topics, max_iter=2, seed=4)
    result = benchmark.pedantic(
        learner.fit,
        args=(log,),
        rounds=2,
        iterations=1,
    )
    assert result.probabilities.shape[0] == graph.num_arcs

    pipeline = fig1_pipeline.run(seed=context.scale.seed)
    register_report("Figure 1 - end-to-end pipeline", pipeline.render())
    assert pipeline.spread_learned_params > pipeline.spread_random
