"""Table 3 benchmark: INFLEX spread accuracy across seed-set sizes.

Times an INFLEX query at the largest budget and regenerates Table 3:
INFLEX vs offline-TIC expected spread with RMSE/NRMSE for every ``k``.
"""

from conftest import register_report

from repro.experiments import table3_spread_by_k


def test_table3_spread_by_k(benchmark, context):
    gamma = context.workload.items[2]
    answer = benchmark(
        context.index.query, gamma, context.scale.max_k, strategy="inflex"
    )
    assert len(answer.seeds) == context.scale.max_k

    table = table3_spread_by_k.run(context)
    register_report("Table 3 - spread accuracy by k", table.render())
    for k in table.k_values:
        inflex_mean, _, offline_mean, _, _, nrmse = table.row(k)
        # INFLEX stays within a modest margin of the ground truth at
        # every budget (paper: NRMSE 1-3%; our smaller substrate leaves
        # more Monte-Carlo noise, hence the looser bound).
        assert inflex_mean >= 0.8 * offline_mean
        assert nrmse < 0.25
