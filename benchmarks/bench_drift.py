"""Drift-and-densify benchmark: the index-maintenance story measured."""

from conftest import register_report

from repro.experiments import drift


def test_drift_densification(benchmark, context):
    gamma = context.workload.items[11]
    benchmark(context.index.coverage_of, gamma)

    result = drift.run(
        context, levels=(0.0, 0.6, 0.9), num_queries=5
    )
    register_report("Query drift and densification", result.render())
    worst = max(result.levels)
    assert (
        result.densified_distance[worst]
        <= result.static_distance[worst] + 0.05
    )
