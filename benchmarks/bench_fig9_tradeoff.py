"""Figure 9 benchmark: run-time vs expected-spread trade-off.

Reuses the Figure 8 spreads, times every strategy's query evaluation,
and regenerates the trade-off scatter (as a table).
"""

import numpy as np
from conftest import register_report

from repro.experiments.fig9_tradeoff import Fig9Result
from repro.experiments.fig8_spread import _STRATEGY_OF


def test_fig9_tradeoff(benchmark, context, spread_result):
    k = context.scale.max_k

    # The timed operation: one full INFLEX answer.
    gamma = context.workload.items[3]
    benchmark(context.index.query, gamma, k, strategy="inflex")

    points = {}
    for method, strategy in _STRATEGY_OF.items():
        times = []
        for qi in range(0, context.workload.num_queries, 2):
            answer = context.index.query(
                context.workload.items[qi], k, strategy=strategy
            )
            times.append(answer.timing.total * 1000)
        points[method] = (
            float(np.mean(times)),
            spread_result.mean_spread(method),
        )
    result = Fig9Result(k=k, points=points)
    register_report(
        "Figure 9 - run-time vs spread trade-off",
        result.render() + "\n\n" + result.render_plot(),
    )

    # INFLEX on (or near) the Pareto frontier: no method is both
    # meaningfully faster and higher-spread.
    inflex_time, inflex_spread = result.points["INFLEX"]
    for method, (time_ms, spread) in result.points.items():
        if method == "INFLEX":
            continue
        dominates = time_ms < inflex_time * 0.9 and spread > inflex_spread * 1.02
        assert not dominates, f"{method} dominates INFLEX"
