"""Observability overhead benchmark.

The `repro.obs` layer promises (a) **no measurable cost while
disabled** — every instrumentation site short-circuits on one attribute
check — and (b) **< 5% query-path cost while enabled**.  This bench
enforces both on the real query hot path: interleaved batches of TIM
queries are timed disabled / enabled / disabled (the sandwich cancels
thermal and scheduler drift), and the two disabled series are compared
with the repo's own paired t-test — the instrumented-but-off path must
be statistically indistinguishable from itself across the enabled runs.
"""

from __future__ import annotations

import statistics
import time

import pytest

from conftest import register_report

from repro import obs
from repro.core import InflexConfig, InflexIndex
from repro.datasets import generate_flixster_like
from repro.stats.tests import paired_t_test

#: Interleaved measurement rounds; each contributes one disabled-A,
#: one enabled, and one disabled-B batch time.
ROUNDS = 30
QUERIES_PER_BATCH = 16
K = 8


@pytest.fixture(scope="module")
def query_setup():
    """A small but real index plus a query workload."""
    data = generate_flixster_like(
        num_nodes=250,
        num_topics=4,
        num_items=60,
        topics_per_node=1,
        base_strength=0.2,
        seed=13,
    )
    config = InflexConfig(
        num_index_points=16,
        num_dirichlet_samples=1000,
        seed_list_length=10,
        ris_num_sets=800,
        knn=6,
        leaf_size=8,
        seed=7,
    )
    index = InflexIndex.build(data.graph, data.item_topics, config)
    return index, data.item_topics[:QUERIES_PER_BATCH]


def _batch_seconds(index, queries) -> float:
    start = time.perf_counter()
    for gamma in queries:
        index.query(gamma, K)
    return time.perf_counter() - start


def test_observability_overhead(query_setup):
    index, queries = query_setup
    obs.disable()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    try:
        for _ in range(3):  # warm caches and the JIT-less interpreter
            _batch_seconds(index, queries)
        disabled_a: list[float] = []
        disabled_b: list[float] = []
        enabled: list[float] = []
        for _ in range(ROUNDS):
            obs.disable()
            disabled_a.append(_batch_seconds(index, queries))
            obs.enable()
            enabled.append(_batch_seconds(index, queries))
            obs.disable()
            disabled_b.append(_batch_seconds(index, queries))
    finally:
        obs.disable()
        obs.get_registry().reset()
        obs.get_tracer().clear()

    median_disabled = statistics.median(disabled_a + disabled_b)
    median_enabled = statistics.median(enabled)
    enabled_overhead = median_enabled / median_disabled - 1.0
    # The two disabled series bracket every enabled batch; any real
    # disabled-mode cost (or drift) would separate them.
    ttest = paired_t_test(disabled_a, disabled_b)
    drift = abs(ttest.mean_difference) / median_disabled

    per_query_us = median_disabled / QUERIES_PER_BATCH * 1e6
    register_report(
        "Observability overhead (query hot path)",
        "\n".join(
            [
                f"batches: {ROUNDS} x {QUERIES_PER_BATCH} queries, k={K}",
                f"disabled median batch: {median_disabled * 1e3:.3f} ms "
                f"({per_query_us:.0f} us/query)",
                f"enabled  median batch: {median_enabled * 1e3:.3f} ms",
                f"enabled overhead: {enabled_overhead * 100:+.2f}%  "
                "(budget < 5%)",
                f"disabled A-vs-B paired t-test: p={ttest.p_value:.3f}, "
                f"mean drift {drift * 100:.3f}% of a batch",
            ]
        ),
    )

    # (b) enabled-mode overhead stays under the 5% budget.
    assert enabled_overhead < 0.05, (
        f"enabled observability costs {enabled_overhead * 100:.2f}% "
        f"(> 5%) on the query hot path"
    )
    # (a) disabled mode is statistically indistinguishable: either the
    # paired test finds no effect, or the effect size is noise-level
    # (< 1% of a batch) — guarding against huge-sample trivia.
    assert ttest.p_value > 0.01 or drift < 0.01, (
        f"disabled-mode drift {drift * 100:.3f}% of a batch is "
        f"significant (p={ttest.p_value:.4f})"
    )


def test_disabled_primitive_costs():
    """Micro-check: one disabled span costs well under a microsecond-
    scale budget, so per-query instrumentation cannot register."""
    obs.disable()
    tracer = obs.get_tracer()
    iterations = 20_000
    start = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("noop"):
            pass
    per_span_us = (time.perf_counter() - start) / iterations * 1e6
    register_report(
        "Disabled span cost",
        f"{per_span_us:.3f} us per disabled span "
        f"({iterations} iterations)",
    )
    # Generous budget: 4 spans/query at < 10 us each is noise next to
    # a millisecond-scale query.
    assert per_span_us < 10.0
