"""Observability overhead benchmark.

The `repro.obs` layer promises (a) **no measurable cost while
disabled** — every instrumentation site short-circuits on one attribute
check — and (b) **< 5% query-path cost while enabled**.  This bench
enforces both on the real query hot path: interleaved batches of TIM
queries are timed disabled / enabled / disabled, and each enabled batch
is compared against the *mean of its two bracketing disabled batches*.
The per-round ratio cancels machine-speed drift that is slower than a
round (CPU frequency scaling, noisy-neighbor steal on shared runners) —
a global median over the series does not, because slow minutes inflate
whole rounds and the enabled/disabled split within them survives the
median.  The reported overhead is the median of the per-round ratios;
the two disabled series are additionally compared with the repo's own
paired t-test — the instrumented-but-off path must be statistically
indistinguishable from itself across the enabled runs.

The same gate covers the request-scoped telemetry sites (PR 6):
context binding, flight recording, and SLO observation wrap each query
the way the serving layer wraps each request, under the same budgets.
The telemetry numbers — overhead both modes, flight-recorder memory at
10k records, slow-query capture cost — land in ``BENCH_obs.json``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from conftest import register_report

from repro import obs
from repro.core import InflexConfig, InflexIndex
from repro.datasets import generate_flixster_like
from repro.obs import context as obs_context
from repro.obs import instruments
from repro.obs.flightrec import (
    FlightRecord,
    FlightRecorder,
    gamma_fingerprint,
)
from repro.obs.slo import SLOMonitor
from repro.stats.tests import paired_t_test

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: Interleaved measurement rounds; each contributes one disabled-A,
#: one enabled, and one disabled-B batch time.
ROUNDS = 30
QUERIES_PER_BATCH = 16
K = 8


@pytest.fixture(scope="module")
def query_setup():
    """A small but real index plus a query workload.

    The 32-point cloud makes a query cost ~1 ms — the millisecond
    scale the paper targets for online answering.  A much smaller
    index would answer in a few hundred microseconds and the *fixed*
    per-query instrument cost (a handful of microseconds) would read
    as a large percentage of nothing.
    """
    data = generate_flixster_like(
        num_nodes=250,
        num_topics=4,
        num_items=60,
        topics_per_node=1,
        base_strength=0.2,
        seed=13,
    )
    config = InflexConfig(
        num_index_points=32,
        num_dirichlet_samples=1000,
        seed_list_length=10,
        ris_num_sets=800,
        knn=6,
        leaf_size=8,
        seed=7,
    )
    index = InflexIndex.build(data.graph, data.item_topics, config)
    return index, data.item_topics[:QUERIES_PER_BATCH]


def _paired_overhead(
    disabled_a: list[float],
    enabled: list[float],
    disabled_b: list[float],
) -> float:
    """Median of the per-round enabled-vs-bracket ratios.

    Each enabled batch ran between its own two disabled batches, so
    dividing by their mean cancels any machine-speed drift slower than
    one round; the median across rounds then discards the rounds a
    scheduler hiccup landed on.
    """
    ratios = [
        e / ((a + b) / 2.0) - 1.0
        for a, e, b in zip(disabled_a, enabled, disabled_b)
    ]
    return statistics.median(ratios)


def _batch_seconds(index, queries) -> float:
    start = time.perf_counter()
    for gamma in queries:
        index.query(gamma, K)
    return time.perf_counter() - start


def test_observability_overhead(query_setup):
    index, queries = query_setup
    obs.disable()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    try:
        for _ in range(3):  # warm caches and the JIT-less interpreter
            _batch_seconds(index, queries)
        disabled_a: list[float] = []
        disabled_b: list[float] = []
        enabled: list[float] = []
        for _ in range(ROUNDS):
            obs.disable()
            disabled_a.append(_batch_seconds(index, queries))
            obs.enable()
            enabled.append(_batch_seconds(index, queries))
            obs.disable()
            disabled_b.append(_batch_seconds(index, queries))
    finally:
        obs.disable()
        obs.get_registry().reset()
        obs.get_tracer().clear()

    median_disabled = statistics.median(disabled_a + disabled_b)
    median_enabled = statistics.median(enabled)
    enabled_overhead = _paired_overhead(disabled_a, enabled, disabled_b)
    # The two disabled series bracket every enabled batch; any real
    # disabled-mode cost (or drift) would separate them.
    ttest = paired_t_test(disabled_a, disabled_b)
    drift = abs(ttest.mean_difference) / median_disabled

    per_query_us = median_disabled / QUERIES_PER_BATCH * 1e6
    register_report(
        "Observability overhead (query hot path)",
        "\n".join(
            [
                f"batches: {ROUNDS} x {QUERIES_PER_BATCH} queries, k={K}",
                f"disabled median batch: {median_disabled * 1e3:.3f} ms "
                f"({per_query_us:.0f} us/query)",
                f"enabled  median batch: {median_enabled * 1e3:.3f} ms",
                f"enabled overhead (paired per-round): "
                f"{enabled_overhead * 100:+.2f}%  (budget < 5%)",
                f"disabled A-vs-B paired t-test: p={ttest.p_value:.3f}, "
                f"mean drift {drift * 100:.3f}% of a batch",
            ]
        ),
    )

    # (b) enabled-mode overhead stays under the 5% budget.
    assert enabled_overhead < 0.05, (
        f"enabled observability costs {enabled_overhead * 100:.2f}% "
        f"(> 5%) on the query hot path"
    )
    # (a) disabled mode is statistically indistinguishable: either the
    # paired test finds no effect, or the effect size is noise-level
    # (< 1% of a batch) — guarding against huge-sample trivia.
    assert ttest.p_value > 0.01 or drift < 0.01, (
        f"disabled-mode drift {drift * 100:.3f}% of a batch is "
        f"significant (p={ttest.p_value:.4f})"
    )


def _telemetry_batch_seconds(index, queries, flight, slo, tracer) -> float:
    """One batch of queries through the full per-request telemetry
    path: context bind, query spans, SLO observe, flight record —
    the same sites the serving layer touches per request."""
    start = time.perf_counter()
    for gamma in queries:
        context = obs_context.new_request_context()
        with obs_context.bind(context):
            began = time.perf_counter()
            answer = index.query(gamma, K)
            elapsed = time.perf_counter() - began
        verdicts = slo.observe(elapsed)
        instruments.record_slo_verdicts(verdicts)
        slow = flight.record(
            FlightRecord(
                request_id=context.request_id,
                trace_id=context.trace_id,
                route="/query",
                fingerprint=gamma_fingerprint(gamma),
                k=K,
                strategy=answer.strategy,
                duration_s=elapsed,
                timings={"total": answer.timing.total},
            ),
            tracer,
        )
        instruments.record_flight(len(flight), slow)
    return time.perf_counter() - start


def test_request_telemetry_overhead(query_setup):
    """The PR-6 telemetry sites obey the same two promises as the core
    instruments, measured end to end and recorded in BENCH_obs.json."""
    index, queries = query_setup
    obs.disable()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    tracer = obs.get_tracer()
    flight = FlightRecorder(capacity=4096, slow_threshold_s=60.0)
    slo = SLOMonitor()
    try:
        for _ in range(3):
            _telemetry_batch_seconds(index, queries, flight, slo, tracer)
        disabled_a: list[float] = []
        disabled_b: list[float] = []
        enabled: list[float] = []
        for _ in range(ROUNDS):
            obs.disable()
            disabled_a.append(
                _telemetry_batch_seconds(index, queries, flight, slo, tracer)
            )
            obs.enable()
            enabled.append(
                _telemetry_batch_seconds(index, queries, flight, slo, tracer)
            )
            obs.disable()
            disabled_b.append(
                _telemetry_batch_seconds(index, queries, flight, slo, tracer)
            )
    finally:
        obs.disable()
        obs.get_registry().reset()
        obs.get_tracer().clear()

    median_disabled = statistics.median(disabled_a + disabled_b)
    median_enabled = statistics.median(enabled)
    enabled_overhead = _paired_overhead(disabled_a, enabled, disabled_b)
    ttest = paired_t_test(disabled_a, disabled_b)
    drift = abs(ttest.mean_difference) / median_disabled

    # Flight-recorder memory at 10k records (enabled, realistic shape).
    obs.enable()
    big = FlightRecorder(capacity=10_000, slow_threshold_s=60.0)
    for i in range(10_000):
        big.record(
            FlightRecord(
                request_id=f"{i:012x}",
                trace_id=f"{i:016x}",
                route="/query",
                fingerprint="5f2a9c01",
                k=K,
                strategy="inflex",
                duration_s=0.004,
                timings={
                    "search": 0.001,
                    "selection": 0.002,
                    "aggregation": 0.001,
                    "total": 0.004,
                },
            )
        )
    flight_memory_bytes = big.approx_memory_bytes()

    # Slow-query capture cost: record() with span-tree capture versus
    # the plain fast-path record, per call.
    tracer.clear()
    context = obs_context.new_request_context()
    with obs_context.bind(context):
        with tracer.span("query"):
            with tracer.span("query.search"):
                pass
            with tracer.span("query.selection"):
                pass
    captures = 2_000

    def time_records(threshold_s: float) -> float:
        recorder = FlightRecorder(
            capacity=captures, slow_capacity=captures,
            slow_threshold_s=threshold_s,
        )
        start = time.perf_counter()
        for i in range(captures):
            recorder.record(
                FlightRecord(
                    request_id=f"{i:012x}",
                    trace_id=context.trace_id,
                    duration_s=0.2,
                ),
                tracer,
            )
        return (time.perf_counter() - start) / captures

    fast_record_s = time_records(threshold_s=60.0)
    slow_record_s = time_records(threshold_s=0.1)
    capture_cost_us = (slow_record_s - fast_record_s) * 1e6
    obs.disable()
    obs.get_registry().reset()
    obs.get_tracer().clear()

    payload = {
        "rounds": ROUNDS,
        "queries_per_batch": QUERIES_PER_BATCH,
        "k": K,
        "disabled_median_batch_ms": median_disabled * 1e3,
        "enabled_median_batch_ms": median_enabled * 1e3,
        "enabled_overhead_pct": enabled_overhead * 100.0,
        "disabled_drift_pct": drift * 100.0,
        "disabled_drift_p_value": ttest.p_value,
        "flight_recorder_records": 10_000,
        "flight_recorder_memory_bytes": flight_memory_bytes,
        "flight_recorder_bytes_per_record": flight_memory_bytes / 10_000,
        "slow_capture_cost_us": capture_cost_us,
        "fast_record_us": fast_record_s * 1e6,
        "slow_record_us": slow_record_s * 1e6,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2))

    register_report(
        "Request-scoped telemetry overhead",
        "\n".join(
            [
                f"batches: {ROUNDS} x {QUERIES_PER_BATCH} queries, k={K} "
                "(context + spans + SLO + flight record per query)",
                f"disabled median batch: {median_disabled * 1e3:.3f} ms",
                f"enabled  median batch: {median_enabled * 1e3:.3f} ms",
                f"enabled overhead (paired per-round): "
                f"{enabled_overhead * 100:+.2f}%  (budget < 5%)",
                f"disabled A-vs-B paired t-test: p={ttest.p_value:.3f}, "
                f"mean drift {drift * 100:.3f}% of a batch",
                f"flight recorder @10k records: "
                f"{flight_memory_bytes / 1024:.0f} KiB "
                f"({flight_memory_bytes / 10_000:.0f} B/record)",
                f"slow-query span capture: {capture_cost_us:+.1f} us "
                f"per slow request (fast record "
                f"{fast_record_s * 1e6:.1f} us)",
            ]
        ),
    )

    assert enabled_overhead < 0.05, (
        f"enabled telemetry costs {enabled_overhead * 100:.2f}% "
        f"(> 5%) on the query hot path"
    )
    assert ttest.p_value > 0.01 or drift < 0.01, (
        f"disabled-mode drift {drift * 100:.3f}% of a batch is "
        f"significant (p={ttest.p_value:.4f})"
    )
    # The 10k-record ring stays comfortably in single-digit MiB.
    assert flight_memory_bytes < 32 * 1024 * 1024


def test_disabled_primitive_costs():
    """Micro-check: one disabled span costs well under a microsecond-
    scale budget, so per-query instrumentation cannot register."""
    obs.disable()
    tracer = obs.get_tracer()
    iterations = 20_000
    start = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("noop"):
            pass
    per_span_us = (time.perf_counter() - start) / iterations * 1e6
    register_report(
        "Disabled span cost",
        f"{per_span_us:.3f} us per disabled span "
        f"({iterations} iterations)",
    )
    # Generous budget: 4 spans/query at < 10 us each is noise next to
    # a millisecond-scale query.
    assert per_span_us < 10.0
