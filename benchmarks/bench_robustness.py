"""Robustness benchmarks: parameter noise and the sparse-catalog case."""

from conftest import register_report

from repro.experiments import robustness


def test_parameter_noise(benchmark, context):
    gamma = context.workload.items[10]
    benchmark(context.index.query, gamma, context.scale.max_k)

    result = robustness.run_parameter_noise(
        context, sigmas=(0.0, 0.5, 1.0), num_queries=8
    )
    register_report("Robustness - parameter noise", result.render())
    # Degradation should be graceful: even sigma = 1.0 noise must not
    # push the answers to the disjoint-lists regime.
    assert result.mean_distance[1.0] < 0.7
    assert result.mean_distance[1.0] >= result.mean_distance[0.0] - 0.08


def test_sparse_catalog(benchmark, context):
    from repro.simplex import fit_dirichlet_mle

    benchmark(fit_dirichlet_mle, context.dataset.item_topics)

    result = robustness.run_sparse_catalog(context)
    register_report("Robustness - sparse catalog", result.render())
    # The paper's Section-3.1 argument: the pipeline covers stress
    # queries at least as well as raw clumped catalog items.
    assert result.pipeline_coverage <= result.catalog_coverage + 0.02
