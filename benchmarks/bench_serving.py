"""Serving throughput/latency benchmark -> ``BENCH_serving.json``.

Builds a micro index, starts the asyncio query server in-process, and
drives it with the seeded closed-loop load generator.  The acceptance
bar from the serving issue: >= 500 QPS single-process with p99 under
the configured deadline, zero 5xx, and a warm cache (non-zero hit
rate).  The full report lands in ``BENCH_serving.json`` so CI can
archive the run.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import pytest
from conftest import register_report

from repro import obs
from repro.core import (
    CachedIndex,
    FleetConfig,
    InflexConfig,
    InflexIndex,
    ServingConfig,
)
from repro.datasets import generate_flixster_like
from repro.serving import Fleet, QueryServer, run_loadgen

DEADLINE_MS = 250.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

# Hard failures from the client's point of view: transport errors are
# counted in ``report.errors``; of the status codes, only true 5xx
# server errors count (503 is the router's documented shed/drain
# signal and 429 is admission control — both are *answered* requests).
_FAILURE_STATUSES = ("500", "502", "504")


def _merge_out(key: str, section: dict) -> None:
    """Read-modify-write ``BENCH_serving.json`` under ``fleet.<key>``.

    ``test_serving_throughput`` owns the top-level schema (CI asserts
    on those keys); the fleet results ride under a ``fleet`` object.
    """
    payload = {}
    if OUT_PATH.exists():
        payload = json.loads(OUT_PATH.read_text())
    payload.setdefault("fleet", {})[key] = section
    OUT_PATH.write_text(json.dumps(payload, indent=2))


@pytest.fixture(scope="module")
def micro_index() -> InflexIndex:
    """A small but real index — big enough that misses cost something."""
    dataset = generate_flixster_like(
        num_nodes=250,
        num_topics=4,
        num_items=80,
        topics_per_node=1,
        base_strength=0.2,
        seed=13,
    )
    config = InflexConfig(
        num_index_points=20,
        num_dirichlet_samples=1500,
        seed_list_length=12,
        ris_num_sets=1200,
        knn=6,
        leaf_size=8,
        seed=17,
    )
    return InflexIndex.build(dataset.graph, dataset.item_topics, config)


def test_serving_throughput(micro_index):
    obs.enable()
    config = ServingConfig(
        port=0, deadline_ms=DEADLINE_MS, cache_decimals=6
    )

    async def scenario():
        server = QueryServer(micro_index, config)
        await server.start()
        try:
            report = await run_loadgen(
                "127.0.0.1",
                server.port,
                mode="closed",
                duration_s=3.0,
                concurrency=8,
                k=10,
                deadline_ms=DEADLINE_MS,
                num_distinct=64,
                skew=1.1,
                seed=42,
            )
            stats = server.stats()
        finally:
            await server.aclose()
        return report, stats

    try:
        report, stats = asyncio.run(scenario())
    finally:
        obs.disable()
        obs.get_registry().reset()

    payload = report.to_dict()
    payload["server_stats"] = stats
    OUT_PATH.write_text(json.dumps(payload, indent=2))
    register_report("Serving throughput (closed loop)", report.render())

    # Acceptance bar: no 5xx, sustained throughput, bounded tail, and a
    # cache that actually absorbed the Zipf-skewed repeat traffic.
    assert report.errors == 0
    assert not any(s.startswith("5") for s in report.status_counts)
    assert report.ok > 0
    assert report.throughput_qps >= 500.0
    assert report.latency_ms["p99"] < DEADLINE_MS
    assert report.cache_hit_rate is not None and report.cache_hit_rate > 0.0


def test_serving_query_hot_path(benchmark, micro_index):
    """Micro-benchmark of the per-request cached query path."""
    cached = CachedIndex(micro_index, decimals=6)
    gamma = [0.4, 0.3, 0.2, 0.1]
    cached.query(gamma, 10)
    benchmark(cached.query, gamma, 10)
    assert cached.hits > 0


# ----------------------------------------------------------------------
# Sharded fleet: cold-cache scaling and chaos tail latency
# ----------------------------------------------------------------------

CRASH_PLAN = "worker:mode=crash:rate=0.05"


def _run_fleet_load(
    index: InflexIndex,
    *,
    workers: int,
    duration_s: float = 2.5,
    concurrency: int = 8,
    seed: int = 42,
    num_distinct: int = 64,
    skew: float = 1.1,
    cache_entries: int = 4096,
    fault_plan: str | None = None,
    kill_after_s: float | None = None,
) -> tuple:
    """One closed-loop loadgen run against an in-process fleet.

    Returns ``(report, fleet_status, killed)``.  ``fault_plan`` is
    exported via ``REPRO_FAULTS`` *before* the workers spawn (children
    inherit the plan); ``kill_after_s`` additionally SIGKILLs shard 0
    mid-run so at least one supervised respawn is guaranteed.  After
    the load completes the run waits for every shard to report ready
    again, so the returned status reflects the post-recovery fleet.
    """

    async def scenario():
        config = ServingConfig(
            port=0,
            deadline_ms=DEADLINE_MS,
            cache_entries=cache_entries,
            cache_decimals=6,
        )
        fleet_config = FleetConfig(
            workers=workers,
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=2.0,
            respawn_backoff_s=0.05,
            dispatch_timeout_s=10.0,
        )
        fleet = Fleet(index, config, fleet_config)
        await fleet.start()
        killed = 0
        try:
            load = asyncio.ensure_future(
                run_loadgen(
                    "127.0.0.1",
                    fleet.port,
                    mode="closed",
                    duration_s=duration_s,
                    concurrency=concurrency,
                    k=10,
                    deadline_ms=DEADLINE_MS,
                    num_distinct=num_distinct,
                    skew=skew,
                    seed=seed,
                )
            )
            if kill_after_s is not None:
                await asyncio.sleep(kill_after_s)
                victim = fleet._handles[0]
                if victim.process is not None and victim.process.is_alive():
                    victim.process.kill()
                    killed = 1
            report = await load
            # Let the supervisor finish respawning before snapshotting,
            # so restarts/attach reflect the recovered fleet.
            recovery_deadline = time.monotonic() + 60.0
            while time.monotonic() < recovery_deadline:
                snapshot = fleet.fleet_status()
                if all(
                    w["state"] == "ready" for w in snapshot["workers"]
                ):
                    break
                await asyncio.sleep(0.05)
            status = fleet.fleet_status()
        finally:
            await fleet.aclose()
        return report, status, killed

    previous = os.environ.pop("REPRO_FAULTS", None)
    if fault_plan is not None:
        os.environ["REPRO_FAULTS"] = fault_plan
    obs.enable()
    try:
        return asyncio.run(scenario())
    finally:
        obs.disable()
        obs.get_registry().reset()
        os.environ.pop("REPRO_FAULTS", None)
        if previous is not None:
            os.environ["REPRO_FAULTS"] = previous


def _summarize(report) -> dict:
    """The per-run numbers that land under ``fleet`` in the JSON."""
    return {
        "requests": report.requests,
        "ok": report.ok,
        "shed": report.shed,
        "errors": report.errors,
        "throughput_qps": report.throughput_qps,
        "p50_ms": report.latency_ms.get("p50"),
        "p99_ms": report.latency_ms.get("p99"),
        "status_counts": dict(report.status_counts),
    }


def _assert_zero_failed(report) -> None:
    """No accepted request may fail: no transport errors, no 5xx other
    than the router's documented 503 shed/drain signal."""
    assert report.errors == 0, report.to_dict()
    bad = {
        s: c
        for s, c in report.status_counts.items()
        if s in _FAILURE_STATUSES
    }
    assert not bad, f"server errors: {bad}"
    assert report.ok > 0


def test_fleet_cold_cache_scaling(micro_index):
    """Cold-cache qps for 1/2/4 workers -> ``fleet.scaling``.

    Every request misses the result cache (``cache_entries=1`` plus a
    uniform mix over many distinct queries), so throughput tracks raw
    query compute — the quantity that should scale with the worker
    count.  The scaling floor (>=1.7x for 1->2, >=3x for 1->4) is only
    asserted where the hardware can express it (>= 4 CPUs, as on CI
    runners); the honest numbers and the CPU count are always
    recorded.
    """
    cpus = os.cpu_count() or 1
    results: dict[str, dict] = {}
    for workers in (1, 2, 4):
        report, status, _ = _run_fleet_load(
            micro_index,
            workers=workers,
            cache_entries=1,
            num_distinct=256,
            skew=0.0,
        )
        _assert_zero_failed(report)
        for worker in status["workers"]:
            assert worker["attach"] == "shm", worker
        results[str(workers)] = _summarize(report)

    qps1 = results["1"]["throughput_qps"]
    qps2 = results["2"]["throughput_qps"]
    qps4 = results["4"]["throughput_qps"]
    section = {
        "cpus": cpus,
        "cache": "cold (cache_entries=1, uniform mix over 256 queries)",
        "per_workers": results,
        "speedup_1_to_2": round(qps2 / qps1, 2) if qps1 else None,
        "speedup_1_to_4": round(qps4 / qps1, 2) if qps1 else None,
    }
    _merge_out("scaling", section)
    lines = [
        f"workers={w}: {r['throughput_qps']:.0f} qps, "
        f"p50={r['p50_ms']}ms p99={r['p99_ms']}ms"
        for w, r in results.items()
    ]
    lines.append(
        f"speedup 1->2: {section['speedup_1_to_2']}x, "
        f"1->4: {section['speedup_1_to_4']}x (cpus={cpus})"
    )
    register_report("Fleet cold-cache scaling", "\n".join(lines))

    if cpus >= 4:
        assert section["speedup_1_to_2"] >= 1.7, section
        assert section["speedup_1_to_4"] >= 3.0, section


def test_fleet_chaos_tail(micro_index):
    """Closed-loop load with workers crashing -> ``fleet.chaos``.

    Baseline run (2 workers, no faults) against a faulted run under
    ``worker:mode=crash:rate=0.05`` plus one explicit SIGKILL of shard
    0 mid-load.  The resilience bar: zero failed accepted requests in
    both runs, faulted p99 within 5x of the no-fault p99, at least one
    supervised respawn, and every recovered worker re-attached the
    shared-memory segment (``attach == "shm"`` — no disk reload).
    """
    cpus = os.cpu_count() or 1
    base_report, base_status, _ = _run_fleet_load(
        micro_index, workers=2
    )
    fault_report, fault_status, killed = _run_fleet_load(
        micro_index,
        workers=2,
        fault_plan=CRASH_PLAN,
        kill_after_s=0.6,
    )

    _assert_zero_failed(base_report)
    _assert_zero_failed(fault_report)

    dispatch = fault_status["dispatch"]
    assert dispatch["accepted"] == dispatch["answered"] + dispatch["shed"]
    restarts = sum(w["restarts"] for w in fault_status["workers"])
    assert restarts >= 1, fault_status["workers"]
    for worker in fault_status["workers"]:
        if worker["state"] == "ready":
            assert worker["attach"] == "shm", worker

    p99_base = base_report.latency_ms["p99"]
    p99_fault = fault_report.latency_ms["p99"]
    assert p99_fault <= 5.0 * p99_base, (p99_base, p99_fault)
    if cpus >= 4:
        # The >=1k qps bar needs real parallel hardware (CI has it).
        assert base_report.throughput_qps >= 1000.0, base_report.to_dict()

    section = {
        "cpus": cpus,
        "fault_plan": CRASH_PLAN,
        "workers_killed": killed,
        "baseline": _summarize(base_report),
        "faulted": _summarize(fault_report),
        "p99_ratio": round(p99_fault / p99_base, 2) if p99_base else None,
        "restarts": restarts,
        "attach": [w["attach"] for w in fault_status["workers"]],
    }
    _merge_out("chaos", section)
    register_report(
        "Fleet chaos tail (crash rate 0.05 + 1 kill)",
        (
            f"baseline: {section['baseline']['throughput_qps']:.0f} qps, "
            f"p99={p99_base}ms\n"
            f"faulted:  {section['faulted']['throughput_qps']:.0f} qps, "
            f"p99={p99_fault}ms (ratio {section['p99_ratio']}x)\n"
            f"restarts: {restarts}, shed: "
            f"{section['faulted']['shed']}, attach: {section['attach']}"
        ),
    )
