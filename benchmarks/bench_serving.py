"""Serving throughput/latency benchmark -> ``BENCH_serving.json``.

Builds a micro index, starts the asyncio query server in-process, and
drives it with the seeded closed-loop load generator.  The acceptance
bar from the serving issue: >= 500 QPS single-process with p99 under
the configured deadline, zero 5xx, and a warm cache (non-zero hit
rate).  The full report lands in ``BENCH_serving.json`` so CI can
archive the run.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest
from conftest import register_report

from repro import obs
from repro.core import CachedIndex, InflexConfig, InflexIndex, ServingConfig
from repro.datasets import generate_flixster_like
from repro.serving import QueryServer, run_loadgen

DEADLINE_MS = 250.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


@pytest.fixture(scope="module")
def micro_index() -> InflexIndex:
    """A small but real index — big enough that misses cost something."""
    dataset = generate_flixster_like(
        num_nodes=250,
        num_topics=4,
        num_items=80,
        topics_per_node=1,
        base_strength=0.2,
        seed=13,
    )
    config = InflexConfig(
        num_index_points=20,
        num_dirichlet_samples=1500,
        seed_list_length=12,
        ris_num_sets=1200,
        knn=6,
        leaf_size=8,
        seed=17,
    )
    return InflexIndex.build(dataset.graph, dataset.item_topics, config)


def test_serving_throughput(micro_index):
    obs.enable()
    config = ServingConfig(
        port=0, deadline_ms=DEADLINE_MS, cache_decimals=6
    )

    async def scenario():
        server = QueryServer(micro_index, config)
        await server.start()
        try:
            report = await run_loadgen(
                "127.0.0.1",
                server.port,
                mode="closed",
                duration_s=3.0,
                concurrency=8,
                k=10,
                deadline_ms=DEADLINE_MS,
                num_distinct=64,
                skew=1.1,
                seed=42,
            )
            stats = server.stats()
        finally:
            await server.aclose()
        return report, stats

    try:
        report, stats = asyncio.run(scenario())
    finally:
        obs.disable()
        obs.get_registry().reset()

    payload = report.to_dict()
    payload["server_stats"] = stats
    OUT_PATH.write_text(json.dumps(payload, indent=2))
    register_report("Serving throughput (closed loop)", report.render())

    # Acceptance bar: no 5xx, sustained throughput, bounded tail, and a
    # cache that actually absorbed the Zipf-skewed repeat traffic.
    assert report.errors == 0
    assert not any(s.startswith("5") for s in report.status_counts)
    assert report.ok > 0
    assert report.throughput_qps >= 500.0
    assert report.latency_ms["p99"] < DEADLINE_MS
    assert report.cache_hit_rate is not None and report.cache_hit_rate > 0.0


def test_serving_query_hot_path(benchmark, micro_index):
    """Micro-benchmark of the per-request cached query path."""
    cached = CachedIndex(micro_index, decimals=6)
    gamma = [0.4, 0.3, 0.2, 0.1]
    cached.query(gamma, 10)
    benchmark(cached.query, gamma, 10)
    assert cached.hits > 0
