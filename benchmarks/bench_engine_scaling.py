"""Engine-substitution and index-economics benchmarks.

* validates the RIS-for-CELF++ substitution on the benchmark dataset
  (small item sample: CELF++ is the expensive engine by design);
* reports the index break-even economics (build cost vs per-query
  savings against the offline path).
"""

from conftest import register_report

from repro.experiments import engine_equivalence, scaling


def test_engine_equivalence(benchmark, context):
    gamma = context.dataset.item_topics[0]
    from repro.core import offline_seed_list

    result = benchmark.pedantic(
        offline_seed_list,
        args=(context.graph, gamma, 10),
        kwargs={"engine": "ris", "ris_num_sets": 2000, "seed": 1},
        rounds=3,
        iterations=1,
    )
    assert len(result) == 10

    check = engine_equivalence.run(
        context, num_items=3, k=10, num_snapshots=100
    )
    register_report("Engine substitution check", check.render())
    assert check.mean_distance < 0.5
    assert 0.85 <= check.spread_ratio <= 1.15


def test_index_economics(benchmark, context):
    gamma = context.workload.items[9]
    benchmark(context.index.query, gamma, context.scale.max_k)

    economics = scaling.run(
        context,
        sizes=(context.scale.num_index_points // 4,),
        num_offline_queries=2,
        num_index_queries=10,
    )
    register_report("Index economics", economics.render())
    h = context.scale.num_index_points // 4
    # The whole point of the paper: indexed queries are far cheaper
    # than offline answers, so the build amortizes quickly.
    assert economics.query_ms[h] / 1000.0 < economics.offline_seconds_per_query
