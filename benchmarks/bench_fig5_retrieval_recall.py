"""Figure 5 benchmark: similarity-search retrieval accuracy.

Times the INFLEX similarity search (Algorithm 1) on the bb-tree and
regenerates the recall-vs-leaves curves plus the Anderson--Darling
early-stopping statistics from the Section 5 text.
"""

from conftest import register_report

from repro.bbtree import inflex_search
from repro.experiments import fig5_retrieval_recall
from repro.simplex import sample_uniform_simplex


def test_fig5_retrieval_recall(benchmark, context):
    query = sample_uniform_simplex(1, context.scale.num_topics, seed=5)[0]
    tree = context.index.tree
    result = benchmark(inflex_search, tree, query)
    assert len(result) >= 1

    recall = fig5_retrieval_recall.run(context)
    register_report("Figure 5 - retrieval recall", recall.render())
    # Recall grows with the leaf budget and the AD stop is cheaper than
    # the full budget.
    for k in recall.k_values:
        first = recall.recall[(k, recall.leaf_budgets[0])]
        last = recall.recall[(k, recall.leaf_budgets[-1])]
        assert last >= first - 1e-9
    assert recall.ad_mean_computations <= recall.fixed_mean_computations[
        max(recall.leaf_budgets)
    ]
