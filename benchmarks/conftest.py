"""Shared fixtures for the benchmark suite.

All benches share one ``paper-shape`` experiment context (dataset,
index, workload, ground truths), so the expensive construction is paid
once per pytest session.  Each bench does two things:

* times a representative micro-operation with ``pytest-benchmark``
  (query evaluation, search, aggregation, ...), and
* runs the corresponding table/figure experiment and registers its
  rendered output, which is printed in the terminal summary — the
  regenerated rows/series of the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig8_spread, get_context

_REPORTS: list[tuple[str, str]] = []


def register_report(title: str, text: str) -> None:
    """Queue an experiment's rendered output for the terminal summary."""
    _REPORTS.append((title, text))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for title, text in _REPORTS:
        terminalreporter.write_sep("-", title)
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def context():
    """The shared paper-shape experiment context."""
    return get_context("paper-shape")


@pytest.fixture(scope="session")
def spread_result(context):
    """Figure 8 / Table 2 spreads, shared with the Figure 9 bench."""
    return fig8_spread.run(context)
