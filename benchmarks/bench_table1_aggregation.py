"""Table 1 benchmark: rank-aggregation accuracy.

Times the weighted Copeland aggregation (the paper's winning method)
and regenerates Table 1: Kendall-tau of Borda / Borda^w / Copeland /
Copeland^w against the offline ground truth across seed-set sizes.
"""

import numpy as np
from conftest import register_report

from repro.core import aggregate_seed_lists
from repro.experiments import table1_aggregation
from repro.ranking import importance_weights
from repro.simplex import kl_divergence_matrix


def test_table1_aggregation(benchmark, context):
    index = context.index
    gamma = context.workload.items[0]
    divs = kl_divergence_matrix(index.index_points, gamma)
    order = np.argsort(divs)[:10]
    lists = [index.seed_lists[int(i)] for i in order]
    weights = importance_weights(divs[order], context.scale.num_topics)

    result = benchmark(
        aggregate_seed_lists,
        lists,
        context.scale.max_k,
        aggregator="copeland",
        weights=weights,
    )
    assert len(result) >= 1

    table = table1_aggregation.run(context)
    register_report("Table 1 - aggregation accuracy", table.render())
    means = table.method_means()
    # Paper's findings: weighting helps; Copeland^w is (near-)best.
    assert means["borda_w"] <= means["borda"] + 1e-9
    assert means["copeland_w"] <= means["copeland"] + 1e-9
    assert means["copeland_w"] <= min(means.values()) + 0.02
