"""Section 5 text benchmarks: paired t-tests and the workload split.

Regenerates the statistical comparisons the paper reports in prose
(INFLEX vs approxKNN indistinguishable, Copeland^w significantly best,
robustness across data-driven and uniform queries), timing the paired
t-test primitive.
"""

import numpy as np
from conftest import register_report

from repro.experiments import significance, workload_split
from repro.stats import paired_t_test


def test_significance(benchmark, context):
    rng = np.random.default_rng(1)
    a = rng.normal(0.1, 0.02, 60)
    b = a + rng.normal(0.005, 0.01, 60)
    result = benchmark(paired_t_test, a, b)
    assert 0.0 <= result.p_value <= 1.0

    tests = significance.run(context)
    register_report("Section 5 - paired t-tests", tests.render())
    inflex_vs_ad = tests.strategy_tests[("inflex", "approx-ad")]
    # INFLEX must never be significantly worse than approxAD — the
    # selection step is the whole point.
    if inflex_vs_ad.significant():
        assert inflex_vs_ad.mean_difference < 0


def test_workload_split(benchmark, context):
    gamma = context.workload.items[7]
    benchmark(context.index.query, gamma, context.scale.max_k)

    split = workload_split.run(context)
    register_report("Section 5 - workload split", split.render())
    assert set(split.mean_distance) == {"data-driven", "uniform"}
    # Robustness: the stress half does not collapse.
    assert split.mean_distance["uniform"] < 0.6
