"""Latency-percentile benchmark (tail behavior behind Figure 7's means)."""

from conftest import register_report

from repro.experiments import latency


def test_latency_percentiles(benchmark, context):
    gamma = context.workload.items[8]
    benchmark(context.index.query, gamma, context.scale.max_k)

    result = latency.run(context, repeats=2)
    register_report("Query latency percentiles", result.render())
    # The paper's "few milliseconds" claim should hold at the tail too.
    for strategy in result.samples:
        assert result.percentiles[(strategy, 99)] < 100.0
    # INFLEX's p99 stays below the exact search's p99.
    assert (
        result.percentiles[("inflex", 99)]
        <= result.percentiles[("exact-knn", 99)] * 1.5
    )
