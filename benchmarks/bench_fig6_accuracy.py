"""Figure 6 benchmark: accuracy of the query-evaluation strategies.

Times a full INFLEX query evaluation and regenerates Figure 6: the
mean Kendall-tau distance of every strategy to the offline ground
truth across seed-set sizes.
"""

from conftest import register_report

from repro.experiments import fig6_accuracy


def test_fig6_accuracy(benchmark, context):
    gamma = context.workload.items[0]
    answer = benchmark(
        context.index.query, gamma, context.scale.max_k, strategy="inflex"
    )
    assert len(answer.seeds) == context.scale.max_k

    result = fig6_accuracy.run(context)
    register_report("Figure 6 - accuracy comparison", result.render())
    means = result.strategy_means()
    # Paper's orderings: selection helps INFLEX over plain approxAD,
    # and exact retrieval is the accuracy ceiling.
    assert means["inflex"] <= means["approx-ad"] + 1e-9
    assert means["exact-knn"] <= min(means.values()) + 0.02
