"""Benchmark: parallel Monte-Carlo spread vs the inline sequential path.

Reproduces the workload that motivates the engine — a CELF++-style
initial sweep: one ``estimate_many`` batch of singleton seed sets at a
real simulation budget.  The comparison runs the identical batch at
``workers=1`` (inline, no pool) and at ``min(4, cpu_count)`` workers and
reports the speedup.  Determinism makes the comparison exact: both
configurations return bit-identical estimates, so the timing delta is
pure scheduling.

The speedup threshold is only asserted on machines with at least four
cores — on smaller runners (including 1-CPU CI containers) the numbers
are still printed so regressions stay visible in the artifact.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import register_report

from repro.graph import interest_topic_graph
from repro.propagation import ParallelMonteCarloSpread, shutdown_pools
from repro.workers import cpu_count

NUM_NODES = 2000
NUM_TOPICS = 4
NUM_SIMULATIONS = 500
NUM_CANDIDATES = 16
#: Acceptance bar from the issue: >= 2.5x on a 4-core runner.
SPEEDUP_THRESHOLD = 2.5


def _workload_graph():
    return interest_topic_graph(
        NUM_NODES, NUM_TOPICS, topics_per_node=1, base_strength=0.1, seed=97
    )


def _sweep(graph, workers: int) -> tuple[list[float], float]:
    """Run the singleton sweep; return (estimates, elapsed seconds)."""
    gamma = np.full(NUM_TOPICS, 1.0 / NUM_TOPICS)
    seed_sets = [[node] for node in range(NUM_CANDIDATES)]
    with ParallelMonteCarloSpread(
        graph,
        gamma,
        num_simulations=NUM_SIMULATIONS,
        seed=5,
        workers=workers,
    ) as estimator:
        if workers > 1:
            # Pay pool startup before the measured region — the pool is
            # persistent in real use, so startup is not part of the
            # steady-state cost being compared.
            estimator.estimate_many([[0]])
        start = time.perf_counter()
        values = estimator.estimate_many(seed_sets)
        elapsed = time.perf_counter() - start
    return values, elapsed


def test_parallel_spread_speedup(benchmark):
    graph = _workload_graph()
    gamma = np.full(NUM_TOPICS, 1.0 / NUM_TOPICS)

    # Micro-op: one inline estimate at a small budget.
    with ParallelMonteCarloSpread(
        graph, gamma, num_simulations=32, seed=5, workers=1
    ) as micro:
        benchmark(micro.estimate_with_error, [0])

    parallel_workers = min(4, cpu_count())
    sequential_values, sequential_time = _sweep(graph, 1)
    parallel_values, parallel_time = _sweep(graph, parallel_workers)
    shutdown_pools()

    # The determinism contract: same root seed, same call sequence,
    # identical floats regardless of pool width.
    assert parallel_values == sequential_values

    speedup = sequential_time / parallel_time if parallel_time else 0.0
    sims = NUM_SIMULATIONS * NUM_CANDIDATES
    report = "\n".join(
        [
            f"workload: {NUM_CANDIDATES} singleton evaluations x "
            f"{NUM_SIMULATIONS} simulations = {sims} cascades, "
            f"{NUM_NODES}-node graph",
            f"sequential (workers=1):        {sequential_time:8.3f} s",
            f"parallel   (workers={parallel_workers}):"
            f"        {parallel_time:8.3f} s",
            f"speedup:                       {speedup:8.2f}x "
            f"(cpu_count={cpu_count()})",
        ]
    )
    register_report("Parallel Monte-Carlo spread", report)
    print(report)

    if cpu_count() >= 4 and parallel_workers >= 4:
        assert speedup >= SPEEDUP_THRESHOLD, (
            f"expected >= {SPEEDUP_THRESHOLD}x speedup on a "
            f"{cpu_count()}-core machine, measured {speedup:.2f}x"
        )
