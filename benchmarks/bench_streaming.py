"""Streaming maintenance benchmark -> ``BENCH_streaming.json``.

Measures the economics of :mod:`repro.streaming` on a serving-sized
sparse graph: delta-apply throughput (deltas/second through the
incremental maintainer) and the incremental-vs-full-rebuild speedup at
several batch sizes.  The invalidation lemma predicts the win: a batch
touching ``b`` arc heads forces resampling only of the RR sets that
contain one of those heads — on a sparse 1000-node graph a single node
sits in a few percent of sets, so small batches retain the vast
majority of the sketch while a rebuild pays for every set again.

Acceptance bar from the issue: >= 5x speedup over a from-scratch
rebuild for the smallest batch size.  The comparison is apples to
apples because the differential guarantee makes both sides produce
bit-identical state (asserted on a sampled point).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np
from conftest import register_report

from repro.datasets import generate_delta_workload
from repro.graph import interest_topic_graph
from repro.simplex.sampling import sample_uniform_simplex
from repro.streaming import DeltaBatch, EdgeDelta, IncrementalSketchMaintainer

NUM_NODES = 1000
NUM_TOPICS = 4
NUM_POINTS = 4
NUM_SETS = 500
SEED_LIST_LENGTH = 10
BATCH_SIZES = (1, 4, 16)
BATCHES_PER_SIZE = 3
#: Acceptance bar from the issue: >= 5x vs rebuild at the smallest batch.
SPEEDUP_THRESHOLD = 5.0

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"


def _workload_graph():
    return interest_topic_graph(
        NUM_NODES, NUM_TOPICS, topics_per_node=1, base_strength=0.1, seed=131
    )


def _index_points():
    return sample_uniform_simplex(NUM_POINTS, NUM_TOPICS, seed=137)


def _fresh_maintainer(graph):
    return IncrementalSketchMaintainer(
        graph,
        _index_points(),
        num_sets=NUM_SETS,
        seed_list_length=SEED_LIST_LENGTH,
        seed=139,
    )


def test_streaming_incremental_speedup(benchmark):
    graph = _workload_graph()

    # Micro-op: one single-reweight batch through the maintainer (a
    # reweight of an existing arc is idempotently valid, so the
    # benchmark loop can replay it).
    micro = _fresh_maintainer(graph)
    arc = next(iter(micro.graph.arcs()))
    reweight = DeltaBatch(
        deltas=(
            EdgeDelta(
                "reweight", int(arc[0]), int(arc[1]), (0.2,) * NUM_TOPICS
            ),
        ),
        timestamp=0.0,
    )
    benchmark(micro.apply_batch, reweight)

    results = []
    for batch_size in BATCH_SIZES:
        maintainer = _fresh_maintainer(graph)
        log = generate_delta_workload(
            graph,
            num_batches=BATCHES_PER_SIZE,
            batch_size=batch_size,
            seed=1000 + batch_size,
        )
        apply_times, rebuild_times, retained = [], [], []
        for batch in log:
            start = time.perf_counter()
            report = maintainer.apply_batch(batch)
            apply_times.append(time.perf_counter() - start)
            retained.append(
                report.rr_sets_retained
                / (report.rr_sets_retained + report.rr_sets_resampled)
            )
            start = time.perf_counter()
            rebuilt = _fresh_maintainer(maintainer.graph)
            rebuild_times.append(time.perf_counter() - start)
        # Differential spot-check: the cheap path and the expensive
        # path agree bit-for-bit, so the timing comparison is fair.
        for inc, ref in zip(
            maintainer.rr_collections[0].sets, rebuilt.rr_collections[0].sets
        ):
            assert np.array_equal(inc, ref)
        apply_s = statistics.median(apply_times)
        rebuild_s = statistics.median(rebuild_times)
        results.append(
            {
                "batch_size": batch_size,
                "apply_seconds": apply_s,
                "rebuild_seconds": rebuild_s,
                "speedup": rebuild_s / apply_s if apply_s else 0.0,
                "deltas_per_second": batch_size / apply_s if apply_s else 0.0,
                "retain_fraction": statistics.median(retained),
            }
        )

    payload = {
        "graph": {
            "num_nodes": NUM_NODES,
            "num_topics": NUM_TOPICS,
            "num_arcs": int(graph.num_arcs),
        },
        "sketch": {
            "num_points": NUM_POINTS,
            "num_sets": NUM_SETS,
            "seed_list_length": SEED_LIST_LENGTH,
        },
        "speedup_threshold": SPEEDUP_THRESHOLD,
        "results": results,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2))

    lines = [
        f"graph: {NUM_NODES} nodes / {graph.num_arcs} arcs, "
        f"sketch: {NUM_POINTS} points x {NUM_SETS} RR sets",
        "batch | apply ms | rebuild ms | speedup | deltas/s | retained",
    ]
    for row in results:
        lines.append(
            f"{row['batch_size']:5d} | {row['apply_seconds'] * 1e3:8.1f} | "
            f"{row['rebuild_seconds'] * 1e3:10.1f} | "
            f"{row['speedup']:6.1f}x | {row['deltas_per_second']:8.1f} | "
            f"{row['retain_fraction']:7.1%}"
        )
    report = "\n".join(lines)
    register_report("Streaming incremental maintenance", report)
    print(report)

    smallest = results[0]
    assert smallest["speedup"] >= SPEEDUP_THRESHOLD, (
        f"expected >= {SPEEDUP_THRESHOLD}x over rebuild at batch size "
        f"{smallest['batch_size']}, measured {smallest['speedup']:.1f}x"
    )
