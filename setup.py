"""Setuptools shim.

The execution environment has no network access and no ``wheel``
package, so PEP 517 editable builds (which need ``bdist_wheel``) fail.
Keeping a classic ``setup.py`` lets ``pip install -e .`` take the legacy
``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
