"""Tests for the Figure-1 end-to-end pipeline experiment."""

import pytest

from repro.experiments import fig1_pipeline


@pytest.fixture(scope="module")
def result():
    return fig1_pipeline.run(
        num_nodes=180,
        num_topics=3,
        num_items=200,
        num_queries=4,
        k=6,
        seed=9,
    )


class TestFig1Pipeline:
    def test_recovery_better_than_chance(self, result):
        assert result.gamma_recovery > 0.0
        assert result.probability_recovery > 0.0

    def test_both_indexes_beat_random(self, result):
        assert result.spread_true_params > result.spread_random
        assert result.spread_learned_params > result.spread_random

    def test_learning_cost_bounded(self, result):
        # The learned-parameter index loses some spread to estimation
        # error, but stays within a sane band of the truth-built one.
        assert 0.3 <= result.learned_vs_true_ratio <= 1.3

    def test_render(self, result):
        text = result.render()
        assert "learned / truth ratio" in text
        assert "Figure-1" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            fig1_pipeline.run(num_queries=0)
