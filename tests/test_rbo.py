"""Tests for rank-biased overlap and overlap@k."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ranking import overlap_at_k, rank_biased_overlap

top_lists = st.lists(
    st.integers(min_value=0, max_value=15),
    min_size=1,
    max_size=8,
    unique=True,
)


class TestRBO:
    def test_identical_is_one(self):
        assert rank_biased_overlap([1, 2, 3], [1, 2, 3]) == pytest.approx(
            1.0
        )

    def test_disjoint_near_zero(self):
        value = rank_biased_overlap(
            [1, 2, 3], [4, 5, 6], extrapolate=False
        )
        assert value == pytest.approx(0.0, abs=1e-12)

    def test_top_weighted(self):
        base = list(range(10))
        # Swap at the top vs swap at the bottom of the list.
        top_swap = [1, 0] + base[2:]
        bottom_swap = base[:8] + [9, 8]
        assert rank_biased_overlap(base, top_swap) < rank_biased_overlap(
            base, bottom_swap
        )

    def test_persistence_effect(self):
        a = list(range(8))
        b = [0, 1, 2, 7, 6, 5, 4, 3]
        shallow = rank_biased_overlap(a, b, p=0.5)  # top-heavy
        deep = rank_biased_overlap(a, b, p=0.95)
        # Agreement is perfect at the top: the top-heavy weighting
        # scores higher.
        assert shallow > deep

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_biased_overlap([1], [1], p=1.0)
        with pytest.raises(ValueError):
            rank_biased_overlap([1, 1], [1, 2])
        with pytest.raises(ValueError):
            rank_biased_overlap([], [1])

    @given(top_lists, top_lists)
    @settings(max_examples=60)
    def test_property_bounds_and_symmetry(self, a, b):
        value = rank_biased_overlap(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(rank_biased_overlap(b, a))

    @given(top_lists)
    @settings(max_examples=30)
    def test_property_self_similarity(self, a):
        assert rank_biased_overlap(a, a) == pytest.approx(1.0)

    def test_agrees_in_direction_with_kendall(self, small_index):
        from repro.ranking import kendall_tau_top

        lists = small_index.seed_lists
        base = lists[0]
        rng = np.random.default_rng(1)
        pairs = [(base, lists[i]) for i in rng.integers(1, len(lists), 6)]
        kendalls = [kendall_tau_top(a, b) for a, b in pairs]
        rbos = [rank_biased_overlap(a, b) for a, b in pairs]
        # Distances and similarities should anti-correlate.
        corr = np.corrcoef(kendalls, rbos)[0, 1]
        assert corr < 0.2


class TestOverlapAtK:
    def test_full_overlap(self):
        assert overlap_at_k([1, 2, 3], [3, 2, 1], 3) == 1.0

    def test_partial(self):
        assert overlap_at_k([1, 2, 3, 4], [1, 2, 9, 9], 4) == pytest.approx(
            0.5
        )

    def test_short_lists(self):
        assert overlap_at_k([1], [1], 5) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            overlap_at_k([1], [1], 0)
