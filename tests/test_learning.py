"""Tests for propagation logs and the TIC EM learner."""

import numpy as np
import pytest

from repro.graph import interest_topic_graph
from repro.learning import (
    ItemTrace,
    PropagationLog,
    TICLearner,
    generate_propagation_log,
    held_out_log_likelihood_curve,
    match_topics,
    parameter_recovery_correlation,
)


class TestItemTrace:
    def test_sorted_by_time(self):
        trace = ItemTrace(0, np.array([5, 3, 7]), np.array([2, 0, 1]))
        assert trace.nodes.tolist() == [3, 7, 5]
        assert trace.times.tolist() == [0, 1, 2]

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError):
            ItemTrace(0, np.array([1, 1]), np.array([0, 1]))

    def test_dense_times(self):
        trace = ItemTrace(0, np.array([2, 0]), np.array([3, 1]))
        dense = trace.activation_times(4)
        assert dense.tolist() == [1, -1, 3, -1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ItemTrace(0, np.array([1, 2]), np.array([0]))


class TestPropagationLog:
    def test_counts(self):
        traces = (
            ItemTrace(0, np.array([0, 1]), np.array([0, 1])),
            ItemTrace(1, np.array([2]), np.array([0])),
        )
        log = PropagationLog(5, traces)
        assert log.num_items == 2
        assert log.total_activations == 3

    def test_node_range_validated(self):
        with pytest.raises(ValueError):
            PropagationLog(
                2, (ItemTrace(0, np.array([5]), np.array([0])),)
            )

    def test_save_load_round_trip(self, tmp_path):
        traces = (
            ItemTrace(0, np.array([0, 3]), np.array([0, 2])),
            ItemTrace(1, np.array([1]), np.array([0])),
        )
        log = PropagationLog(5, traces)
        path = tmp_path / "log.txt"
        log.save(path)
        loaded = PropagationLog.load(path)
        assert loaded.num_nodes == 5
        assert loaded.num_items == 2
        assert loaded[0].nodes.tolist() == [0, 3]
        assert loaded[1].times.tolist() == [0]


class TestGenerateLog:
    def test_generates_traces_for_all_items(self, small_graph):
        items = np.random.default_rng(1).dirichlet(
            np.ones(small_graph.num_topics), size=10
        )
        log = generate_propagation_log(
            small_graph, items, seeds_per_item=3, seed=2
        )
        assert log.num_items == 10
        assert all(trace.num_activations >= 1 for trace in log)

    def test_deterministic(self, small_graph):
        items = np.random.default_rng(3).dirichlet(
            np.ones(small_graph.num_topics), size=5
        )
        a = generate_propagation_log(small_graph, items, seed=4)
        b = generate_propagation_log(small_graph, items, seed=4)
        assert all(
            np.array_equal(x.nodes, y.nodes) for x, y in zip(a, b)
        )

    def test_invalid_args(self, small_graph):
        items = np.ones((3, small_graph.num_topics)) / small_graph.num_topics
        with pytest.raises(ValueError):
            generate_propagation_log(small_graph, items, seeds_per_item=0)
        with pytest.raises(ValueError):
            generate_propagation_log(
                small_graph, items, cascades_per_item=0
            )


@pytest.fixture(scope="module")
def em_setup():
    """Graph + log generated from known ground-truth parameters."""
    graph = interest_topic_graph(
        120, 3, topics_per_node=1, base_strength=0.3, seed=41
    )
    rng = np.random.default_rng(42)
    item_topics = rng.dirichlet(np.full(3, 0.3), size=200)
    log = generate_propagation_log(
        graph, item_topics, seeds_per_item=6, seed=43
    )
    return graph, item_topics, log


class TestTICLearner:
    def test_log_likelihood_nondecreasing(self, em_setup):
        graph, _, log = em_setup
        learner = TICLearner(graph, 3, max_iter=15, seed=44)
        result = learner.fit(log)
        held_out_log_likelihood_curve(result.history)  # raises on decrease

    def test_probabilities_in_unit_interval(self, em_setup):
        graph, _, log = em_setup
        result = TICLearner(graph, 3, max_iter=10, seed=45).fit(log)
        assert result.probabilities.min() >= 0.0
        assert result.probabilities.max() <= 1.0
        assert np.allclose(result.item_topics.sum(axis=1), 1.0)
        assert np.all(result.item_topics > 0)

    def test_truth_initialization_is_stable(self, em_setup):
        graph, item_topics, log = em_setup
        learner = TICLearner(graph, 3, max_iter=25, seed=46)
        result = learner.fit(
            log,
            init_probabilities=graph.probabilities,
            init_item_topics=item_topics,
        )
        corr = parameter_recovery_correlation(
            result.item_topics, item_topics
        )
        assert corr > 0.6

    def test_trace_clustering_beats_nothing(self, em_setup):
        graph, item_topics, log = em_setup
        learner = TICLearner(graph, 3, max_iter=25, seed=47)
        result = learner.fit(log, init_item_topics="trace-clustering")
        corr = parameter_recovery_correlation(
            result.item_topics, item_topics
        )
        # Better than chance by a clear margin.
        assert corr > 0.2

    def test_unknown_init_string_rejected(self, em_setup):
        graph, _, log = em_setup
        learner = TICLearner(graph, 3, seed=48)
        with pytest.raises(ValueError):
            learner.fit(log, init_item_topics="bogus")

    def test_init_shape_validated(self, em_setup):
        graph, _, log = em_setup
        learner = TICLearner(graph, 3, seed=49)
        with pytest.raises(ValueError):
            learner.fit(log, init_probabilities=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            learner.fit(log, init_item_topics=np.ones((2, 3)))

    def test_log_likelihood_api(self, em_setup):
        graph, item_topics, log = em_setup
        learner = TICLearner(graph, 3, max_iter=5, seed=50)
        result = learner.fit(log)
        ll = learner.log_likelihood(
            log, result.probabilities, result.item_topics
        )
        assert ll == pytest.approx(result.log_likelihood, rel=0.05)

    def test_infer_item_topics(self, em_setup):
        graph, item_topics, log = em_setup
        learner = TICLearner(graph, 3, max_iter=20, seed=51)
        result = learner.fit(
            log,
            init_probabilities=graph.probabilities,
            init_item_topics=item_topics,
        )
        inferred = learner.infer_item_topics(result, log)
        assert inferred.shape == (log.num_items, 3)
        assert np.allclose(inferred.sum(axis=1), 1.0)

    def test_to_graph(self, em_setup):
        graph, _, log = em_setup
        result = TICLearner(graph, 3, max_iter=3, seed=52).fit(log)
        learned = result.to_graph(graph)
        assert learned.num_arcs == graph.num_arcs
        assert learned.num_topics == 3

    def test_parameter_validation(self, em_setup):
        graph, _, _ = em_setup
        with pytest.raises(ValueError):
            TICLearner(graph, 0)
        with pytest.raises(ValueError):
            TICLearner(graph, 2, max_iter=0)
        with pytest.raises(ValueError):
            TICLearner(graph, 2, smoothing=0.0)
        with pytest.raises(ValueError):
            TICLearner(graph, 2, prior_mean=1.5)

    def test_node_count_mismatch_rejected(self, em_setup, tiny_graph):
        _, _, log = em_setup
        learner = TICLearner(tiny_graph, 2, seed=53)
        with pytest.raises(ValueError):
            learner.fit(log)

    def test_empty_log_rejected(self, em_setup):
        graph, _, _ = em_setup
        learner = TICLearner(graph, 2, seed=54)
        with pytest.raises(ValueError):
            learner.fit(PropagationLog(graph.num_nodes, ()))


class TestEvaluationHelpers:
    def test_match_topics_identity(self):
        mat = np.random.default_rng(55).dirichlet(np.ones(4), size=50)
        perm = match_topics(mat, mat)
        assert perm.tolist() == [0, 1, 2, 3]

    def test_match_topics_permutation(self):
        mat = np.random.default_rng(56).dirichlet(np.ones(3), size=60)
        shuffled = mat[:, [2, 0, 1]]
        perm = match_topics(shuffled, mat)
        assert np.allclose(shuffled[:, perm], mat)

    def test_match_topics_shape_mismatch(self):
        with pytest.raises(ValueError):
            match_topics(np.ones((3, 2)), np.ones((3, 3)))

    def test_curve_raises_on_decrease(self):
        with pytest.raises(ValueError):
            held_out_log_likelihood_curve([-10.0, -5.0, -7.0])
