"""Cross-cutting property-based tests (hypothesis).

Deep invariants across subsystem boundaries: cascade coupling, CSR
round trips, aggregation sanity, and the weighting pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import aggregate_seed_lists
from repro.graph import TopicGraph
from repro.im import SeedList
from repro.propagation import simulate_cascade
from repro.ranking import (
    borda_aggregation,
    copeland_aggregation,
    importance_weights,
    kendall_tau_top,
)
from repro.simplex import kl_divergence, sample_uniform_simplex


# ----------------------------------------------------------------------
# Graph strategies
# ----------------------------------------------------------------------
@st.composite
def random_topic_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    z = draw(st.integers(min_value=1, max_value=4))
    max_arcs = n * (n - 1)
    m = draw(st.integers(min_value=0, max_value=min(max_arcs, 25)))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    chosen = rng.choice(len(pairs), size=m, replace=False) if m else []
    arcs = np.asarray([pairs[i] for i in chosen], dtype=np.int64).reshape(
        m, 2
    )
    probs = rng.uniform(0.0, 1.0, size=(m, z))
    return TopicGraph.from_arcs(n, arcs, probs)


class TestGraphProperties:
    @given(random_topic_graphs())
    @settings(max_examples=40, deadline=None)
    def test_arc_list_round_trip(self, graph):
        rebuilt = TopicGraph.from_arcs(
            graph.num_nodes, graph.arcs(), graph.probabilities
        )
        assert np.array_equal(rebuilt.indptr, graph.indptr)
        assert np.array_equal(rebuilt.indices, graph.indices)
        assert np.allclose(rebuilt.probabilities, graph.probabilities)

    @given(random_topic_graphs())
    @settings(max_examples=40, deadline=None)
    def test_degree_sums_match(self, graph):
        assert graph.out_degree().sum() == graph.num_arcs
        assert graph.in_degree().sum() == graph.num_arcs

    @given(random_topic_graphs())
    @settings(max_examples=40, deadline=None)
    def test_item_probabilities_convexity(self, graph):
        z = graph.num_topics
        gamma = np.full(z, 1.0 / z)
        mixed = graph.item_probabilities(gamma)
        if graph.num_arcs:
            per_topic = graph.probabilities
            assert np.all(mixed <= per_topic.max(axis=1) + 1e-12)
            assert np.all(mixed >= per_topic.min(axis=1) - 1e-12)


class TestCascadeProperties:
    @given(random_topic_graphs(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_seeds_always_active_and_reachability_bound(self, graph, seed):
        rng = np.random.default_rng(seed)
        z = graph.num_topics
        gamma = np.full(z, 1.0 / z)
        probs = graph.item_probabilities(gamma)
        seeds = [0]
        active = simulate_cascade(
            graph.indptr, graph.indices, probs, seeds, rng
        )
        assert active[0]
        # Activated nodes must be graph-reachable from the seed set.
        reachable = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for nxt in graph.successors(node):
                if int(nxt) not in reachable:
                    reachable.add(int(nxt))
                    frontier.append(int(nxt))
        assert set(np.flatnonzero(active).tolist()) <= reachable

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_probability_coupling_monotonicity(self, seed):
        # With identical RNG streams, doubling all probabilities can
        # only grow the activation set (the simulation consumes the
        # same number of coins per frontier expansion, so the coupled
        # comparison holds wave by wave on a chain).
        arcs = [(i, i + 1) for i in range(6)]
        rng_low = np.random.default_rng(seed)
        rng_high = np.random.default_rng(seed)
        low = TopicGraph.from_arcs(
            7, np.asarray(arcs), np.full((6, 1), 0.3)
        )
        high = TopicGraph.from_arcs(
            7, np.asarray(arcs), np.full((6, 1), 0.6)
        )
        active_low = simulate_cascade(
            low.indptr, low.indices, low.item_probabilities([1.0]),
            [0], rng_low,
        )
        active_high = simulate_cascade(
            high.indptr, high.indices, high.item_probabilities([1.0]),
            [0], rng_high,
        )
        assert active_high.sum() >= active_low.sum()


class TestAggregationProperties:
    lists_strategy = st.lists(
        st.permutations([1, 2, 3, 4, 5]).map(lambda p: list(p)[:3]),
        min_size=2,
        max_size=5,
    )

    @given(lists_strategy)
    @settings(max_examples=40)
    def test_unanimity(self, lists):
        # If every list is identical, aggregation returns it.
        same = [lists[0]] * len(lists)
        for aggregate in (borda_aggregation, copeland_aggregation):
            assert aggregate(same, None)[: len(lists[0])] == lists[0]

    @given(lists_strategy)
    @settings(max_examples=40)
    def test_aggregate_distance_no_worse_than_worst_input(self, lists):
        seed_lists = [SeedList(tuple(ranking)) for ranking in lists]
        result = aggregate_seed_lists(seed_lists, 3)
        distances = [
            np.mean(
                [kendall_tau_top(other, candidate) for other in lists]
            )
            for candidate in lists
        ]
        result_distance = np.mean(
            [kendall_tau_top(other, list(result)) for other in lists]
        )
        assert result_distance <= max(distances) + 1e-9

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=40)
    def test_weight_pipeline_order_preserving(self, divergences):
        ordered = np.sort(np.asarray(divergences))
        weights = importance_weights(ordered, 6)
        # Larger divergence never gets a larger weight.
        assert np.all(np.diff(weights) <= 1e-12)

    @given(st.data())
    @settings(max_examples=30)
    def test_kendall_triangle_like_bound(self, data):
        # Not a metric, but the normalized top-list distance respects
        # d(a, c) <= d(a, b) + d(b, c) + 1 trivially and, empirically
        # for same-length lists over a small universe, the real
        # triangle inequality; validate the weaker containment bound
        # d(a, c) <= 1 always.
        perm = st.permutations([1, 2, 3, 4])
        a = list(data.draw(perm))[:3]
        c = list(data.draw(perm))[:3]
        assert kendall_tau_top(a, c) <= 1.0


class TestSimplexProperties:
    @given(st.integers(0, 5000))
    @settings(max_examples=40)
    def test_kl_positivity_unless_equal(self, seed):
        pts = sample_uniform_simplex(2, 4, seed=seed)
        d = kl_divergence(pts[0], pts[1])
        if np.allclose(pts[0], pts[1]):
            assert d == pytest.approx(0.0, abs=1e-9)
        else:
            assert d > 0
