"""Tests for the request-scoped telemetry layer.

Covers the tentpole end to end: context propagation (tasks, executor
threads, worker processes), the flight recorder and slow-query
capture, the SLO monitor's burn-rate math under a fake clock, the
structured JSON event log, the debug HTTP surfaces, and the ``top``
view's Prometheus parsing — plus the acceptance criteria: one stitched
cross-process trace, a ``/debug/slow`` entry with a full span tree,
and ``repro_slo_*`` burn rates flipping the ``/healthz`` detail.
"""

from __future__ import annotations

import asyncio
import io
import json
import logging
import math
import threading

import numpy as np
import pytest

from repro import obs
from repro.core import ServingConfig
from repro.obs import context as _ctx
from repro.obs.flightrec import (
    FlightRecord,
    FlightRecorder,
    gamma_fingerprint,
)
from repro.obs.logs import (
    RateLimitFilter,
    configure_json_logging,
    get_logger,
    reset_logging,
)
from repro.obs.slo import SLOConfig, SLOMonitor
from repro.obs.tracing import span_payload
from repro.serving import QueryServer
from repro.serving.protocol import (
    encode_request,
    json_body,
    read_response,
)
from repro.serving.topview import (
    MetricsSample,
    parse_prometheus,
    quantile_from_buckets,
    render_top,
)


# ----------------------------------------------------------------------
# Request context propagation
# ----------------------------------------------------------------------
class TestRequestContext:
    def test_mint_generates_distinct_ids(self):
        a = _ctx.new_request_context()
        b = _ctx.new_request_context()
        assert a.trace_id != b.trace_id
        assert a.request_id != b.request_id
        assert len(a.trace_id) == 16 and len(a.request_id) == 12

    def test_mint_honors_supplied_ids(self):
        context = _ctx.new_request_context(
            trace_id="cafe", request_id="beef"
        )
        assert context.trace_id == "cafe"
        assert context.request_id == "beef"

    def test_bind_scopes_the_context(self):
        assert _ctx.current_context() is None
        context = _ctx.new_request_context()
        with _ctx.bind(context):
            assert _ctx.current_context() is context
        assert _ctx.current_context() is None

    def test_bind_none_is_a_noop_block(self):
        with _ctx.bind(None):
            assert _ctx.current_context() is None

    def test_wire_round_trip(self):
        context = _ctx.new_request_context(parent_span_id=7)
        assert _ctx.RequestContext.from_wire(context.to_wire()) == context

    def test_wrap_carries_context_into_a_thread(self):
        # run_in_executor does not propagate contextvars; wrap() must.
        context = _ctx.new_request_context()
        seen = []

        def probe():
            seen.append(_ctx.current_context())

        with _ctx.bind(context):
            bound = _ctx.wrap(probe)
        thread = threading.Thread(target=bound)
        thread.start()
        thread.join()
        assert seen == [context]

    def test_asyncio_tasks_inherit_the_context(self):
        context = _ctx.new_request_context()

        async def child():
            return _ctx.current_context()

        async def main():
            with _ctx.bind(context):
                return await asyncio.create_task(child())

        assert asyncio.run(main()) is context


class TestTracerContextIntegration:
    def test_root_span_adopts_bound_context(self):
        obs.enable()
        tracer = obs.get_tracer()
        context = _ctx.new_request_context(parent_span_id=41)
        with _ctx.bind(context):
            with tracer.span("work"):
                pass
        (record,) = [r for r in tracer.spans() if r.name == "work"]
        assert record.trace_id == context.trace_id
        assert record.parent_id == 41

    def test_nested_spans_inherit_trace_id(self):
        obs.enable()
        tracer = obs.get_tracer()
        context = _ctx.new_request_context()
        with _ctx.bind(context):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        records = {r.name: r for r in tracer.spans()}
        assert records["inner"].trace_id == context.trace_id
        assert records["inner"].parent_id == records["outer"].span_id

    def test_open_close_span_does_not_touch_the_stack(self):
        # Manual spans serve event-loop regions that cross awaits: a
        # thread-local stack would mis-parent spans of interleaved
        # tasks, so open_span must not push.
        obs.enable()
        tracer = obs.get_tracer()
        manual = tracer.open_span("manual", trace_id="feed")
        with tracer.span("independent"):
            pass
        tracer.close_span(manual)
        records = {r.name: r for r in tracer.spans()}
        assert records["independent"].parent_id is None
        assert records["manual"].trace_id == "feed"
        assert records["manual"].duration > 0

    def test_adopt_stitches_remote_payloads(self):
        obs.enable()
        tracer = obs.get_tracer()
        with tracer.span("dispatch") as dispatch:
            pass
        payloads = [
            span_payload(
                "remote.chunk", 1000.0, 0.25, trace_id="abcd", lo=0, hi=8
            )
        ]
        adopted = tracer.adopt(
            payloads, trace_id="abcd", parent_id=dispatch.span_id
        )
        assert adopted == 1
        (chunk,) = [r for r in tracer.spans() if r.name == "remote.chunk"]
        assert chunk.trace_id == "abcd"
        assert chunk.parent_id == dispatch.span_id
        assert chunk.duration == pytest.approx(0.25)

    def test_disabled_mode_records_nothing(self):
        tracer = obs.get_tracer()
        span = tracer.open_span("ghost")
        tracer.close_span(span)
        assert tracer.adopt([{"name": "x"}]) == 0
        assert not [r for r in tracer.spans() if r.name == "ghost"]


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
def _record(request_id="r1", duration_s=0.01, **kwargs) -> FlightRecord:
    return FlightRecord(
        request_id=request_id, trace_id="t-" + request_id,
        duration_s=duration_s, **kwargs,
    )


class TestFlightRecorder:
    def test_disabled_mode_keeps_no_state(self):
        recorder = FlightRecorder(capacity=4)
        assert recorder.record(_record()) is False
        assert len(recorder) == 0 and recorder.total == 0

    def test_ring_is_bounded_but_total_counts_all(self):
        obs.enable()
        recorder = FlightRecorder(capacity=3, slow_threshold_s=10.0)
        for i in range(7):
            recorder.record(_record(f"r{i}"))
        assert len(recorder) == 3
        assert recorder.total == 7
        assert [r.request_id for r in recorder.recent()] == [
            "r6", "r5", "r4",
        ]

    def test_slow_requests_capture_their_span_tree(self):
        obs.enable()
        tracer = obs.get_tracer()
        context = _ctx.new_request_context()
        with _ctx.bind(context):
            with tracer.span("query"):
                with tracer.span("query.search"):
                    pass
        recorder = FlightRecorder(capacity=8, slow_threshold_s=0.05)
        record = FlightRecord(
            request_id="slow1",
            trace_id=context.trace_id,
            duration_s=0.2,
        )
        assert recorder.record(record, tracer) is True
        (entry,) = recorder.slow()
        names = {span["name"] for span in entry.spans}
        assert {"query", "query.search"} <= names
        parent = next(
            s for s in entry.spans if s["name"] == "query.search"
        )["parent_id"]
        root_id = next(
            s for s in entry.spans if s["name"] == "query"
        )["span_id"]
        assert parent == root_id

    def test_fast_requests_skip_the_slow_ring(self):
        obs.enable()
        recorder = FlightRecorder(capacity=8, slow_threshold_s=0.05)
        assert recorder.record(_record(duration_s=0.001)) is False
        assert recorder.slow() == [] and recorder.slow_total == 0

    def test_find_by_request_id(self):
        obs.enable()
        recorder = FlightRecorder(capacity=8, slow_threshold_s=10.0)
        recorder.record(_record("aa"))
        recorder.record(_record("bb"))
        assert recorder.find("aa").request_id == "aa"
        assert recorder.find("zz") is None

    def test_approx_memory_is_positive_and_bounded(self):
        obs.enable()
        recorder = FlightRecorder(capacity=16, slow_threshold_s=10.0)
        for i in range(64):
            recorder.record(_record(f"r{i}"))
        assert 0 < recorder.approx_memory_bytes() < 1_000_000

    def test_to_dict_converts_to_milliseconds(self):
        record = _record(duration_s=0.25)
        record.timings = {"search": 0.1}
        payload = record.to_dict()
        assert payload["duration_ms"] == pytest.approx(250.0)
        assert payload["timings_ms"]["search"] == pytest.approx(100.0)


class TestGammaFingerprint:
    def test_stable_and_jitter_tolerant(self):
        gamma = [0.5, 0.3, 0.2]
        assert gamma_fingerprint(gamma) == gamma_fingerprint(
            np.array(gamma) + 1e-9
        )
        assert len(gamma_fingerprint(gamma)) == 8

    def test_distinct_gammas_differ(self):
        assert gamma_fingerprint([0.5, 0.3, 0.2]) != gamma_fingerprint(
            [0.2, 0.3, 0.5]
        )


# ----------------------------------------------------------------------
# SLO monitor
# ----------------------------------------------------------------------
class FakeClock:
    """A steerable monotonic clock for SLO tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSLOMonitor:
    def test_all_good_requests_burn_nothing(self):
        clock = FakeClock()
        monitor = SLOMonitor(clock=clock)
        for _ in range(50):
            monitor.observe(0.001)
            clock.advance(0.5)
        status = monitor.status()
        assert status["healthy"]
        for objective in status["objectives"].values():
            assert objective["fast"]["burn_rate"] == 0.0
            assert not objective["breached"]

    def test_burn_rate_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        config = SLOConfig(latency_threshold_s=0.1, latency_target=0.9)
        monitor = SLOMonitor(config, clock=clock)
        # 2 slow of 10 -> bad fraction 0.2, budget 0.1 -> burn 2.0.
        for i in range(10):
            monitor.observe(0.5 if i < 2 else 0.001)
            clock.advance(1.0)
        latency = monitor.status()["objectives"]["latency"]
        assert latency["fast"]["burn_rate"] == pytest.approx(2.0)
        assert latency["breached"]

    def test_breach_requires_both_windows(self):
        clock = FakeClock()
        config = SLOConfig(
            latency_threshold_s=0.1,
            latency_target=0.9,
            fast_window_s=10.0,
            slow_window_s=100.0,
        )
        monitor = SLOMonitor(config, clock=clock)
        # A long good history fills the slow window...
        for _ in range(90):
            monitor.observe(0.001)
            clock.advance(1.0)
        # ...then a short burst of slow requests: the fast window burns
        # but the slow window still holds budget -> not breached.
        for _ in range(3):
            monitor.observe(0.5)
            clock.advance(0.1)
        latency = monitor.status()["objectives"]["latency"]
        assert latency["fast"]["burn_rate"] > 1.0
        assert latency["slow"]["burn_rate"] <= 1.0
        assert not latency["breached"]
        assert monitor.healthy

    def test_recovery_after_the_window_passes(self):
        clock = FakeClock()
        config = SLOConfig(
            latency_threshold_s=0.1,
            latency_target=0.9,
            fast_window_s=5.0,
            slow_window_s=10.0,
        )
        monitor = SLOMonitor(config, clock=clock)
        for _ in range(5):
            monitor.observe(0.5)
            clock.advance(0.2)
        assert not monitor.healthy
        clock.advance(30.0)
        # Evicted windows are empty -> burn 0 -> healthy again.
        assert monitor.healthy

    def test_error_and_degraded_objectives_track_flags(self):
        clock = FakeClock()
        monitor = SLOMonitor(clock=clock)
        verdicts = monitor.observe(0.001, error=True, degraded=True)
        assert verdicts == {
            "latency": False, "error": True, "degraded": True,
        }

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(latency_threshold_s=0.0)
        with pytest.raises(ValueError):
            SLOConfig(latency_target=1.0)
        with pytest.raises(ValueError):
            SLOConfig(fast_window_s=600.0, slow_window_s=300.0)


# ----------------------------------------------------------------------
# Structured JSON event log
# ----------------------------------------------------------------------
class TestJsonEventLog:
    def _capture(self, **kwargs):
        stream = io.StringIO()
        configure_json_logging(stream=stream, **kwargs)
        return stream

    def test_event_renders_one_json_line_with_fields(self):
        stream = self._capture()
        get_logger("serving").event("request.shed", route="/query", n=3)
        line = stream.getvalue().strip()
        payload = json.loads(line)
        assert payload["event"] == "request.shed"
        assert payload["logger"] == "repro.serving"
        assert payload["route"] == "/query"
        assert payload["n"] == 3

    def test_bound_context_stamps_trace_and_request_ids(self):
        stream = self._capture()
        context = _ctx.new_request_context()
        with _ctx.bind(context):
            get_logger("serving").event("request.slow")
        payload = json.loads(stream.getvalue().strip())
        assert payload["trace_id"] == context.trace_id
        assert payload["request_id"] == context.request_id

    def test_rate_limiter_suppresses_storms_and_reports(self):
        clock = FakeClock()
        limiter = RateLimitFilter(10.0, 5.0, clock=clock)
        passed = 0
        for _ in range(50):
            record = logging.LogRecord(
                "repro.t", logging.INFO, __file__, 1, "boom", (), None
            )
            if limiter.filter(record):
                passed = record
        assert limiter.suppressed_total > 0
        # Let the bucket refill: the next record reports what was lost.
        clock.advance(10.0)
        record = logging.LogRecord(
            "repro.t", logging.INFO, __file__, 1, "after", (), None
        )
        assert limiter.filter(record)
        assert record.event_fields["suppressed"] == (
            limiter.suppressed_total
        )

    def test_configure_is_idempotent(self):
        root = logging.getLogger("repro")
        configure_json_logging(stream=io.StringIO())
        configure_json_logging(stream=io.StringIO())
        named = [
            h for h in root.handlers if h.get_name() == "repro-json"
        ]
        assert len(named) == 1
        reset_logging()
        assert not [
            h for h in root.handlers if h.get_name() == "repro-json"
        ]


# ----------------------------------------------------------------------
# top view: Prometheus parsing and quantiles
# ----------------------------------------------------------------------
EXPOSITION = """\
# HELP repro_serving_requests_total Requests
# TYPE repro_serving_requests_total counter
repro_serving_requests_total{route="/query",status="200"} 90
repro_serving_requests_total{route="/query",status="429"} 10
repro_serving_request_seconds_bucket{route="/query",le="0.01"} 50
repro_serving_request_seconds_bucket{route="/query",le="0.1"} 90
repro_serving_request_seconds_bucket{route="/query",le="+Inf"} 100
repro_serving_request_seconds_sum{route="/query"} 2.5
repro_serving_request_seconds_count{route="/query"} 100
repro_slo_healthy 1
"""


class TestTopView:
    def test_parse_prometheus_series(self):
        series = parse_prometheus(EXPOSITION)
        sample = MetricsSample(series)
        assert sample.value("repro_slo_healthy") == 1.0
        assert sample.total("repro_serving_requests_total") == 100.0
        assert sample.total(
            "repro_serving_requests_total", status="429"
        ) == 10.0

    def test_buckets_are_cumulative_with_inf_last(self):
        sample = MetricsSample(parse_prometheus(EXPOSITION))
        pairs = sample.buckets("repro_serving_request_seconds")
        assert pairs[-1] == (math.inf, 100.0)
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)

    def test_quantiles_interpolate_within_buckets(self):
        pairs = [(0.01, 50.0), (0.1, 90.0), (math.inf, 100.0)]
        assert quantile_from_buckets(pairs, 0.5) == pytest.approx(0.01)
        p90 = quantile_from_buckets(pairs, 0.9)
        assert 0.01 < p90 <= 0.1
        # Ranks landing in +Inf report the largest finite bound.
        assert quantile_from_buckets(pairs, 0.99) == pytest.approx(0.1)
        assert quantile_from_buckets([], 0.5) == 0.0

    def test_render_top_shows_rates_and_slo(self):
        prev = MetricsSample(parse_prometheus(EXPOSITION), at=0.0)
        bumped = EXPOSITION.replace(
            'repro_serving_requests_total{route="/query",status="200"} 90',
            'repro_serving_requests_total{route="/query",status="200"} 190',
        )
        curr = MetricsSample(parse_prometheus(bumped), at=10.0)
        text = render_top(curr, prev, title="test")
        assert "requests" in text and "10.0/s" in text
        assert "healthy: yes" in text
        assert "/query" in text


# ----------------------------------------------------------------------
# Serving integration: debug surfaces, SLO flip, trace stitching
# ----------------------------------------------------------------------
async def _request(
    port, method, target, body=b"", headers=()
):
    """One raw request -> (status, headers, parsed json body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        raw = encode_request(method, target, body)
        if headers:
            head, _, rest = raw.partition(b"\r\n")
            extra = "".join(
                f"{name}: {value}\r\n" for name, value in headers
            ).encode("latin-1")
            raw = head + b"\r\n" + extra + rest
        writer.write(raw)
        await writer.drain()
        status, response_headers, payload = await read_response(reader)
        return (
            status,
            response_headers,
            json.loads(payload) if payload else {},
        )
    finally:
        writer.close()


def _run_with_server(index, config, scenario):
    async def main():
        server = QueryServer(index, config)
        await server.start()
        try:
            return await scenario(server)
        finally:
            if not server.draining:
                await server.aclose()

    return asyncio.run(main())


def _query_body(gamma, k=5):
    return json_body({"gamma": [float(v) for v in gamma], "k": k})


class TestServingTelemetry:
    def test_trace_headers_minted_and_echoed(self, small_index):
        obs.enable()
        config = ServingConfig(port=0)

        async def scenario(server):
            return await _request(
                server.port, "POST", "/query",
                _query_body([0.4, 0.3, 0.2, 0.1]),
            )

        status, headers, _ = _run_with_server(
            small_index, config, scenario
        )
        assert status == 200
        assert len(headers["x-trace-id"]) == 16
        assert len(headers["x-request-id"]) == 12

    def test_incoming_trace_id_is_honored(self, small_index):
        obs.enable()
        config = ServingConfig(port=0)

        async def scenario(server):
            return await _request(
                server.port, "POST", "/query",
                _query_body([0.4, 0.3, 0.2, 0.1]),
                headers=(
                    ("x-trace-id", "feedfacecafebeef"),
                    ("x-request-id", "aabbccddeeff"),
                ),
            )

        status, headers, _ = _run_with_server(
            small_index, config, scenario
        )
        assert status == 200
        assert headers["x-trace-id"] == "feedfacecafebeef"
        assert headers["x-request-id"] == "aabbccddeeff"
        spans = obs.get_tracer().find_trace("feedfacecafebeef")
        assert any(s.name == "serving.request" for s in spans)

    def test_flight_recorder_populates_debug_requests(self, small_index):
        obs.enable()
        config = ServingConfig(port=0)

        async def scenario(server):
            gamma = [0.4, 0.3, 0.2, 0.1]
            await _request(
                server.port, "POST", "/query", _query_body(gamma)
            )
            await _request(
                server.port, "POST", "/query", _query_body(gamma)
            )
            return await _request(server.port, "GET", "/debug/requests")

        status, _, payload = _run_with_server(
            small_index, config, scenario
        )
        assert status == 200
        records = payload["requests"]
        assert len(records) == 2
        newest, oldest = records
        assert newest["cache_hit"] and not oldest["cache_hit"]
        assert newest["fingerprint"] == oldest["fingerprint"]
        assert oldest["k"] == 5 and oldest["strategy"] == "inflex"
        assert oldest["batch_id"] is not None
        assert set(oldest["timings_ms"]) >= {
            "search", "selection", "aggregation", "total",
        }
        # Debug traffic itself must not pollute the recorder.
        assert payload["total"] == 2

    def test_slow_query_captures_full_span_tree(self, small_index):
        obs.enable()
        # An absurdly low threshold makes every request "slow".
        config = ServingConfig(port=0, slow_ms=0.0001)

        async def scenario(server):
            await _request(
                server.port, "POST", "/query",
                _query_body([0.4, 0.3, 0.2, 0.1]),
            )
            return await _request(server.port, "GET", "/debug/slow")

        status, _, payload = _run_with_server(
            small_index, config, scenario
        )
        assert status == 200
        (entry,) = payload["requests"]
        assert entry["slow"]
        names = [span["name"] for span in entry["spans"]]
        assert "serving.request" in names
        assert "serving.batch" in names
        assert any(name.startswith("query") for name in names)

    def test_slo_burn_flips_healthz(self, small_index):
        obs.enable()
        # Sub-microsecond latency SLO: every request violates it.
        config = ServingConfig(port=0, slo_latency_ms=0.00001)

        async def scenario(server):
            for _ in range(5):
                await _request(
                    server.port, "POST", "/query",
                    _query_body([0.4, 0.3, 0.2, 0.1]),
                )
            healthz = await _request(server.port, "GET", "/healthz")
            slo = await _request(server.port, "GET", "/debug/slo")
            metrics_status, _, _ = 0, 0, 0
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(encode_request("GET", "/metrics"))
                await writer.drain()
                metrics_status, _, metrics = await read_response(reader)
            finally:
                writer.close()
            return healthz, slo, metrics_status, metrics.decode()

        healthz, slo, metrics_status, metrics = _run_with_server(
            small_index, config, scenario
        )
        status, _, health = healthz
        assert status == 200 and metrics_status == 200
        assert health["status"] == "degraded"
        assert not health["slo"]["healthy"]
        assert "latency" in health["slo"]["breached"]
        _, _, slo_payload = slo
        latency = slo_payload["objectives"]["latency"]
        assert latency["fast"]["burn_rate"] > 1.0
        assert latency["breached"]
        assert 'repro_slo_burn_rate{objective="latency"' in metrics
        assert "repro_slo_healthy 0" in metrics

    def test_healthy_service_reports_ok(self, small_index):
        obs.enable()
        config = ServingConfig(port=0)

        async def scenario(server):
            await _request(
                server.port, "POST", "/query",
                _query_body([0.4, 0.3, 0.2, 0.1]),
            )
            return await _request(server.port, "GET", "/healthz")

        status, _, health = _run_with_server(
            small_index, config, scenario
        )
        assert status == 200
        assert health["status"] == "ok"
        assert health["slo"]["healthy"]
        assert health["slo"]["breached"] == []

    def test_request_spans_stitch_into_one_trace(self, small_index):
        obs.enable()
        config = ServingConfig(port=0)

        async def scenario(server):
            _, headers, _ = await _request(
                server.port, "POST", "/query",
                _query_body([0.37, 0.31, 0.21, 0.11]),
            )
            return headers["x-trace-id"]

        trace_id = _run_with_server(small_index, config, scenario)
        spans = obs.get_tracer().find_trace(trace_id)
        by_id = {span.span_id: span for span in spans}
        names = {span.name for span in spans}
        assert {"serving.request", "serving.batch", "query"} <= names
        # The query span (executor thread) must chain up to the
        # serving.request span (event loop) through parent links.
        query = next(s for s in spans if s.name == "query")
        ancestry = set()
        cursor = query
        while cursor.parent_id is not None:
            cursor = by_id[cursor.parent_id]
            ancestry.add(cursor.name)
        assert "serving.request" in ancestry
        assert "serving.batch" in ancestry

    def test_stats_expose_flight_and_slo(self, small_index):
        obs.enable()
        config = ServingConfig(port=0)

        async def scenario(server):
            await _request(
                server.port, "POST", "/query",
                _query_body([0.4, 0.3, 0.2, 0.1]),
            )
            return await _request(server.port, "GET", "/stats")

        status, _, stats = _run_with_server(
            small_index, config, scenario
        )
        assert status == 200
        assert stats["flight"]["total"] == 1
        assert "latency" in stats["slo"]["objectives"]


# ----------------------------------------------------------------------
# Cross-process trace stitching (acceptance criterion)
# ----------------------------------------------------------------------
class TestCrossProcessTrace:
    def test_worker_chunk_spans_join_the_parent_trace(self, small_graph):
        from repro.propagation.parallel import (
            ParallelMonteCarloSpread,
            shutdown_pools,
        )

        obs.enable()
        context = _ctx.new_request_context()
        gamma = np.full(4, 0.25)
        try:
            with ParallelMonteCarloSpread(
                small_graph, gamma,
                num_simulations=32, seed=3, workers=2,
            ) as estimator:
                with _ctx.bind(context):
                    estimator.estimate([0, 1, 2])
        finally:
            shutdown_pools()
        spans = obs.get_tracer().find_trace(context.trace_id)
        dispatch = [s for s in spans if s.name == "spread.dispatch"]
        chunks = [s for s in spans if s.name == "spread.chunk"]
        assert len(dispatch) == 1
        assert chunks, "worker chunk spans were not adopted"
        assert all(
            chunk.parent_id == dispatch[0].span_id for chunk in chunks
        )
        assert all(
            chunk.trace_id == context.trace_id for chunk in chunks
        )
        # Worker-side spans carry the worker pid as thread id — a
        # different process than the dispatcher.
        assert any(
            chunk.thread_id != dispatch[0].thread_id for chunk in chunks
        )
