"""Tests for the keyword-to-topic front-end."""

import numpy as np
import pytest

from repro.core import KeywordTopicMapper
from repro.errors import QueryError
from repro.simplex import is_distribution


@pytest.fixture
def mapper():
    return KeywordTopicMapper.from_topic_labels(
        {"action": 0, "romance": 1, "comedy": 2, "thriller": 0},
        num_topics=4,
        focus=0.85,
    )


class TestConstruction:
    def test_from_labels(self, mapper):
        assert mapper.num_topics == 4
        assert "action" in mapper
        assert "ACTION" in mapper  # case-insensitive
        assert mapper.vocabulary == (
            "action",
            "comedy",
            "romance",
            "thriller",
        )

    def test_explicit_lexicon(self):
        mapper = KeywordTopicMapper(
            {"a": [0.7, 0.3], "b": [0.2, 0.8]}, background_weight=0.0
        )
        gamma = mapper.gamma_for(["a"])
        assert np.allclose(gamma, [0.7, 0.3])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            KeywordTopicMapper({"a": [0.5, 0.5], "b": [1.0, 0.0, 0.0]})

    def test_empty_lexicon_rejected(self):
        with pytest.raises(ValueError):
            KeywordTopicMapper({})

    def test_bad_background_rejected(self):
        with pytest.raises(ValueError):
            KeywordTopicMapper({"a": [1.0, 0.0]}, background_weight=1.0)

    def test_label_bounds(self):
        with pytest.raises(ValueError):
            KeywordTopicMapper.from_topic_labels({"x": 9}, num_topics=3)
        with pytest.raises(ValueError):
            KeywordTopicMapper.from_topic_labels(
                {"x": 0}, num_topics=3, focus=0.0
            )


class TestGammaFor:
    def test_output_is_distribution(self, mapper):
        gamma = mapper.gamma_for(["action", "romance"])
        assert is_distribution(gamma)
        assert np.all(gamma > 0)  # full support via background

    def test_dominant_topic(self, mapper):
        gamma = mapper.gamma_for(["action"])
        assert gamma.argmax() == 0
        gamma = mapper.gamma_for(["romance"])
        assert gamma.argmax() == 1

    def test_weights_shift_mixture(self, mapper):
        toward_action = mapper.gamma_for(
            ["action", "romance"], weights=[5.0, 1.0]
        )
        toward_romance = mapper.gamma_for(
            ["action", "romance"], weights=[1.0, 5.0]
        )
        assert toward_action[0] > toward_romance[0]
        assert toward_romance[1] > toward_action[1]

    def test_synonym_topics_accumulate(self, mapper):
        # "action" and "thriller" share topic 0.
        gamma = mapper.gamma_for(["action", "thriller"])
        assert gamma[0] > 0.7

    def test_unknown_keyword_rejected(self, mapper):
        with pytest.raises(QueryError) as info:
            mapper.gamma_for(["action", "western"])
        assert "western" in str(info.value)

    def test_empty_keywords_rejected(self, mapper):
        with pytest.raises(QueryError):
            mapper.gamma_for([])

    def test_weight_validation(self, mapper):
        with pytest.raises(QueryError):
            mapper.gamma_for(["action"], weights=[1.0, 2.0])
        with pytest.raises(QueryError):
            mapper.gamma_for(["action"], weights=[-1.0])


class TestEndToEnd:
    def test_keyword_query_against_index(self, small_index, small_dataset):
        mapper = KeywordTopicMapper.from_topic_labels(
            {f"genre-{z}": z for z in range(small_dataset.num_topics)},
            num_topics=small_dataset.num_topics,
        )
        gamma = mapper.gamma_for(["genre-0", "genre-1"], weights=[3.0, 1.0])
        answer = small_index.query(gamma, 5)
        assert len(answer.seeds) == 5
