"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.core import (
    InflexConfig,
    InflexIndex,
    load_index,
    offline_tic_seed_list,
    save_index,
)
from repro.datasets import generate_flixster_like, generate_query_workload
from repro.learning import TICLearner
from repro.propagation import estimate_spread
from repro.ranking import kendall_tau_top


class TestFigureOnePipeline:
    """The paper's Figure 1: log -> learning -> index -> query."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        data = generate_flixster_like(
            num_nodes=200,
            num_topics=3,
            num_items=150,
            topics_per_node=1,
            base_strength=0.2,
            with_log=True,
            seeds_per_item=6,
            seed=71,
        )
        learner = TICLearner(data.graph, 3, max_iter=20, seed=72)
        learned = learner.fit(
            data.log, init_item_topics="trace-clustering"
        )
        learned_graph = learned.to_graph(data.graph)
        index = InflexIndex.build(
            learned_graph,
            learned.item_topics,
            InflexConfig(
                num_index_points=12,
                num_dirichlet_samples=600,
                seed_list_length=8,
                ris_num_sets=800,
                knn=4,
                seed=73,
            ),
        )
        return data, learned, index

    def test_index_built_on_learned_parameters(self, pipeline):
        data, learned, index = pipeline
        assert index.num_index_points == 12
        assert index.graph.num_topics == 3

    def test_query_beats_random_under_true_process(self, pipeline):
        data, learned, index = pipeline
        gamma = data.item_topics[0]
        answer = index.query(gamma, 6)
        targeted = estimate_spread(
            data.graph, gamma, list(answer.seeds),
            num_simulations=200, seed=74,
        ).mean
        rng = np.random.default_rng(75)
        random_spreads = [
            estimate_spread(
                data.graph,
                gamma,
                rng.choice(data.graph.num_nodes, 6, replace=False),
                num_simulations=200,
                seed=74,
            ).mean
            for _ in range(5)
        ]
        assert targeted > np.mean(random_spreads)


class TestIndexVsOfflineAgreement:
    def test_answers_close_to_offline(self, small_index, small_dataset):
        workload = generate_query_workload(
            small_dataset.item_topics, 6, data_driven_fraction=1.0, seed=76
        )
        distances = []
        for gamma in workload.items:
            answer = small_index.query(gamma, 8)
            offline = offline_tic_seed_list(
                small_dataset.graph, gamma, 8, ris_num_sets=4000, seed=77
            )
            distances.append(kendall_tau_top(answer.seeds, offline))
        # Mean distance comfortably below the disjoint-lists worst case;
        # on data-driven queries the index should be informative.
        assert np.mean(distances) < 0.55

    def test_answer_spread_close_to_offline(self, small_index, small_dataset):
        gamma = small_dataset.item_topics[3]
        answer = small_index.query(gamma, 8)
        offline = offline_tic_seed_list(
            small_dataset.graph, gamma, 8, ris_num_sets=4000, seed=78
        )
        s_index = estimate_spread(
            small_dataset.graph, gamma, list(answer.seeds),
            num_simulations=300, seed=79,
        ).mean
        s_offline = estimate_spread(
            small_dataset.graph, gamma, list(offline),
            num_simulations=300, seed=79,
        ).mean
        assert s_index >= 0.7 * s_offline


class TestPersistenceAcrossPipeline:
    def test_save_query_load_query(self, small_index, small_dataset, tmp_path):
        gamma = small_dataset.item_topics[5]
        before = small_index.query(gamma, 5).seeds.nodes
        path = tmp_path / "idx.npz"
        save_index(small_index, path)
        reloaded = load_index(path, small_dataset.graph)
        after = reloaded.query(gamma, 5).seeds.nodes
        assert before == after
