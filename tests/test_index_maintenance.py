"""Tests for index maintenance, adaptive RIS, and range search."""

import numpy as np
import pytest

from repro.bbtree import range_search
from repro.errors import EmptyIndexError
from repro.im import (
    SeedList,
    adaptive_ris_influence_maximization,
    ris_influence_maximization,
)
from repro.ranking import kendall_tau_top
from repro.simplex import kl_divergence_matrix, sample_uniform_simplex


class TestIndexMaintenance:
    def test_add_point_with_explicit_list(self, small_index):
        gamma = sample_uniform_simplex(
            1, small_index.graph.num_topics, seed=1
        )[0]
        seeds = SeedList(tuple(range(12)))
        grown = small_index.with_added_point(gamma, seeds)
        assert grown.num_index_points == small_index.num_index_points + 1
        assert grown.seed_lists[-1].nodes == seeds.nodes
        # Original is untouched (immutable style).
        assert small_index.num_index_points == 20

    def test_add_point_precomputes_when_needed(self, small_index):
        gamma = sample_uniform_simplex(
            1, small_index.graph.num_topics, seed=2
        )[0]
        grown = small_index.with_added_point(gamma)
        new_list = grown.seed_lists[-1]
        assert len(new_list) == small_index.config.seed_list_length

    def test_added_point_improves_coverage(self, small_index):
        gamma = sample_uniform_simplex(
            1, small_index.graph.num_topics, seed=3
        )[0]
        before = small_index.coverage_of(gamma)
        grown = small_index.with_added_point(gamma, SeedList((0, 1, 2)))
        after = grown.coverage_of(gamma)
        assert after <= before
        assert after == pytest.approx(0.0, abs=1e-6)

    def test_added_point_answers_epsilon_exact(self, small_index):
        gamma = sample_uniform_simplex(
            1, small_index.graph.num_topics, seed=4
        )[0]
        seeds = SeedList(tuple(range(5)))
        grown = small_index.with_added_point(gamma, seeds)
        answer = grown.query(gamma, 5)
        assert answer.epsilon_match
        assert answer.seeds.nodes == seeds.nodes

    def test_remove_point(self, small_index):
        shrunk = small_index.without_point(0)
        assert shrunk.num_index_points == small_index.num_index_points - 1
        assert np.allclose(
            shrunk.index_points, small_index.index_points[1:]
        )

    def test_remove_bounds(self, small_index):
        with pytest.raises(ValueError):
            small_index.without_point(-1)
        with pytest.raises(ValueError):
            small_index.without_point(small_index.num_index_points)

    def test_cannot_empty_index(self, small_index):
        shrunk = small_index
        with pytest.raises(EmptyIndexError):
            for _ in range(small_index.num_index_points):
                shrunk = shrunk.without_point(0)


class TestAdaptiveRIS:
    def test_stable_result_close_to_big_budget(self, small_graph):
        gamma = np.zeros(small_graph.num_topics)
        gamma[0] = 1.0
        adaptive = adaptive_ris_influence_maximization(
            small_graph, gamma, 5, initial_sets=500, max_sets=16000, seed=5
        )
        reference = ris_influence_maximization(
            small_graph, gamma, 5, num_sets=16000, seed=6
        )
        assert kendall_tau_top(adaptive, reference) < 0.35

    def test_respects_max_sets(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        result = adaptive_ris_influence_maximization(
            small_graph,
            gamma,
            3,
            initial_sets=100,
            max_sets=200,
            stability_threshold=1e-9,  # never satisfied: hits the cap
            seed=7,
        )
        assert len(result) == 3
        assert result.algorithm == "ris-adaptive"

    def test_validation(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        with pytest.raises(ValueError):
            adaptive_ris_influence_maximization(
                small_graph, gamma, 2, initial_sets=1
            )
        with pytest.raises(ValueError):
            adaptive_ris_influence_maximization(
                small_graph, gamma, 2, initial_sets=100, max_sets=50
            )
        with pytest.raises(ValueError):
            adaptive_ris_influence_maximization(
                small_graph, gamma, 2, stability_threshold=0.0
            )


class TestRangeSearch:
    @pytest.fixture(scope="class")
    def tree_points(self):
        from repro.bbtree import BBTree

        points = sample_uniform_simplex(250, 5, seed=8)
        return BBTree(points, seed=9), points

    def test_matches_brute_force(self, tree_points):
        tree, points = tree_points
        rng = np.random.default_rng(10)
        for _ in range(8):
            query = rng.dirichlet(np.ones(5))
            radius = rng.uniform(0.05, 0.5)
            result = range_search(tree, query, radius)
            divs = kl_divergence_matrix(points, query)
            expected = set(np.flatnonzero(divs <= radius).tolist())
            assert set(result.indices.tolist()) == expected

    def test_zero_radius(self, tree_points):
        tree, points = tree_points
        result = range_search(tree, points[17], 1e-12)
        assert 17 in result.indices.tolist()

    def test_prunes_subtrees(self, tree_points):
        tree, _ = tree_points
        query = sample_uniform_simplex(1, 5, seed=11)[0]
        result = range_search(tree, query, 0.01)
        assert result.stats.nodes_pruned > 0

    def test_negative_radius_rejected(self, tree_points):
        tree, _ = tree_points
        with pytest.raises(ValueError):
            range_search(tree, np.full(5, 0.2), -0.1)
