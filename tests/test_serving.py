"""Tests for the concurrent query service (`repro.serving`).

Covers the serving components in isolation (protocol codec, admission
controller, micro-batcher, singleflight, cache canonicalization and
concurrency safety) and end-to-end: a real asyncio server on a built
index answering overlapping identical + distinct queries, shedding
under a tiny admission budget, and draining cleanly — plus a true
SIGTERM drain of the CLI ``serve`` subprocess.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import CachedIndex, ServingConfig
from repro.serving import (
    AdmissionController,
    BatchItem,
    MicroBatcher,
    QueryServer,
    QueueFullError,
    SingleFlight,
    build_query_mix,
    run_loadgen,
)
from repro.serving.protocol import (
    ProtocolError,
    encode_request,
    encode_response,
    json_body,
    parse_query_payload,
    read_request,
    read_response,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Cache: canonical keys, concurrency safety, TTL
# ----------------------------------------------------------------------
class TestCanonicalKey:
    def test_rounding_collapses_near_identical_queries(self, small_index):
        cached = CachedIndex(small_index, decimals=3)
        gamma = np.array([0.5, 0.3, 0.15, 0.05])
        jittered = gamma + np.array([1e-6, -1e-6, 1e-6, -1e-6])
        assert cached.canonical_key(gamma, 5, "inflex") == (
            cached.canonical_key(jittered, 5, "inflex")
        )

    def test_sum_drift_is_renormalized_away(self, small_index):
        # The satellite fix: a scaled (unnormalized) variant rounds to a
        # grid point with a different sum; renormalizing the rounded key
        # collapses both into one bucket.
        cached = CachedIndex(small_index, decimals=3)
        gamma = [0.3, 0.3, 0.2, 0.2]
        scaled = [0.6, 0.6, 0.4, 0.4]
        assert cached.canonical_key(gamma, 5, "inflex") == (
            cached.canonical_key(scaled, 5, "inflex")
        )

    def test_negative_rounding_residue_is_clipped(self, small_index):
        cached = CachedIndex(small_index, decimals=3)
        gamma = [0.0, 0.5, 0.3, 0.2]
        dirty = [-1e-9, 0.5, 0.3, 0.2]
        assert cached.canonical_key(gamma, 5, "inflex") == (
            cached.canonical_key(dirty, 5, "inflex")
        )

    def test_distinct_queries_stay_distinct(self, small_index):
        cached = CachedIndex(small_index, decimals=3)
        key_a = cached.canonical_key([0.4, 0.3, 0.2, 0.1], 5, "inflex")
        key_b = cached.canonical_key([0.1, 0.2, 0.3, 0.4], 5, "inflex")
        assert key_a != key_b

    def test_k_and_strategy_partition_the_space(self, small_index):
        cached = CachedIndex(small_index)
        gamma = [0.4, 0.3, 0.2, 0.1]
        keys = {
            cached.canonical_key(gamma, 5, "inflex"),
            cached.canonical_key(gamma, 6, "inflex"),
            cached.canonical_key(gamma, 5, "approx-knn"),
        }
        assert len(keys) == 3


class TestCachedIndexConcurrency:
    def test_hammered_from_threads_stays_consistent(
        self, small_index, small_workload
    ):
        cached = CachedIndex(small_index, max_entries=4)
        pool = list(small_workload.items[:8])
        per_thread = 40
        num_threads = 6
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            rng = np.random.default_rng(worker)
            try:
                for _ in range(per_thread):
                    gamma = pool[int(rng.integers(len(pool)))]
                    answer = cached.query(gamma, 4)
                    assert len(answer.seeds) > 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cached.stats()
        # The satellite fix: counters must not tear — every lookup is
        # exactly one hit or one miss, and occupancy respects capacity.
        assert stats["hits"] + stats["misses"] == per_thread * num_threads
        assert stats["entries"] <= 4
        assert len(cached) <= 4

    def test_stats_snapshot_is_consistent(self, small_index, small_workload):
        cached = CachedIndex(small_index)
        for gamma in small_workload.items[:5]:
            cached.query(gamma, 4)
            cached.query(gamma, 4)
        stats = cached.stats()
        assert stats["hits"] == 5
        assert stats["misses"] == 5
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_ttl_expires_entries(self, small_index, small_workload):
        now = [0.0]
        cached = CachedIndex(
            small_index, ttl_seconds=10.0, clock=lambda: now[0]
        )
        gamma = small_workload.items[0]
        cached.query(gamma, 4)
        now[0] = 5.0
        cached.query(gamma, 4)
        assert cached.hits == 1
        now[0] = 20.0
        cached.query(gamma, 4)
        assert cached.expirations == 1
        assert cached.misses == 2
        assert cached.stats()["expirations"] == 1


# ----------------------------------------------------------------------
# Protocol codec
# ----------------------------------------------------------------------
class TestProtocol:
    def _feed(self, payload: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        return reader

    def test_request_round_trip(self):
        async def scenario():
            body = json_body({"gamma": [0.5, 0.5], "k": 3})
            raw = encode_request("POST", "/query", body)
            request = await read_request(self._feed(raw))
            assert request.method == "POST"
            assert request.target == "/query"
            assert request.json() == {"gamma": [0.5, 0.5], "k": 3}
            assert request.keep_alive

        asyncio.run(scenario())

    def test_response_round_trip(self):
        async def scenario():
            raw = encode_response(
                429,
                json_body({"error": "shed"}),
                extra_headers={"Retry-After": "1"},
            )
            status, headers, body = await read_response(self._feed(raw))
            assert status == 429
            assert headers["retry-after"] == "1"
            assert json.loads(body) == {"error": "shed"}

        asyncio.run(scenario())

    def test_clean_eof_returns_none(self):
        async def scenario():
            return await read_request(self._feed(b""))

        assert asyncio.run(scenario()) is None

    def test_malformed_request_raises(self):
        async def scenario():
            await read_request(self._feed(b"NONSENSE\r\n\r\n"))

        with pytest.raises(ProtocolError):
            asyncio.run(scenario())

    def test_parse_query_payload_normalizes_gamma(self):
        gamma, k, strategy, deadline = parse_query_payload(
            {"gamma": [2.0, 1.0, 1.0], "k": 5}
        )
        assert gamma == pytest.approx([0.5, 0.25, 0.25])
        assert (k, strategy, deadline) == (5, "inflex", None)

    @pytest.mark.parametrize(
        "payload",
        [
            {"gamma": [], "k": 5},
            {"gamma": [0.5, "x"], "k": 5},
            {"gamma": [0.5, -0.5], "k": 5},
            {"gamma": [0.0, 0.0], "k": 5},
            {"gamma": [0.5, 0.5]},
            {"gamma": [0.5, 0.5], "k": 0},
            {"gamma": [0.5, 0.5], "k": True},
            {"gamma": [0.5, 0.5], "k": 5, "deadline_ms": -1},
            "not an object",
        ],
    )
    def test_parse_query_payload_rejects(self, payload):
        with pytest.raises(ProtocolError):
            parse_query_payload(payload)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_inflight_budget_sheds(self):
        controller = AdmissionController(2, 10)
        assert controller.try_admit() is None
        assert controller.try_admit() is None
        assert controller.try_admit() == "inflight"
        controller.release()
        assert controller.try_admit() is None

    def test_queue_depth_sheds(self):
        depth = [0]
        controller = AdmissionController(10, 3, queue_depth=lambda: depth[0])
        assert controller.try_admit() is None
        depth[0] = 3
        assert controller.try_admit() == "queue"

    def test_weighted_admission(self):
        controller = AdmissionController(4, 10)
        assert controller.try_admit(weight=3) is None
        assert controller.try_admit(weight=2) == "inflight"
        controller.release(weight=3)
        assert controller.idle

    def test_snapshot_counts(self):
        controller = AdmissionController(1, 10)
        controller.try_admit()
        controller.try_admit()
        controller.try_admit()
        snapshot = controller.snapshot()
        assert snapshot.inflight == 1
        assert snapshot.admitted_total == 1
        assert snapshot.shed_total == 2
        assert snapshot.shed_by_reason == {"inflight": 2}


# ----------------------------------------------------------------------
# Micro-batcher
# ----------------------------------------------------------------------
def _item(loop, k=5, strategy="inflex", gamma=None):
    return BatchItem(
        gamma=gamma,
        k=k,
        strategy=strategy,
        deadline=None,
        future=loop.create_future(),
    )


class TestMicroBatcher:
    def test_coalesces_queued_items(self):
        async def scenario():
            calls: list[int] = []

            async def execute(items):
                calls.append(len(items))
                return [item.k for item in items]

            batcher = MicroBatcher(
                execute, max_batch_size=4, max_wait_s=0.01, max_queue_depth=64
            )
            batcher.start()
            loop = asyncio.get_running_loop()
            items = [_item(loop) for _ in range(10)]
            for item in items:
                batcher.submit(item)
            results = await asyncio.gather(*(i.future for i in items))
            await batcher.drain()
            return calls, results

        calls, results = asyncio.run(scenario())
        assert sum(calls) == 10
        assert max(calls) <= 4
        assert len(calls) < 10  # coalescing actually happened
        assert results == [5] * 10

    def test_partitions_mixed_groups(self):
        async def scenario():
            seen: list[tuple] = []

            async def execute(items):
                keys = {item.group_key for item in items}
                seen.append((len(items), keys))
                return [item.k for item in items]

            batcher = MicroBatcher(
                execute, max_batch_size=8, max_wait_s=0.01, max_queue_depth=64
            )
            batcher.start()
            loop = asyncio.get_running_loop()
            items = [_item(loop, k=1 + (i % 2)) for i in range(8)]
            for item in items:
                batcher.submit(item)
            await asyncio.gather(*(i.future for i in items))
            await batcher.drain()
            return seen

        seen = asyncio.run(scenario())
        # Every dispatched group is homogeneous in (k, strategy).
        assert all(len(keys) == 1 for _, keys in seen)
        assert sum(size for size, _ in seen) == 8

    def test_queue_bound_raises(self):
        async def scenario():
            async def execute(items):  # pragma: no cover - never dispatched
                return [None for _ in items]

            batcher = MicroBatcher(
                execute, max_batch_size=4, max_wait_s=0.01, max_queue_depth=2
            )
            # Collector not started: the queue just fills.
            loop = asyncio.get_running_loop()
            batcher.submit(_item(loop))
            batcher.submit(_item(loop))
            with pytest.raises(QueueFullError):
                batcher.submit(_item(loop))

        asyncio.run(scenario())

    def test_executor_failure_propagates_to_futures(self):
        async def scenario():
            async def execute(items):
                raise RuntimeError("index exploded")

            batcher = MicroBatcher(
                execute, max_batch_size=4, max_wait_s=0.001, max_queue_depth=8
            )
            batcher.start()
            loop = asyncio.get_running_loop()
            item = _item(loop)
            batcher.submit(item)
            with pytest.raises(RuntimeError, match="index exploded"):
                await item.future
            await batcher.drain()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Singleflight
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_callers_share_one_computation(self):
        async def scenario():
            flight = SingleFlight()
            computations = 0

            async def supplier():
                nonlocal computations
                computations += 1
                await asyncio.sleep(0.01)
                return "answer"

            outcomes = await asyncio.gather(
                *(flight.run("key", supplier) for _ in range(6))
            )
            return computations, outcomes, flight.coalesced_total

        computations, outcomes, coalesced = asyncio.run(scenario())
        assert computations == 1
        assert all(result == "answer" for result, _ in outcomes)
        assert sum(leader for _, leader in outcomes) == 1
        assert coalesced == 5

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            flight = SingleFlight()
            computations = 0

            async def supplier():
                nonlocal computations
                computations += 1
                await asyncio.sleep(0.005)
                return computations

            await asyncio.gather(
                flight.run("a", supplier), flight.run("b", supplier)
            )
            return computations

        assert asyncio.run(scenario()) == 2

    def test_exception_reaches_every_waiter(self):
        async def scenario():
            flight = SingleFlight()

            async def supplier():
                await asyncio.sleep(0.005)
                raise ValueError("boom")

            results = await asyncio.gather(
                *(flight.run("key", supplier) for _ in range(3)),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(scenario())
        assert len(results) == 3
        assert all(isinstance(r, ValueError) for r in results)

    def test_new_flight_after_completion(self):
        async def scenario():
            flight = SingleFlight()
            computations = 0

            async def supplier():
                nonlocal computations
                computations += 1
                return computations

            first, _ = await flight.run("key", supplier)
            second, _ = await flight.run("key", supplier)
            return first, second

        assert asyncio.run(scenario()) == (1, 2)


# ----------------------------------------------------------------------
# End-to-end server
# ----------------------------------------------------------------------
async def _post_query(host, port, gamma, k=5, strategy="inflex", deadline_ms=None):
    """One request on its own connection -> (status, headers, payload)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = {"gamma": [float(v) for v in gamma], "k": k, "strategy": strategy}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        writer.write(encode_request("POST", "/query", json_body(body)))
        await writer.drain()
        status, headers, payload = await read_response(reader)
        return status, headers, json.loads(payload) if payload else {}
    finally:
        writer.close()


def _run_with_server(index, config, scenario):
    """Start a QueryServer, run ``await scenario(server)``, drain, return."""

    async def main():
        server = QueryServer(index, config)
        await server.start()
        try:
            return await scenario(server)
        finally:
            if not server.draining:
                await server.aclose()

    return asyncio.run(main())


class TestQueryServerEndToEnd:
    def test_overlapping_queries_coalesce_and_batch(self, small_index):
        config = ServingConfig(port=0, max_batch_wait_us=4000)

        async def scenario(server):
            rng = np.random.default_rng(7)
            distinct = rng.dirichlet(np.full(4, 0.8), size=16)
            hot = [0.4, 0.3, 0.2, 0.1]
            tasks = [
                _post_query("127.0.0.1", server.port, hot) for _ in range(16)
            ]
            tasks += [
                _post_query("127.0.0.1", server.port, row) for row in distinct
            ]
            responses = await asyncio.gather(*tasks)
            return responses, server.stats()

        responses, stats = _run_with_server(small_index, config, scenario)
        assert all(status == 200 for status, _, _ in responses)
        payloads = [payload for _, _, payload in responses]
        assert all(payload["seeds"] for payload in payloads)
        # Computation count < request count: the 16 identical queries
        # collapse via singleflight/cache, so the batcher saw fewer
        # items than the wire did, and dispatched them in fewer calls.
        assert stats["batcher"]["items_total"] < 32
        coalesced_or_cached = (
            stats["singleflight_coalesced"] + stats["cache"]["hits"]
        )
        assert coalesced_or_cached > 0
        assert stats["batcher"]["batches_total"] < (
            stats["batcher"]["items_total"]
        )

    def test_identical_answers_from_cache(self, small_index):
        config = ServingConfig(port=0)

        async def scenario(server):
            gamma = [0.4, 0.3, 0.2, 0.1]
            first = await _post_query("127.0.0.1", server.port, gamma)
            second = await _post_query("127.0.0.1", server.port, gamma)
            return first, second

        (s1, _, p1), (s2, _, p2) = _run_with_server(
            small_index, config, scenario
        )
        assert s1 == s2 == 200
        assert p1["seeds"] == p2["seeds"]
        assert not p1["cache_hit"] and p2["cache_hit"]

    def test_sheds_with_retry_after_under_tiny_budget(self, small_index):
        config = ServingConfig(
            port=0, max_inflight=1, max_queue_depth=1, retry_after_s=1.0
        )

        async def scenario(server):
            rng = np.random.default_rng(11)
            gammas = rng.dirichlet(np.full(4, 0.8), size=24)
            return await asyncio.gather(
                *(
                    _post_query("127.0.0.1", server.port, row)
                    for row in gammas
                )
            )

        responses = _run_with_server(small_index, config, scenario)
        statuses = [status for status, _, _ in responses]
        assert set(statuses) <= {200, 429}
        assert statuses.count(200) >= 1
        shed = [
            (headers, payload)
            for status, headers, payload in responses
            if status == 429
        ]
        assert shed, "expected sheds under a max_inflight=1 budget"
        for headers, payload in shed:
            # Retry-After is jittered: the exact hint rides in
            # X-Retry-After-Ms, the header is its whole-second ceiling.
            hint_ms = float(headers["x-retry-after-ms"])
            assert 1000.0 <= hint_ms <= 1500.0
            assert int(headers["retry-after"]) == max(
                1, math.ceil(hint_ms / 1000.0)
            )
            assert "shed" in payload["error"]

    def test_batch_endpoint_answers_in_order(self, small_index):
        config = ServingConfig(port=0)

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            queries = [
                {"gamma": [0.4, 0.3, 0.2, 0.1]},
                {"gamma": [0.1, 0.2, 0.3, 0.4], "k": 3},
            ]
            writer.write(
                encode_request(
                    "POST",
                    "/query_batch",
                    json_body({"queries": queries, "k": 5}),
                )
            )
            await writer.drain()
            status, _, payload = await read_response(reader)
            writer.close()
            return status, json.loads(payload)

        status, payload = _run_with_server(small_index, config, scenario)
        assert status == 200
        answers = payload["answers"]
        assert len(answers) == 2
        assert len(answers[0]["seeds"]) == 5
        assert len(answers[1]["seeds"]) == 3

    def test_deadline_propagates_to_degraded_answers(self, small_index):
        config = ServingConfig(port=0, deadline_ms=None)

        async def scenario(server):
            # An already-expired budget cannot finish aggregation; the
            # PR 3 machinery must hand back a degraded answer, not hang.
            return await _post_query(
                "127.0.0.1",
                server.port,
                [0.4, 0.3, 0.2, 0.1],
                deadline_ms=0.0001,
            )

        status, _, payload = _run_with_server(small_index, config, scenario)
        assert status == 200
        assert payload["degraded"]
        assert payload["seeds"]

    def test_bad_requests_get_400(self, small_index):
        config = ServingConfig(port=0)

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                encode_request("POST", "/query", json_body({"k": 5}))
            )
            await writer.drain()
            bad_gamma = await read_response(reader)
            writer.close()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(encode_request("GET", "/nope"))
            await writer.drain()
            not_found = await read_response(reader)
            writer.close()
            return bad_gamma, not_found

        (bad_status, _, _), (nf_status, _, _) = _run_with_server(
            small_index, config, scenario
        )
        assert bad_status == 400
        assert nf_status == 404

    def test_healthz_reports_index_shape(self, small_index):
        config = ServingConfig(port=0)

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(encode_request("GET", "/healthz"))
            await writer.drain()
            status, _, payload = await read_response(reader)
            writer.close()
            return status, json.loads(payload)

        status, payload = _run_with_server(small_index, config, scenario)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["num_topics"] == 4
        assert payload["num_index_points"] == small_index.num_index_points

    def test_drain_answers_every_accepted_request(self, small_index):
        config = ServingConfig(port=0, max_batch_wait_us=4000)

        async def scenario(server):
            rng = np.random.default_rng(23)
            gammas = rng.dirichlet(np.full(4, 0.8), size=12)
            tasks = [
                asyncio.ensure_future(
                    _post_query("127.0.0.1", server.port, row)
                )
                for row in gammas
            ]
            # Let the requests hit the wire, then drain mid-flight.
            await asyncio.sleep(0.002)
            server.request_drain()
            responses = await asyncio.gather(*tasks)
            await server.wait_drained()
            # The listener is closed: new connections must fail.
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", server.port)
            return responses

        responses = _run_with_server(small_index, config, scenario)
        # Zero accepted requests lost: every request got a well-formed
        # HTTP response — 200 if admitted before the drain, 503 if it
        # arrived after.
        assert len(responses) == 12
        for status, _, payload in responses:
            assert status in (200, 503)
            if status == 200:
                assert payload["seeds"]

    def test_loadgen_round_trip(self, small_index):
        config = ServingConfig(port=0)

        async def scenario(server):
            return await run_loadgen(
                "127.0.0.1",
                server.port,
                mode="closed",
                duration_s=0.4,
                concurrency=3,
                num_distinct=8,
                seed=5,
            )

        report = _run_with_server(small_index, config, scenario)
        assert report.requests > 0
        assert report.errors == 0
        assert report.ok == report.requests - report.shed
        assert not any(
            status.startswith("5") for status in report.status_counts
        )
        assert report.latency_ms["p99"] >= report.latency_ms["p50"] > 0
        assert report.throughput_qps > 0
        payload = report.to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestQueryMix:
    def test_same_seed_same_mix(self):
        pool_a, probs_a = build_query_mix(4, num_distinct=16, seed=3)
        pool_b, probs_b = build_query_mix(4, num_distinct=16, seed=3)
        np.testing.assert_array_equal(pool_a, pool_b)
        np.testing.assert_array_equal(probs_a, probs_b)

    def test_mix_is_a_distribution_over_distributions(self):
        pool, probs = build_query_mix(5, num_distinct=32, seed=1, skew=1.2)
        assert pool.shape == (32, 5)
        np.testing.assert_allclose(pool.sum(axis=1), 1.0, atol=1e-12)
        assert probs.sum() == pytest.approx(1.0)
        assert list(probs) == sorted(probs, reverse=True)

    def test_zero_skew_is_uniform(self):
        _, probs = build_query_mix(4, num_distinct=10, seed=1, skew=0.0)
        np.testing.assert_allclose(probs, 0.1)


# ----------------------------------------------------------------------
# Jittered Retry-After hints (the herd-breaking satellite)
# ----------------------------------------------------------------------
class TestRetryAfterJitter:
    def test_hints_are_deterministic_and_bounded(self, small_index):
        config = ServingConfig(
            port=0, retry_after_s=1.0, retry_jitter=0.5
        )
        first = QueryServer(small_index, config)
        second = QueryServer(small_index, config)
        hints = [first._retry_after() for _ in range(8)]
        # Same policy, fresh server: identical schedule (the jitter is
        # seeded per shed-sequence number, not wall clock).
        assert hints == [second._retry_after() for _ in range(8)]
        ms = [float(h["X-Retry-After-Ms"]) for h in hints]
        assert all(1000.0 <= v <= 1500.0 for v in ms)
        # The whole point: hints are spread out, not one thundering
        # synchronized value.
        assert len(set(ms)) > 1
        for hint, v in zip(hints, ms):
            assert hint["Retry-After"] == str(max(1, math.ceil(v / 1000.0)))

    def test_zero_jitter_restores_fixed_hints(self, small_index):
        config = ServingConfig(
            port=0, retry_after_s=2.0, retry_jitter=0.0
        )
        server = QueryServer(small_index, config)
        for _ in range(4):
            hint = server._retry_after()
            assert hint["Retry-After"] == "2"
            assert float(hint["X-Retry-After-Ms"]) == 2000.0

    def test_retry_jitter_is_validated(self):
        with pytest.raises(ValueError):
            ServingConfig(retry_jitter=1.5)
        with pytest.raises(ValueError):
            ServingConfig(retry_jitter=-0.1)


# ----------------------------------------------------------------------
# SIGTERM drain of the real CLI subprocess
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serve_artifacts(tmp_path_factory):
    """A tiny dataset + index built through the CLI, for the serve test."""
    from repro.cli import main

    data_dir = tmp_path_factory.mktemp("serve-data")
    assert main(
        [
            "generate", "--out", str(data_dir),
            "--nodes", "80", "--topics", "3", "--items", "24", "--seed", "1",
        ]
    ) == 0
    index_path = data_dir / "index.npz"
    assert main(
        [
            "build", "--data", str(data_dir), "--out", str(index_path),
            "--index-points", "8", "--dirichlet-samples", "300",
            "--seed-list-length", "5", "--ris-sets", "200", "--seed", "2",
        ]
    ) == 0
    return data_dir, index_path


def test_cli_serve_drains_on_sigterm(serve_artifacts):
    data_dir, index_path = serve_artifacts
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--data", str(data_dir), "--index", str(index_path),
            "--port", "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert "serving" in banner, banner
        port = int(banner.split(":")[-1].split()[0])

        async def poke():
            status, _, payload = await _post_query(
                "127.0.0.1", port, [0.5, 0.3, 0.2], k=3
            )
            return status, payload

        status, payload = asyncio.run(poke())
        assert status == 200
        assert payload["seeds"]
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=20)
        assert proc.returncode == 0, out
        assert "drained" in out
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup path
            proc.kill()
            proc.wait()
