"""Tests for the robustness studies."""

import pytest

from repro.experiments import get_context, robustness


@pytest.fixture(scope="module")
def context():
    return get_context("test")


class TestParameterNoise:
    @pytest.fixture(scope="class")
    def result(self, context):
        return robustness.run_parameter_noise(
            context, sigmas=(0.0, 0.5, 1.5), num_queries=6
        )

    def test_structure(self, result):
        assert set(result.mean_distance) == {0.0, 0.5, 1.5}
        assert all(
            0.0 <= v <= 1.0 for v in result.mean_distance.values()
        )
        assert "parameter noise" in result.render()

    def test_noise_does_not_improve(self, result):
        # Heavy noise should be at least as bad as no noise (small
        # fluctuations allowed at test scale).
        assert (
            result.mean_distance[1.5]
            >= result.mean_distance[0.0] - 0.08
        )


class TestSparseCatalog:
    @pytest.fixture(scope="class")
    def result(self, context):
        return robustness.run_sparse_catalog(context)

    def test_pipeline_covers_better(self, result):
        # The Section-3.1 claim: resampling through the Dirichlet
        # covers out-of-clump queries at least as well as raw clumped
        # catalog items.
        assert result.pipeline_coverage <= result.catalog_coverage + 0.02

    def test_render(self, result):
        text = result.render()
        assert "sparse" in text
        assert "pipeline advantage" in text
