"""Battery for the IMM engine (`repro.im.imm`) and its wiring.

Covers the two-phase martingale algorithm itself (budgets, seed-list
shape, worker-count invariance, parameter validation), the
``engine="imm"`` dispatch through ``offline_seed_list`` and the batch
path, ``InflexConfig``/``ResumableBuilder``/CLI plumbing of the
``epsilon``/``delta`` knobs, and the ``repro_imm_*`` observability
surface.  The statistical (1 - 1/e - eps) guarantee itself is checked
by the slow-marked differential in ``tests/test_imm_guarantee.py``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import InflexConfig, InflexIndex
from repro.core.builder import ResumableBuilder
from repro.core.offline import offline_seed_list, offline_seed_lists_batch
from repro.im.imm import imm_budgets, imm_seed_selection

GAMMA4 = np.array([0.4, 0.3, 0.2, 0.1])


class TestBudgets:
    def test_budget_values_are_finite_and_positive(self):
        budgets = imm_budgets(200, 10, 0.1, 1 / 200)
        for key in ("ell", "eps_prime", "lambda_prime", "lambda_star"):
            assert math.isfinite(budgets[key])
            assert budgets[key] > 0
        assert budgets["eps_prime"] == pytest.approx(
            math.sqrt(2.0) * 0.1
        )

    def test_canonical_delta_gives_unit_ell(self):
        assert imm_budgets(500, 5, 0.2, 1 / 500)["ell"] == pytest.approx(
            1.0
        )

    def test_budget_shrinks_with_looser_epsilon(self):
        tight = imm_budgets(300, 8, 0.1, 1 / 300)
        loose = imm_budgets(300, 8, 0.4, 1 / 300)
        assert loose["lambda_star"] < tight["lambda_star"]
        assert loose["lambda_prime"] < tight["lambda_prime"]
        # The dominant epsilon^-2 scaling: 4x slack => ~16x fewer sets.
        assert tight["lambda_star"] / loose["lambda_star"] == pytest.approx(
            16.0
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_nodes=1, k=1, epsilon=0.1, delta=0.5),
            dict(num_nodes=10, k=11, epsilon=0.1, delta=0.5),
            dict(num_nodes=10, k=-1, epsilon=0.1, delta=0.5),
            dict(num_nodes=10, k=2, epsilon=0.0, delta=0.5),
            dict(num_nodes=10, k=2, epsilon=1.0, delta=0.5),
            dict(num_nodes=10, k=2, epsilon=0.1, delta=0.0),
            dict(num_nodes=10, k=2, epsilon=0.1, delta=1.0),
        ],
    )
    def test_invalid_budget_args_rejected(self, kwargs):
        with pytest.raises(ValueError):
            imm_budgets(**kwargs)


class TestSeedSelection:
    def test_returns_k_distinct_seeds_with_ordered_gains(
        self, small_graph
    ):
        result = imm_seed_selection(
            small_graph, GAMMA4, 8, epsilon=0.3, seed=3
        )
        assert result.algorithm == "imm"
        assert len(result.nodes) == 8
        assert len(set(result.nodes)) == 8
        gains = result.marginal_gains
        assert all(
            gains[i] >= gains[i + 1] for i in range(len(gains) - 1)
        )
        assert all(0 <= node < small_graph.num_nodes
                   for node in result.nodes)

    def test_bit_identical_across_worker_counts(self, small_graph):
        base = imm_seed_selection(
            small_graph, GAMMA4, 10, epsilon=0.3, seed=7, workers=1
        )
        wide = imm_seed_selection(
            small_graph, GAMMA4, 10, epsilon=0.3, seed=7, workers=4
        )
        assert base == wide

    def test_same_seed_reproducible(self, small_graph):
        a = imm_seed_selection(small_graph, GAMMA4, 5, epsilon=0.4, seed=21)
        b = imm_seed_selection(small_graph, GAMMA4, 5, epsilon=0.4, seed=21)
        assert a == b

    def test_beats_random_seeds(self, small_graph):
        """IMM's seeds must out-cover an arbitrary seed set."""
        from repro.im.imm import sample_rr_index

        result = imm_seed_selection(
            small_graph, GAMMA4, 5, epsilon=0.3, seed=13
        )
        holdout = sample_rr_index(small_graph, GAMMA4, 4000, seed=999)
        rng = np.random.default_rng(0)
        random_nodes = rng.choice(
            small_graph.num_nodes, size=5, replace=False
        )
        assert holdout.spread_estimate(
            result.nodes
        ) > holdout.spread_estimate(random_nodes)

    def test_zero_k_and_singleton_graph(self, small_graph):
        from repro.graph import TopicGraph

        empty = imm_seed_selection(small_graph, GAMMA4, 0, seed=1)
        assert empty.nodes == ()
        lonely = TopicGraph.from_arcs(
            1,
            np.zeros((0, 2), dtype=np.int64),
            np.zeros((0, 2), dtype=np.float64),
        )
        single = imm_seed_selection(
            lonely, np.array([0.5, 0.5]), 1, seed=1
        )
        assert single.nodes == (0,)

    def test_max_sets_cap_still_returns_k_seeds(self, small_graph):
        result = imm_seed_selection(
            small_graph, GAMMA4, 6, epsilon=0.2, seed=5, max_sets=500
        )
        assert len(result.nodes) == 6

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epsilon=0.0),
            dict(epsilon=-0.5),
            dict(epsilon=1.0),
            dict(delta=0.0),
            dict(delta=2.0),
            dict(max_sets=1),
        ],
    )
    def test_invalid_args_rejected(self, small_graph, kwargs):
        with pytest.raises(ValueError):
            imm_seed_selection(small_graph, GAMMA4, 3, seed=1, **kwargs)

    def test_oversized_k_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="k="):
            imm_seed_selection(tiny_graph, np.array([0.6, 0.4]), 7)


class TestOfflineDispatch:
    def test_offline_seed_list_imm_engine(self, small_graph):
        result = offline_seed_list(
            small_graph, GAMMA4, 6, engine="imm", imm_epsilon=0.3, seed=9
        )
        assert result.algorithm == "imm"
        assert len(result.nodes) == 6

    def test_offline_matches_direct_call(self, small_graph):
        via_offline = offline_seed_list(
            small_graph, GAMMA4, 5, engine="imm", imm_epsilon=0.3, seed=4
        )
        # offline_seed_list resolves its seed through resolve_rng, so
        # feed the direct call the same resolved generator.
        from repro.rng import resolve_rng

        direct = imm_seed_selection(
            small_graph, GAMMA4, 5, epsilon=0.3, seed=resolve_rng(4)
        )
        assert via_offline == direct

    def test_unknown_engine_mentions_imm(self, small_graph):
        with pytest.raises(ValueError, match="imm"):
            offline_seed_list(small_graph, GAMMA4, 3, engine="bogus")

    def test_ris_budget_validated(self, small_graph):
        with pytest.raises(ValueError, match="ris_num_sets"):
            offline_seed_list(
                small_graph, GAMMA4, 3, engine="ris", ris_num_sets=1
            )

    def test_batch_pool_matches_sequential(self, small_graph):
        gammas = np.array(
            [[0.4, 0.3, 0.2, 0.1], [0.1, 0.2, 0.3, 0.4]]
        )
        sequential = offline_seed_lists_batch(
            small_graph, gammas, 4, engine="imm", imm_epsilon=0.35,
            seeds=[11, 12], workers=1,
        )
        pooled = offline_seed_lists_batch(
            small_graph, gammas, 4, engine="imm", imm_epsilon=0.35,
            seeds=[11, 12], workers=2,
        )
        assert sequential == pooled
        assert all(r.algorithm == "imm" for r in sequential)


class TestConfigAndBuilder:
    def test_config_accepts_and_validates_imm_knobs(self):
        config = InflexConfig(im_engine="imm", imm_epsilon=0.25)
        assert config.imm_epsilon == 0.25
        assert config.imm_delta is None
        for bad in (
            dict(imm_epsilon=0.0),
            dict(imm_epsilon=1.0),
            dict(imm_delta=0.0),
            dict(ris_num_sets=1),
            dict(im_engine="not-an-engine"),
        ):
            with pytest.raises(ValueError):
                InflexConfig(**bad)

    def test_index_build_with_imm_engine(self, small_dataset):
        config = InflexConfig(
            num_index_points=4,
            num_dirichlet_samples=400,
            seed_list_length=4,
            im_engine="imm",
            imm_epsilon=0.4,
            knn=2,
            leaf_size=8,
            seed=23,
        )
        index = InflexIndex.build(
            small_dataset.graph, small_dataset.item_topics, config
        )
        assert index.num_index_points == 4
        for seed_list in index.seed_lists:
            assert seed_list.algorithm == "imm"
            assert len(seed_list.nodes) == 4
        grown = index.with_added_point(np.full(4, 0.25))
        assert grown.num_index_points == 5

    def test_builder_fingerprint_pins_imm_knobs(
        self, small_dataset, tmp_path
    ):
        base = dict(
            num_index_points=3,
            num_dirichlet_samples=300,
            seed_list_length=3,
            im_engine="imm",
            imm_epsilon=0.4,
            knn=2,
            leaf_size=8,
            seed=31,
        )
        ckpt = tmp_path / "ckpt"
        ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            InflexConfig(**base),
            ckpt,
        ).run(max_items=1)
        # Same imm knobs: resumable.
        index = ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            InflexConfig(**base),
            ckpt,
        ).run()
        assert index is not None
        # Different epsilon: rejected, the checkpoint pins results.
        with pytest.raises(ValueError, match="different"):
            ResumableBuilder(
                small_dataset.graph,
                small_dataset.item_topics,
                InflexConfig(**{**base, "imm_epsilon": 0.2}),
                ckpt,
            ).run()

    def test_legacy_engines_ignore_imm_knobs_in_fingerprint(
        self, small_dataset, tmp_path
    ):
        """ris checkpoints stay resumable when only imm knobs differ."""
        base = dict(
            num_index_points=3,
            num_dirichlet_samples=300,
            seed_list_length=3,
            im_engine="ris",
            ris_num_sets=300,
            knn=2,
            leaf_size=8,
            seed=37,
        )
        ckpt = tmp_path / "ckpt"
        ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            InflexConfig(**base),
            ckpt,
        ).run(max_items=1)
        index = ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            InflexConfig(**{**base, "imm_epsilon": 0.33}),
            ckpt,
        ).run()
        assert index is not None


class TestCli:
    def test_build_and_rr_spread(self, tmp_path):
        from repro.cli import main

        data = tmp_path / "data"
        assert main(
            [
                "generate", "--out", str(data), "--nodes", "100",
                "--topics", "3", "--items", "20", "--seed", "1",
            ]
        ) == 0
        assert main(
            [
                "build", "--data", str(data),
                "--out", str(data / "index.npz"),
                "--index-points", "4", "--dirichlet-samples", "300",
                "--seed-list-length", "4", "--engine", "imm",
                "--epsilon", "0.4", "--seed", "2",
            ]
        ) == 0
        assert (data / "index.npz").exists()
        assert main(
            [
                "spread", "--data", str(data), "--item", "0",
                "--seeds", "1,2,3", "--engine", "rr",
                "--num-sets", "500", "--seed", "3",
            ]
        ) == 0

    def test_rr_spread_rejects_tiny_budget(self, tmp_path):
        from repro.cli import main

        data = tmp_path / "data"
        assert main(
            [
                "generate", "--out", str(data), "--nodes", "50",
                "--topics", "2", "--items", "5", "--seed", "4",
            ]
        ) == 0
        with pytest.raises(SystemExit, match="num-sets"):
            main(
                [
                    "spread", "--data", str(data), "--item", "0",
                    "--seeds", "1", "--engine", "rr", "--num-sets", "1",
                ]
            )

    def test_build_parser_rejects_bad_epsilon(self, tmp_path):
        from repro.cli import main

        data = tmp_path / "data"
        assert main(
            [
                "generate", "--out", str(data), "--nodes", "50",
                "--topics", "2", "--items", "5", "--seed", "4",
            ]
        ) == 0
        with pytest.raises(ValueError, match="imm_epsilon"):
            main(
                [
                    "build", "--data", str(data),
                    "--out", str(data / "index.npz"),
                    "--index-points", "4", "--dirichlet-samples", "300",
                    "--engine", "imm", "--epsilon", "0",
                ]
            )


class TestObservability:
    def test_imm_metrics_and_spans_recorded(self, small_graph):
        from repro import obs

        obs.enable()
        try:
            registry = obs.get_registry()
            registry.reset()
            obs.get_tracer().clear()
            imm_seed_selection(
                small_graph, GAMMA4, 5, epsilon=0.4, seed=2
            )
            snapshot = registry.snapshot()
            builds = snapshot["repro_imm_builds_total"]
            assert builds["series"][0]["value"] == 1
            sampled = snapshot["repro_imm_rr_sets_sampled_total"]
            total = sum(
                entry["value"] for entry in sampled["series"]
            )
            assert total >= 2
            theta = snapshot["repro_imm_theta_rr_sets"]
            assert theta["series"][0]["value"]["count"] == 1
            names = {
                record.name for record in obs.get_tracer().spans()
            }
            assert "imm.sample" in names
            assert "imm.select" in names
        finally:
            obs.get_registry().reset()
