"""Tests for subgraph extraction and component analysis."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graph import (
    TopicGraph,
    induced_subgraph,
    interest_topic_graph,
    largest_component,
    strongly_connected_components,
    weakly_connected_components,
)


@pytest.fixture
def two_islands() -> TopicGraph:
    """Nodes 0-2 form a cycle; 3-4 a separate arc; 5 isolated."""
    arcs = [(0, 1), (1, 2), (2, 0), (3, 4)]
    probs = np.full((4, 2), 0.5)
    return TopicGraph.from_arcs(6, np.asarray(arcs), probs)


class TestInducedSubgraph:
    def test_keeps_internal_arcs_only(self, two_islands):
        result = induced_subgraph(two_islands, [0, 1, 3, 4])
        # (0,1) survives; (1,2),(2,0) lose node 2; (3,4) survives.
        assert result.graph.num_nodes == 4
        assert result.graph.num_arcs == 2

    def test_probabilities_preserved(self, tiny_graph):
        result = induced_subgraph(tiny_graph, range(tiny_graph.num_nodes))
        assert np.allclose(
            result.graph.probabilities, tiny_graph.probabilities
        )

    def test_mapping_round_trip(self, two_islands):
        result = induced_subgraph(two_islands, [2, 4, 5])
        for new_id, old_id in enumerate(result.new_to_old):
            assert result.old_to_new[old_id] == new_id
        assert result.map_seeds_back([0, 1, 2]) == [2, 4, 5]

    def test_validation(self, two_islands):
        with pytest.raises(InvalidGraphError):
            induced_subgraph(two_islands, [])
        with pytest.raises(InvalidGraphError):
            induced_subgraph(two_islands, [99])

    def test_empty_arc_result(self, two_islands):
        result = induced_subgraph(two_islands, [0, 5])
        assert result.graph.num_arcs == 0


class TestComponents:
    def test_wcc_structure(self, two_islands):
        components = weakly_connected_components(two_islands)
        sizes = [c.size for c in components]
        assert sizes == [3, 2, 1]
        assert components[0].tolist() == [0, 1, 2]

    def test_scc_structure(self, two_islands):
        components = strongly_connected_components(two_islands)
        # The 3-cycle is one SCC; 3, 4, 5 are singletons.
        assert components[0].tolist() == [0, 1, 2]
        assert [c.size for c in components] == [3, 1, 1, 1]

    def test_scc_on_dag(self):
        arcs = [(0, 1), (1, 2), (0, 2)]
        g = TopicGraph.from_arcs(3, np.asarray(arcs), np.full((3, 1), 0.5))
        components = strongly_connected_components(g)
        assert all(c.size == 1 for c in components)

    def test_wcc_partition(self, small_graph):
        components = weakly_connected_components(small_graph)
        seen = np.concatenate(components)
        assert sorted(seen.tolist()) == list(range(small_graph.num_nodes))

    def test_scc_partition(self, small_graph):
        components = strongly_connected_components(small_graph)
        seen = np.concatenate(components)
        assert sorted(seen.tolist()) == list(range(small_graph.num_nodes))

    def test_scc_matches_networkx(self):
        import networkx as nx

        g = interest_topic_graph(80, 3, seed=5)
        ours = {
            tuple(c.tolist()) for c in strongly_connected_components(g)
        }
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(g.num_nodes))
        nx_graph.add_edges_from((int(a), int(b)) for a, b in g.arcs())
        theirs = {
            tuple(sorted(c))
            for c in nx.strongly_connected_components(nx_graph)
        }
        assert ours == theirs

    def test_wcc_matches_networkx(self):
        import networkx as nx

        g = interest_topic_graph(80, 3, seed=6)
        ours = {
            tuple(c.tolist()) for c in weakly_connected_components(g)
        }
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(g.num_nodes))
        nx_graph.add_edges_from((int(a), int(b)) for a, b in g.arcs())
        theirs = {
            tuple(sorted(c)) for c in nx.connected_components(nx_graph)
        }
        assert ours == theirs


class TestLargestComponent:
    def test_weak(self, two_islands):
        result = largest_component(two_islands)
        assert result.graph.num_nodes == 3
        assert result.new_to_old.tolist() == [0, 1, 2]

    def test_strong(self, two_islands):
        result = largest_component(two_islands, strongly=True)
        assert result.graph.num_nodes == 3
        assert result.graph.num_arcs == 3  # the full cycle survives
