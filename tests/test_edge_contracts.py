"""Edge-of-contract tests: behaviors at the boundaries of the API.

Documents (and pins) what happens in the corner cases a downstream
user will eventually hit: k larger than anything precomputed, epsilon
hits with large k, single-node graphs, one-topic graphs.
"""

import numpy as np
import pytest

from repro.core import InflexConfig, InflexIndex
from repro.graph import TopicGraph
from repro.im import SeedList
from repro.propagation import estimate_spread, simulate_item_cascade
from repro.simplex import sample_uniform_simplex


class TestLargeK:
    def test_epsilon_match_with_k_beyond_list(self, small_index):
        # An epsilon hit returns the matched list's prefix; when k
        # exceeds the precomputed length the answer is simply shorter —
        # the documented contract (retrieve more neighbors for more).
        point = small_index.index_points[3]
        ell = small_index.config.seed_list_length
        answer = small_index.query(point, ell + 10)
        assert answer.epsilon_match
        assert len(answer.seeds) == ell

    def test_aggregated_k_capped_by_union(self, small_index):
        gamma = sample_uniform_simplex(
            1, small_index.graph.num_topics, seed=1
        )[0]
        answer = small_index.query(gamma, 10**6, strategy="approx-knn")
        union = set()
        for i in answer.neighbor_ids:
            union |= set(small_index.seed_lists[i].nodes)
        assert len(answer.seeds) == len(union)


class TestDegenerateGraphs:
    def test_single_topic_graph(self):
        arcs = [(0, 1), (1, 2)]
        graph = TopicGraph.from_arcs(
            3, np.asarray(arcs), np.full((2, 1), 0.5)
        )
        active = simulate_item_cascade(graph, [1.0], [0], rng=1)
        assert active[0]
        estimate = estimate_spread(
            graph, [1.0], [0], num_simulations=200, seed=2
        )
        assert 1.0 <= estimate.mean <= 3.0

    def test_single_node_graph_spread(self):
        graph = TopicGraph.from_arcs(
            1, np.empty((0, 2)), np.empty((0, 2))
        )
        estimate = estimate_spread(
            graph, [0.5, 0.5], [0], num_simulations=10, seed=3
        )
        assert estimate.mean == 1.0

    def test_index_on_arcless_graph(self):
        # A graph with nodes but no arcs: every seed list is padding,
        # and queries still satisfy the contract.
        graph = TopicGraph.from_arcs(
            5, np.empty((0, 2)), np.empty((0, 3))
        )
        catalog = np.random.default_rng(4).dirichlet(np.ones(3), size=20)
        config = InflexConfig(
            num_index_points=3,
            num_dirichlet_samples=100,
            seed_list_length=2,
            ris_num_sets=20,
            knn=2,
            seed=5,
        )
        index = InflexIndex.build(graph, catalog, config)
        answer = index.query(catalog[0], 2)
        assert len(answer.seeds) == 2


class TestSeedListEdge:
    def test_empty_seed_list(self):
        empty = SeedList(())
        assert len(empty) == 0
        assert empty.top(3).nodes == ()
        assert empty.estimated_spread == 0.0

    def test_top_zero(self):
        assert SeedList((1, 2)).top(0).nodes == ()
