"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    """A tiny generated dataset directory."""
    path = tmp_path_factory.mktemp("cli-data")
    code = main(
        [
            "generate",
            "--out",
            str(path),
            "--nodes",
            "120",
            "--topics",
            "3",
            "--items",
            "40",
            "--seed",
            "1",
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def index_path(data_dir, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-index") / "index.npz"
    code = main(
        [
            "build",
            "--data",
            str(data_dir),
            "--out",
            str(out),
            "--index-points",
            "8",
            "--dirichlet-samples",
            "400",
            "--seed-list-length",
            "6",
            "--ris-sets",
            "400",
            "--seed",
            "2",
        ]
    )
    assert code == 0
    return out


class TestGenerate:
    def test_artifacts_exist(self, data_dir):
        assert (data_dir / "graph.npz").exists()
        assert (data_dir / "catalog.npy").exists()
        catalog = np.load(data_dir / "catalog.npy")
        assert catalog.shape == (40, 3)

    def test_with_log(self, tmp_path):
        code = main(
            [
                "generate",
                "--out",
                str(tmp_path),
                "--nodes",
                "60",
                "--topics",
                "2",
                "--items",
                "10",
                "--with-log",
            ]
        )
        assert code == 0
        assert (tmp_path / "log.txt").exists()


class TestBuildAndQuery:
    def test_query_by_gamma(self, data_dir, index_path, capsys):
        code = main(
            [
                "query",
                "--data",
                str(data_dir),
                "--index",
                str(index_path),
                "--gamma",
                "0.6,0.3,0.1",
                "--k",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "seeds (ranked):" in out
        assert "ms" in out

    def test_query_by_item(self, data_dir, index_path, capsys):
        code = main(
            [
                "query",
                "--data",
                str(data_dir),
                "--index",
                str(index_path),
                "--item",
                "3",
                "--k",
                "3",
                "--strategy",
                "approx-knn",
            ]
        )
        assert code == 0
        assert "approx-knn" in capsys.readouterr().out

    def test_gamma_normalized(self, data_dir, index_path, capsys):
        code = main(
            [
                "query",
                "--data",
                str(data_dir),
                "--index",
                str(index_path),
                "--gamma",
                "6,3,1",  # unnormalized: CLI normalizes
                "--k",
                "2",
            ]
        )
        assert code == 0


class TestObservabilityCommands:
    @pytest.fixture(autouse=True)
    def _restore_obs_state(self):
        """--profile / obs enable the global switch; restore defaults."""
        from repro import obs

        yield
        obs.disable()
        obs.get_registry().reset()
        obs.get_tracer().clear()

    def test_query_profile_writes_breakdown_and_trace(
        self, data_dir, index_path, tmp_path, capsys
    ):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "query",
                "--data",
                str(data_dir),
                "--index",
                str(index_path),
                "--item",
                "3",
                "--k",
                "3",
                "--profile",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-phase breakdown:" in out
        assert "search" in out and "aggregation" in out
        assert trace_path.exists()
        document = json.loads(trace_path.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "query" in names
        assert "query.search" in names

    def test_obs_dumps_json_snapshot(
        self, data_dir, index_path, tmp_path, capsys
    ):
        import json

        out_path = tmp_path / "snap.json"
        code = main(
            [
                "obs",
                "--data",
                str(data_dir),
                "--index",
                str(index_path),
                "--queries",
                "6",
                "--k",
                "3",
                "--out",
                str(out_path),
                "--reset",
            ]
        )
        assert code == 0
        snapshot = json.loads(out_path.read_text())
        totals = sum(
            entry["value"]
            for entry in snapshot["repro_queries_total"]["series"]
        )
        assert totals == 6.0
        assert (
            snapshot["repro_query_batches_total"]["series"][0]["value"]
            == 1.0
        )

    def test_obs_prometheus_to_stdout(self, data_dir, index_path, capsys):
        code = main(
            [
                "obs",
                "--data",
                str(data_dir),
                "--index",
                str(index_path),
                "--queries",
                "2",
                "--k",
                "2",
                "--format",
                "prometheus",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert "repro_query_phase_seconds" in out


class TestExperimentCommand:
    def test_runs_fig4(self, capsys):
        code = main(["experiment", "fig4", "--scale", "test"])
        assert code == 0
        assert "Pearson" in capsys.readouterr().out


class TestAutosizeCommand:
    def test_runs(self, data_dir, capsys):
        code = main(
            [
                "autosize",
                "--data",
                str(data_dir),
                "--sizes",
                "4",
                "8",
            ]
        )
        assert code == 0
        assert "Auto-sizing" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_requires_gamma_or_item(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--data", "x", "--index", "y"]
            )
