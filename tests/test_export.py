"""Tests for experiment-result export (JSON/CSV) and memory footprint."""

import csv
import json

import pytest

from repro.experiments import (
    export_json,
    export_series_csv,
    fig4_distance_correlation,
    get_context,
    result_to_dict,
)


@pytest.fixture(scope="module")
def fig4_result():
    return fig4_distance_correlation.run(get_context("test"), num_pairs=60)


class TestResultToDict:
    def test_dataclass_converted(self, fig4_result):
        data = result_to_dict(fig4_result)
        assert isinstance(data["pearson"], float)
        assert isinstance(data["divergences"], list)

    def test_tuple_keys_joined(self):
        import dataclasses

        @dataclasses.dataclass
        class Dummy:
            values: dict

        data = result_to_dict(Dummy(values={("a", 1): 2.0}))
        assert data["values"] == {"a|1": 2.0}

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            result_to_dict({"not": "a dataclass"})


class TestExportJson:
    def test_round_trip(self, fig4_result, tmp_path):
        path = tmp_path / "fig4.json"
        export_json(fig4_result, path)
        with path.open() as handle:
            data = json.load(handle)
        assert data["pearson"] == pytest.approx(fig4_result.pearson)
        assert len(data["divergences"]) == len(fig4_result.divergences)


class TestExportSeriesCsv:
    def test_csv_structure(self, tmp_path):
        path = tmp_path / "series.csv"
        export_series_csv(
            "k", [1, 2, 3], {"a": [0.1, 0.2, 0.3], "b": [1, 2, 3]}, path
        )
        with path.open(newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["k", "a", "b"]
        assert rows[2] == ["2", "0.2", "2"]

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv(
                "k", [1, 2], {"a": [0.1]}, tmp_path / "bad.csv"
            )


class TestMemoryFootprint:
    def test_paper_formula(self, small_index):
        z = small_index.graph.num_topics
        ell = small_index.config.seed_list_length
        expected = ((z - 1) * 8 + ell * 4) * small_index.num_index_points
        assert small_index.memory_footprint() == expected

    def test_grows_with_points(self, small_index):
        from repro.im import SeedList

        gamma = small_index.index_points[0] * 0.5 + 0.5 / len(
            small_index.index_points[0]
        )
        gamma = gamma / gamma.sum()
        grown = small_index.with_added_point(gamma, SeedList((1, 2, 3)))
        assert grown.memory_footprint() > small_index.memory_footprint()
