"""Tests for cascade simulation and spread estimation."""

import numpy as np
import pytest

from repro.graph import TopicGraph
from repro.propagation import (
    MonteCarloSpread,
    SnapshotSpread,
    estimate_spread,
    simulate_cascade,
    simulate_item_cascade,
    simulate_item_cascade_trace,
)


def _chain_graph(p: float, num_topics: int = 1) -> TopicGraph:
    """0 -> 1 -> 2 -> 3 with uniform probability p on every topic."""
    arcs = [(0, 1), (1, 2), (2, 3)]
    probs = np.full((3, num_topics), p)
    return TopicGraph.from_arcs(4, np.asarray(arcs), probs)


class TestSimulateCascade:
    def test_deterministic_chain_full_activation(self):
        g = _chain_graph(1.0)
        active = simulate_item_cascade(g, [1.0], [0], rng=0)
        assert active.all()

    def test_zero_probability_only_seeds(self):
        g = _chain_graph(0.0)
        active = simulate_item_cascade(g, [1.0], [0], rng=0)
        assert active.tolist() == [True, False, False, False]

    def test_empty_seed_set(self):
        g = _chain_graph(1.0)
        active = simulate_item_cascade(g, [1.0], [], rng=0)
        assert not active.any()

    def test_all_seeds(self):
        g = _chain_graph(0.0)
        active = simulate_item_cascade(g, [1.0], [0, 1, 2, 3], rng=0)
        assert active.all()

    def test_seeds_always_active(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        active = simulate_item_cascade(small_graph, gamma, [3, 7], rng=1)
        assert active[3] and active[7]

    def test_monotone_in_probability(self, small_graph):
        # Same RNG seed, scaled probabilities: coupling means more
        # activations with higher probabilities on average.
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        low = np.mean(
            [
                simulate_item_cascade(small_graph, gamma, [0], rng=i).sum()
                for i in range(100)
            ]
        )
        boosted = TopicGraph(
            small_graph.num_nodes,
            small_graph.indptr,
            small_graph.indices,
            np.clip(small_graph.probabilities * 2.0, 0, 1),
        )
        high = np.mean(
            [
                simulate_item_cascade(boosted, gamma, [0], rng=i).sum()
                for i in range(100)
            ]
        )
        assert high >= low

    def test_respects_reachability(self):
        # Node 3 is unreachable from node 1 in the chain.
        g = _chain_graph(1.0)
        active = simulate_cascade(
            g.indptr, g.indices, g.item_probabilities([1.0]), [2], rng=0
        )
        assert not active[0] and not active[1]
        assert active[2] and active[3]


class TestCascadeTrace:
    def test_times_and_activators(self):
        g = _chain_graph(1.0)
        trace = simulate_item_cascade_trace(g, [1.0], [0], rng=0)
        assert trace.activation_time.tolist() == [0, 1, 2, 3]
        assert trace.activator.tolist() == [-1, 0, 1, 2]
        assert trace.size == 4

    def test_inactive_nodes_marked(self):
        g = _chain_graph(0.0)
        trace = simulate_item_cascade_trace(g, [1.0], [1], rng=0)
        assert trace.activation_time[0] == -1
        assert trace.activator[2] == -1

    def test_matches_mask_semantics(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        trace = simulate_item_cascade_trace(small_graph, gamma, [0, 5], rng=2)
        assert trace.size == trace.active.sum()
        assert np.all((trace.activation_time >= 0) == trace.active)


class TestSpreadEstimation:
    def test_chain_expected_value(self):
        # Chain with p: E[spread from node 0] = 1 + p + p^2 + p^3.
        p = 0.5
        g = _chain_graph(p)
        estimate = estimate_spread(
            g, [1.0], [0], num_simulations=8000, seed=3
        )
        expected = 1 + p + p**2 + p**3
        assert estimate.mean == pytest.approx(expected, abs=0.05)

    def test_monotone_in_seed_set(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        est = MonteCarloSpread(
            small_graph, gamma, num_simulations=300, seed=4
        )
        small = est.estimate([0])
        large = MonteCarloSpread(
            small_graph, gamma, num_simulations=300, seed=4
        ).estimate([0, 1, 2])
        assert large >= small

    def test_standard_error(self):
        g = _chain_graph(0.5)
        estimate = estimate_spread(g, [1.0], [0], num_simulations=100, seed=5)
        assert estimate.standard_error > 0
        assert estimate.num_simulations == 100

    def test_invalid_simulation_count(self):
        g = _chain_graph(0.5)
        with pytest.raises(ValueError):
            MonteCarloSpread(g, [1.0], num_simulations=0)


class TestSnapshotSpread:
    def test_matches_monte_carlo(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        snap = SnapshotSpread(
            small_graph, gamma, num_snapshots=600, seed=6
        )
        mc = MonteCarloSpread(
            small_graph, gamma, num_simulations=600, seed=7
        )
        seeds = [0, 3, 9]
        assert snap.estimate(seeds) == pytest.approx(
            mc.estimate(seeds), rel=0.15
        )

    def test_deterministic_given_snapshots(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        snap = SnapshotSpread(small_graph, gamma, num_snapshots=50, seed=8)
        assert snap.estimate([1, 2]) == snap.estimate([1, 2])

    def test_monotone_submodular_on_snapshots(self, small_graph):
        # Exact monotonicity and submodularity hold per snapshot set.
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        snap = SnapshotSpread(small_graph, gamma, num_snapshots=40, seed=9)
        s_empty = snap.estimate([])
        s_a = snap.estimate([0])
        s_ab = snap.estimate([0, 1])
        s_b = snap.estimate([1])
        assert s_empty == 0.0
        assert s_a <= s_ab + 1e-12
        # Submodularity: gain of adding 1 to {} >= gain of adding 1 to {0}.
        assert (s_b - s_empty) >= (s_ab - s_a) - 1e-9

    def test_duplicate_seeds_collapse(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        snap = SnapshotSpread(small_graph, gamma, num_snapshots=30, seed=10)
        assert snap.estimate([4, 4, 4]) == snap.estimate([4])

    def test_invalid_snapshot_count(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        with pytest.raises(ValueError):
            SnapshotSpread(small_graph, gamma, num_snapshots=0)
