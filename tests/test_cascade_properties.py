"""Property-based tests for the cascade and spread primitives.

Scalar inputs (graph shapes, seed choices) are driven by hypothesis;
each drawn scalar seeds a numpy generator, so every example is a fully
deterministic graph + seed-set instance.  The properties are the model
invariants every estimator must respect:

* spread is bounded by ``[|unique seeds|, num_nodes]``,
* an edgeless graph spreads exactly to its seeds,
* snapshot spread is monotone under seed-set inclusion,
* :class:`~repro.propagation.cascade.CascadeTrace` records a consistent
  activation history (times, activators, arc existence).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import TopicGraph
from repro.propagation import (
    MonteCarloSpread,
    ParallelMonteCarloSpread,
    SnapshotSpread,
    simulate_cascade,
    simulate_cascade_trace,
)

SETTINGS = settings(max_examples=25, deadline=None)


def _random_graph(
    num_nodes: int, num_arcs: int, num_topics: int, seed: int
) -> TopicGraph:
    """A deterministic random multigraph-free topic graph."""
    rng = np.random.default_rng(seed)
    tails = rng.integers(0, num_nodes, size=num_arcs)
    heads = rng.integers(0, num_nodes, size=num_arcs)
    keep = tails != heads
    pairs = np.unique(
        np.stack([tails[keep], heads[keep]], axis=1), axis=0
    )
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    probs = rng.uniform(0.05, 0.6, size=(pairs.shape[0], num_topics))
    return TopicGraph.from_arcs(num_nodes, pairs, probs)


def _seed_set(rng: np.random.Generator, num_nodes: int, size: int):
    return [
        int(v)
        for v in rng.choice(num_nodes, size=min(size, num_nodes), replace=False)
    ]


def _gamma(num_topics: int) -> np.ndarray:
    return np.full(num_topics, 1.0 / num_topics)


class TestSpreadBounds:
    @SETTINGS
    @given(
        graph_seed=st.integers(0, 10_000),
        num_nodes=st.integers(2, 40),
        set_size=st.integers(1, 6),
    )
    def test_monte_carlo_spread_bounded(
        self, graph_seed, num_nodes, set_size
    ):
        graph = _random_graph(num_nodes, 4 * num_nodes, 2, graph_seed)
        rng = np.random.default_rng(graph_seed + 1)
        seeds = _seed_set(rng, num_nodes, set_size)
        estimator = MonteCarloSpread(
            graph, _gamma(2), num_simulations=10, seed=graph_seed
        )
        estimate = estimator.estimate_with_error(seeds)
        assert len(set(seeds)) <= estimate.mean <= num_nodes

    @SETTINGS
    @given(
        graph_seed=st.integers(0, 10_000),
        num_nodes=st.integers(2, 40),
        set_size=st.integers(1, 6),
    )
    def test_parallel_spread_bounded(
        self, graph_seed, num_nodes, set_size
    ):
        graph = _random_graph(num_nodes, 4 * num_nodes, 2, graph_seed)
        rng = np.random.default_rng(graph_seed + 1)
        seeds = _seed_set(rng, num_nodes, set_size)
        with ParallelMonteCarloSpread(
            graph, _gamma(2), num_simulations=10, seed=graph_seed, workers=1
        ) as estimator:
            estimate = estimator.estimate_with_error(seeds)
        assert len(set(seeds)) <= estimate.mean <= num_nodes

    @SETTINGS
    @given(
        num_nodes=st.integers(1, 50),
        set_size=st.integers(0, 8),
        seed=st.integers(0, 10_000),
    )
    def test_edgeless_graph_spreads_exactly_to_seeds(
        self, num_nodes, set_size, seed
    ):
        graph = TopicGraph.from_arcs(
            num_nodes, np.empty((0, 2)), np.empty((0, 3))
        )
        rng = np.random.default_rng(seed)
        seeds = _seed_set(rng, num_nodes, set_size)
        with ParallelMonteCarloSpread(
            graph, _gamma(3), num_simulations=5, seed=seed, workers=1
        ) as estimator:
            estimate = estimator.estimate_with_error(seeds)
        assert estimate.mean == float(len(set(seeds)))
        assert estimate.std == 0.0


class TestMonotonicity:
    @SETTINGS
    @given(
        graph_seed=st.integers(0, 10_000),
        num_nodes=st.integers(3, 40),
        set_size=st.integers(1, 5),
    )
    def test_snapshot_spread_monotone_under_inclusion(
        self, graph_seed, num_nodes, set_size
    ):
        """Adding a node to the seed set never decreases spread when the
        randomness is shared — the live-edge estimator's core
        guarantee."""
        graph = _random_graph(num_nodes, 4 * num_nodes, 2, graph_seed)
        estimator = SnapshotSpread(
            graph, _gamma(2), num_snapshots=8, seed=graph_seed
        )
        rng = np.random.default_rng(graph_seed + 1)
        chosen = _seed_set(rng, num_nodes, set_size + 1)
        smaller, extra = chosen[:-1], chosen[-1]
        assert estimator.estimate(smaller + [extra]) >= estimator.estimate(
            smaller
        )

    @SETTINGS
    @given(
        graph_seed=st.integers(0, 10_000),
        num_nodes=st.integers(3, 30),
    )
    def test_snapshot_spread_monotone_along_growing_chain(
        self, graph_seed, num_nodes
    ):
        graph = _random_graph(num_nodes, 3 * num_nodes, 2, graph_seed)
        estimator = SnapshotSpread(
            graph, _gamma(2), num_snapshots=6, seed=graph_seed
        )
        rng = np.random.default_rng(graph_seed + 1)
        chain = _seed_set(rng, num_nodes, min(5, num_nodes))
        values = [
            estimator.estimate(chain[: i + 1]) for i in range(len(chain))
        ]
        assert values == sorted(values)


class TestCascadeTraceInvariants:
    @SETTINGS
    @given(
        graph_seed=st.integers(0, 10_000),
        num_nodes=st.integers(2, 40),
        set_size=st.integers(1, 5),
    )
    def test_trace_history_is_consistent(
        self, graph_seed, num_nodes, set_size
    ):
        graph = _random_graph(num_nodes, 4 * num_nodes, 2, graph_seed)
        probs = graph.item_probabilities(_gamma(2))
        rng = np.random.default_rng(graph_seed + 1)
        seeds = _seed_set(rng, num_nodes, set_size)
        trace = simulate_cascade_trace(
            graph.indptr,
            graph.indices,
            probs,
            seeds,
            np.random.default_rng(graph_seed + 2),
        )
        seed_set = set(seeds)
        for node in range(num_nodes):
            time = int(trace.activation_time[node])
            activator = int(trace.activator[node])
            if node in seed_set:
                assert trace.active[node]
                assert time == 0
                assert activator == -1
            elif trace.active[node]:
                assert time >= 1
                assert trace.active[activator]
                assert int(trace.activation_time[activator]) == time - 1
                # The recorded activator really owns an arc to node.
                lo, hi = graph.indptr[activator], graph.indptr[activator + 1]
                assert node in graph.indices[lo:hi]
            else:
                assert time == -1
                assert activator == -1

    @SETTINGS
    @given(
        graph_seed=st.integers(0, 10_000),
        num_nodes=st.integers(2, 40),
        set_size=st.integers(1, 5),
    )
    def test_trace_matches_untraced_cascade(
        self, graph_seed, num_nodes, set_size
    ):
        """The traced and untraced kernels flip the same coins, so the
        activation masks must coincide for the same rng seed."""
        graph = _random_graph(num_nodes, 4 * num_nodes, 2, graph_seed)
        probs = graph.item_probabilities(_gamma(2))
        rng = np.random.default_rng(graph_seed + 1)
        seeds = _seed_set(rng, num_nodes, set_size)
        trace = simulate_cascade_trace(
            graph.indptr,
            graph.indices,
            probs,
            seeds,
            np.random.default_rng(graph_seed + 2),
        )
        active = simulate_cascade(
            graph.indptr,
            graph.indices,
            probs,
            seeds,
            np.random.default_rng(graph_seed + 2),
        )
        assert np.array_equal(trace.active, active)
        assert trace.size == int(active.sum())

    def test_trace_empty_seed_set(self, tiny_graph):
        probs = tiny_graph.item_probabilities([0.5, 0.5])
        trace = simulate_cascade_trace(
            tiny_graph.indptr, tiny_graph.indices, probs, [], seed_rng(0)
        )
        assert not trace.active.any()
        assert (trace.activation_time == -1).all()
        assert (trace.activator == -1).all()
        assert trace.size == 0


def seed_rng(seed: int) -> np.random.Generator:
    """Tiny helper keeping the fixture-based test symmetric."""
    return np.random.default_rng(seed)
