"""Tests for the scaling/break-even analysis and topic-count selection,
plus a randomized CELF++-vs-greedy equivalence sweep."""

import numpy as np
import pytest

from repro.experiments import get_context, scaling
from repro.graph import interest_topic_graph
from repro.im import (
    celfpp_seed_selection,
    greedy_seed_selection,
)
from repro.learning import (
    generate_propagation_log,
    select_num_topics,
)
from repro.learning.model_selection import _split_log
from repro.learning.propagation_log import PropagationLog
from repro.propagation import SnapshotSpread
from repro.rng import resolve_rng


class TestScalingAnalysis:
    @pytest.fixture(scope="class")
    def result(self):
        context = get_context("test")
        return scaling.run(
            context,
            sizes=(6, 12),
            num_offline_queries=2,
            num_index_queries=5,
        )

    def test_structure(self, result):
        assert result.offline_seconds_per_query > 0
        assert set(result.build_seconds) == {6, 12}
        assert all(v > 0 for v in result.query_ms.values())
        assert "break-even" in result.render()

    def test_breakeven_positive_when_index_faster(self, result):
        for h in result.sizes:
            if result.query_ms[h] / 1000 < result.offline_seconds_per_query:
                assert result.breakeven_queries(h) > 0

    def test_validation(self):
        context = get_context("test")
        with pytest.raises(ValueError):
            scaling.run(context, num_offline_queries=0)


class TestTopicSelection:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = interest_topic_graph(
            120, 3, topics_per_node=1, base_strength=0.25, seed=61
        )
        rng = np.random.default_rng(62)
        items = rng.dirichlet(np.full(3, 0.3), size=120)
        log = generate_propagation_log(
            graph, items, seeds_per_item=6, seed=63
        )
        return graph, log

    def test_selects_a_candidate(self, setup):
        graph, log = setup
        result = select_num_topics(
            graph, log, candidates=(1, 3), max_iter=10, seed=64
        )
        assert result.chosen in (1, 3)
        assert set(result.holdout_log_likelihood) == {1, 3}
        assert "chosen" in result.render()

    def test_multi_topic_beats_single_on_topical_data(self, setup):
        graph, log = setup
        result = select_num_topics(
            graph, log, candidates=(1, 3), max_iter=15, seed=65
        )
        # Data generated from a 3-topic process: the 1-topic model
        # should not win the held-out comparison.
        assert result.holdout_log_likelihood[3] >= (
            result.holdout_log_likelihood[1]
        )

    def test_split_is_partition(self, setup):
        _, log = setup
        train, holdout = _split_log(log, 0.25, resolve_rng(66))
        assert train.num_items + holdout.num_items == log.num_items
        train_ids = {t.item_id for t in train}
        holdout_ids = {t.item_id for t in holdout}
        assert not train_ids & holdout_ids

    def test_validation(self, setup):
        graph, log = setup
        with pytest.raises(ValueError):
            select_num_topics(graph, log, candidates=())
        with pytest.raises(ValueError):
            select_num_topics(graph, log, holdout_fraction=1.5)
        tiny = PropagationLog(graph.num_nodes, tuple(log)[:1])
        with pytest.raises(ValueError):
            select_num_topics(graph, tiny, candidates=(2,))


class TestCelfppEquivalenceSweep:
    """Randomized regression: CELF++ must equal plain greedy on many
    random instances (the lazy bookkeeping has subtle failure modes)."""

    @pytest.mark.parametrize("trial", range(6))
    def test_matches_greedy(self, trial):
        graph = interest_topic_graph(
            60,
            3,
            topics_per_node=1,
            base_strength=0.3,
            seed=100 + trial,
        )
        gamma = np.zeros(3)
        gamma[trial % 3] = 1.0
        oracle = SnapshotSpread(
            graph, gamma, num_snapshots=40, seed=200 + trial
        )
        greedy = greedy_seed_selection(oracle, graph.num_nodes, 4)
        celfpp = celfpp_seed_selection(oracle, graph.num_nodes, 4)
        assert greedy.nodes == celfpp.nodes
        assert np.allclose(greedy.marginal_gains, celfpp.marginal_gains)
