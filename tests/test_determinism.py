"""Determinism snapshots: same seed, same outputs — across the stack.

A reproduction repository lives and dies by replayability.  These tests
rebuild major artifacts twice with identical seeds and assert byte-level
equality, plus time-window behavior of the EM trial extraction.
"""

import numpy as np
import pytest

from repro.core import InflexConfig, InflexIndex
from repro.datasets import generate_flixster_like, generate_query_workload
from repro.graph import interest_topic_graph
from repro.learning import TICLearner, generate_propagation_log
from repro.learning.propagation_log import ItemTrace, PropagationLog


class TestDatasetDeterminism:
    def test_full_dataset_identical(self):
        a = generate_flixster_like(
            num_nodes=150, num_topics=4, num_items=60, with_log=True, seed=5
        )
        b = generate_flixster_like(
            num_nodes=150, num_topics=4, num_items=60, with_log=True, seed=5
        )
        assert np.array_equal(a.graph.indices, b.graph.indices)
        assert np.array_equal(a.graph.probabilities, b.graph.probabilities)
        assert np.array_equal(a.item_topics, b.item_topics)
        for trace_a, trace_b in zip(a.log, b.log):
            assert np.array_equal(trace_a.nodes, trace_b.nodes)
            assert np.array_equal(trace_a.times, trace_b.times)

    def test_workload_identical(self):
        catalog = generate_flixster_like(
            num_nodes=100, num_topics=3, num_items=50, seed=6
        ).item_topics
        a = generate_query_workload(catalog, 12, seed=7)
        b = generate_query_workload(catalog, 12, seed=7)
        assert np.array_equal(a.items, b.items)
        assert a.kinds == b.kinds


class TestIndexDeterminism:
    def test_build_twice_identical(self, small_dataset):
        config = InflexConfig(
            num_index_points=8,
            num_dirichlet_samples=400,
            seed_list_length=5,
            ris_num_sets=400,
            knn=4,
            seed=11,
        )
        a = InflexIndex.build(
            small_dataset.graph, small_dataset.item_topics, config
        )
        b = InflexIndex.build(
            small_dataset.graph, small_dataset.item_topics, config
        )
        assert np.array_equal(a.index_points, b.index_points)
        for list_a, list_b in zip(a.seed_lists, b.seed_lists):
            assert list_a.nodes == list_b.nodes
        gamma = small_dataset.item_topics[0]
        assert (
            a.query(gamma, 4).seeds.nodes == b.query(gamma, 4).seeds.nodes
        )


class TestLearnerDeterminism:
    def test_fit_twice_identical(self):
        graph = interest_topic_graph(
            80, 3, topics_per_node=1, base_strength=0.25, seed=21
        )
        items = np.random.default_rng(22).dirichlet(np.ones(3), size=40)
        log = generate_propagation_log(graph, items, seed=23)
        a = TICLearner(graph, 3, max_iter=8, seed=24).fit(log)
        b = TICLearner(graph, 3, max_iter=8, seed=24).fit(log)
        assert np.array_equal(a.probabilities, b.probabilities)
        assert np.array_equal(a.item_topics, b.item_topics)
        assert a.history == b.history


class TestTimeWindow:
    def _log_with_delay(self, delay: int) -> PropagationLog:
        # Node 0 activates at t=0, node 1 at t=delay.
        return PropagationLog(
            2,
            (ItemTrace(0, np.array([0, 1]), np.array([0, delay])),),
        )

    def _graph(self):
        from repro.graph import TopicGraph

        return TopicGraph.from_arcs(
            2, np.array([[0, 1]]), np.array([[0.5]])
        )

    def test_within_window_counts_as_positive(self):
        graph = self._graph()
        learner = TICLearner(graph, 1, time_window=3, seed=1)
        trials = learner._extract_trials(self._log_with_delay(2))
        assert trials[0].positive_arcs.size == 1

    def test_beyond_window_not_attributed(self):
        graph = self._graph()
        learner = TICLearner(graph, 1, time_window=3, seed=1)
        trials = learner._extract_trials(self._log_with_delay(10))
        assert trials[0].positive_arcs.size == 0
        # ... and it is not a negative trial either: the head DID
        # activate, just not attributably.
        assert trials[0].negative_arcs.size == 0

    def test_none_window_accepts_any_delay(self):
        graph = self._graph()
        learner = TICLearner(graph, 1, seed=1)
        trials = learner._extract_trials(self._log_with_delay(10))
        assert trials[0].positive_arcs.size == 1

    def test_window_validation(self):
        with pytest.raises(ValueError):
            TICLearner(self._graph(), 1, time_window=0)
