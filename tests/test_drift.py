"""Tests for the query-drift and densification study."""

import pytest

from repro.experiments import drift, get_context


@pytest.fixture(scope="module")
def result():
    return drift.run(
        get_context("test"), levels=(0.0, 0.8), num_queries=4
    )


class TestDrift:
    def test_structure(self, result):
        assert set(result.static_distance) == {0.0, 0.8}
        for mapping in (
            result.static_coverage,
            result.static_distance,
            result.densified_distance,
        ):
            assert all(v >= 0.0 for v in mapping.values())
        assert "drift" in result.render()

    def test_densification_helps_under_drift(self, result):
        # Where the static index struggles most (the drifted stream),
        # densifying at the drift region must not hurt and should help.
        assert (
            result.densified_distance[0.8]
            <= result.static_distance[0.8] + 0.05
        )

    def test_validation(self):
        context = get_context("test")
        with pytest.raises(ValueError):
            drift.run(context, levels=(1.5,))
        with pytest.raises(ValueError):
            drift.run(context, levels=())
