"""Chaos suite for the fault-tolerant execution layer.

Every scenario here follows the same shape: script a failure with a
deterministic :class:`FaultPlan`, let the component recover, and assert
the *strong* postcondition — bit-identical spreads after a worker
crash, quarantine-and-recompute after checkpoint corruption, an intact
previous artifact after an interrupted save, a prompt degraded answer
after a blown deadline.  Detection alone is never the assertion.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core import InflexConfig, InflexIndex, load_index, save_index
from repro.core.builder import ResumableBuilder
from repro.errors import (
    CorruptArtifactError,
    DeadlineExceededError,
    PoolBrokenError,
    ReproError,
)
from repro.propagation import (
    ParallelMonteCarloSpread,
    active_payload_count,
    shutdown_pools,
)
from repro.propagation.spread import estimate_spread_sequential
from repro.resilience import (
    Deadline,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    RetryPolicy,
    fault_plan,
    get_fault_plan,
    parse_fault_plan,
    resolve_deadline,
    set_fault_plan,
)

GAMMA4 = np.full(4, 0.25)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    """Leave no pools or segments behind for other test modules."""
    yield
    shutdown_pools()


@pytest.fixture
def observability():
    """Enabled global metrics with clean state, restored afterwards."""
    obs.enable()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    yield obs.get_registry()
    obs.disable()
    obs.get_registry().reset()
    obs.get_tracer().clear()


def _counter(registry, name: str) -> float:
    """Total of a counter across its label series (0.0 when unused)."""
    metric = registry.snapshot().get(name)
    if metric is None:
        return 0.0
    return float(
        sum(entry["value"] for entry in metric["series"])
    )


def _reference_estimates(graph, seed_sets, *, seed=42, sims=48):
    """Fault-free single-worker reference (shielded from env plans)."""
    with fault_plan(FaultPlan()):
        with ParallelMonteCarloSpread(
            graph, GAMMA4, num_simulations=sims, seed=seed, workers=1
        ) as estimator:
            return [
                estimator.estimate_with_error(s) for s in seed_sets
            ]


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.1, multiplier=2.0,
            max_delay=0.3, jitter=0.5, seed=7,
        )
        again = RetryPolicy(
            max_attempts=3, base_delay=0.1, multiplier=2.0,
            max_delay=0.3, jitter=0.5, seed=7,
        )
        for attempt in range(4):
            wait = policy.delay(attempt)
            assert wait == again.delay(attempt)
            backoff = min(0.3, 0.1 * 2.0**attempt)
            assert backoff <= wait <= backoff * 1.5

    def test_zero_jitter_is_pure_backoff(self):
        policy = RetryPolicy(base_delay=0.2, multiplier=2.0, jitter=0.0)
        assert policy.delay(0) == 0.2
        assert policy.delay(1) == 0.4

    def test_call_retries_transient_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=2,
            base_delay=0.01,
            retryable=(OSError,),
            sleep=sleeps.append,
        )
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3
        assert len(sleeps) == 2

    def test_call_exhausts_budget_and_reraises(self):
        policy = RetryPolicy(
            max_attempts=1, base_delay=0.0, retryable=(OSError,),
            sleep=lambda _: None,
        )
        calls = []

        def always_fails():
            calls.append(1)
            raise OSError("still broken")

        with pytest.raises(OSError):
            policy.call(always_fails)
        assert len(calls) == 2  # initial try + one retry

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5, retryable=(OSError,))
        calls = []

        def fails():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            policy.call(fails)
        assert len(calls) == 1

    def test_is_retryable_classification(self):
        policy = RetryPolicy(retryable=(OSError, TimeoutError))
        assert policy.is_retryable(OSError())
        assert policy.is_retryable(TimeoutError())
        assert not policy.is_retryable(ValueError())

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_expires_on_fake_clock(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert not deadline.expired()
        assert deadline.remaining() == 5.0
        now[0] = 4.0
        assert deadline.remaining() == pytest.approx(1.0)
        now[0] = 5.0
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_unlimited_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        deadline.check("anything")  # never raises

    def test_check_raises_deadline_exceeded(self):
        deadline = Deadline(0.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("the query")
        assert "the query" in str(excinfo.value)
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, TimeoutError)

    def test_from_ms_and_resolve(self):
        assert Deadline.from_ms(None).seconds is None
        assert Deadline.from_ms(2500.0).seconds == 2.5
        assert resolve_deadline(None) is None
        existing = Deadline(1.0)
        assert resolve_deadline(existing) is existing
        assert resolve_deadline(500).seconds == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)
        with pytest.raises(ValueError):
            Deadline(float("nan"))


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_targeted_spec_fires_exactly_once(self):
        plan = FaultPlan(
            [FaultSpec(site="chunk", mode="crash", match={"call": 3})]
        )
        assert plan.fire("chunk", call=2, chunk=0) is None
        fired = plan.fire("chunk", call=3, chunk=0)
        assert fired is not None and fired.mode == "crash"
        # The once-by-default budget is spent.
        assert plan.fire("chunk", call=3, chunk=0) is None

    def test_rate_decisions_are_order_independent(self):
        coords = [{"call": c, "chunk": k} for c in range(20) for k in range(4)]

        def decisions(order):
            plan = FaultPlan(
                [FaultSpec(site="chunk", mode="error", rate=0.3, times=None)],
                seed=11,
            )
            return {
                tuple(sorted(c.items())): plan.fire("chunk", **c) is not None
                for c in order
            }

        forward = decisions(coords)
        backward = decisions(list(reversed(coords)))
        assert forward == backward
        assert any(forward.values()) and not all(forward.values())

    def test_parse_grammar_roundtrip(self):
        plan = parse_fault_plan(
            "chunk:mode=crash:call=3:chunk=1;"
            "checkpoint:mode=truncate:item=2:keep=20;"
            "chunk:mode=error:rate=0.02:seed=9"
        )
        assert len(plan.specs) == 3
        crash, truncate, rate = plan.specs
        assert crash.match == {"call": 3, "chunk": 1} and crash.times == 1
        assert truncate.keep == 20
        assert rate.rate == 0.02 and rate.times is None
        assert plan.seed == 9

    def test_parse_rejects_malformed_specs(self):
        with pytest.raises(ValueError):
            parse_fault_plan("chunk:crash")  # missing mode=
        with pytest.raises(ValueError):
            parse_fault_plan("nowhere:mode=crash")
        with pytest.raises(ValueError):
            parse_fault_plan("chunk:mode=bitflip")  # wrong site for mode
        with pytest.raises(ValueError):
            parse_fault_plan("chunk:mode=crash:call=x")

    def test_env_plan_and_context_manager(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "chunk:mode=error:rate=1.0")
        try:
            plan = get_fault_plan()
            assert plan is not None and plan.specs[0].mode == "error"
            with fault_plan(FaultPlan()) as shielded:
                assert get_fault_plan() is shielded
                assert shielded.fire("chunk", call=0, chunk=0) is None
            assert get_fault_plan() is plan
            explicit = FaultPlan([FaultSpec(site="chunk", mode="crash")])
            set_fault_plan(explicit)
            assert get_fault_plan() is explicit
        finally:
            set_fault_plan(None)

    def test_injected_fault_error_is_not_a_repro_error(self):
        assert not issubclass(InjectedFaultError, ReproError)


# ----------------------------------------------------------------------
# Pool crash recovery (the tentpole's acceptance scenario)
# ----------------------------------------------------------------------
class TestPoolCrashRecovery:
    def test_worker_crash_yields_bit_identical_spreads(
        self, small_graph, observability
    ):
        seed_sets = ([0, 5, 9], [1], [2, 3, 4])
        reference = _reference_estimates(small_graph, seed_sets)
        plan = FaultPlan(
            [FaultSpec(site="chunk", mode="crash", match={"call": 0, "chunk": 1})]
        )
        with ParallelMonteCarloSpread(
            small_graph,
            GAMMA4,
            num_simulations=48,
            seed=42,
            workers=2,
            fault_plan=plan,
        ) as estimator:
            recovered = [
                estimator.estimate_with_error(s) for s in seed_sets
            ]
        assert [e.mean for e in recovered] == [e.mean for e in reference]
        assert [e.std for e in recovered] == [e.std for e in reference]
        assert plan.specs[0].fired == 1
        assert _counter(
            observability, "repro_resilience_pool_rebuilds_total"
        ) >= 1
        assert _counter(
            observability, "repro_resilience_chunk_retries_total"
        ) >= 1
        assert _counter(
            observability, "repro_resilience_faults_injected_total"
        ) >= 1

    def test_worker_error_retries_on_same_pool(self, small_graph):
        plan = FaultPlan(
            [FaultSpec(site="chunk", mode="error", match={"call": 0, "chunk": 0})]
        )
        reference = _reference_estimates(small_graph, ([0, 1],))
        with ParallelMonteCarloSpread(
            small_graph,
            GAMMA4,
            num_simulations=48,
            seed=42,
            workers=2,
            fault_plan=plan,
        ) as estimator:
            recovered = estimator.estimate_with_error([0, 1])
        assert recovered.mean == reference[0].mean
        assert plan.specs[0].fired == 1

    @pytest.mark.parametrize("mode", ["crash", "error"])
    def test_rr_sampler_recovers_bit_identically(self, small_graph, mode):
        """Chunk faults on the RR sampling pool fall back inline.

        The campaign planner's value oracle rides this path, so chaos
        runs with ``chunk`` faults must leave RR streams — and hence
        allocations — bit-identical to a healthy run.
        """
        from repro.im.imm import RRSampler

        with RRSampler(small_graph, workers=2) as sampler:
            clean = sampler.sample(GAMMA4, 1200, seed=9, request=2)
        plan = FaultPlan([FaultSpec(site="chunk", mode=mode, times=2)])
        with fault_plan(plan):
            with RRSampler(small_graph, workers=2) as sampler:
                recovered = sampler.sample(GAMMA4, 1200, seed=9, request=2)
        assert plan.specs[0].fired >= 1
        assert all(
            np.array_equal(a, b) for a, b in zip(clean, recovered)
        )

    def test_persistent_crashes_degrade_to_sequential(
        self, small_graph, observability
    ):
        # chunk 0 crashes on *every* attempt: the retry budget runs out
        # and the dispatcher must fall back inline — still bit-identical.
        plan = FaultPlan(
            [FaultSpec(site="chunk", mode="crash", match={"chunk": 0}, times=None)]
        )
        reference = _reference_estimates(small_graph, ([0, 5],))
        with ParallelMonteCarloSpread(
            small_graph,
            GAMMA4,
            num_simulations=48,
            seed=42,
            workers=2,
            fault_plan=plan,
            retry_policy=RetryPolicy(
                max_attempts=1, base_delay=0.0, jitter=0.0,
                retryable=(Exception,), sleep=lambda _: None,
            ),
        ) as estimator:
            degraded = estimator.estimate_with_error([0, 5])
        assert degraded.mean == reference[0].mean
        assert degraded.std == reference[0].std
        assert _counter(
            observability, "repro_resilience_sequential_fallbacks_total"
        ) >= 1

    def test_fallback_disabled_raises_pool_broken(self, small_graph):
        plan = FaultPlan(
            [FaultSpec(site="chunk", mode="crash", match={"chunk": 0}, times=None)]
        )
        with ParallelMonteCarloSpread(
            small_graph,
            GAMMA4,
            num_simulations=24,
            seed=0,
            workers=2,
            fault_plan=plan,
            allow_sequential_fallback=False,
            retry_policy=RetryPolicy(
                max_attempts=1, base_delay=0.0, jitter=0.0,
                retryable=(Exception,), sleep=lambda _: None,
            ),
        ) as estimator:
            with pytest.raises(PoolBrokenError) as excinfo:
                estimator.estimate([0])
        assert isinstance(excinfo.value, ReproError)

    def test_shutdown_after_crash_releases_all_payloads(self, small_graph):
        # Regression: shutdown_pools() used to leave shared-memory
        # payloads registered when a pool's workers had died mid-call.
        plan = FaultPlan(
            [FaultSpec(site="chunk", mode="crash", match={"call": 0, "chunk": 0})]
        )
        estimator = ParallelMonteCarloSpread(
            small_graph,
            GAMMA4,
            num_simulations=24,
            seed=3,
            workers=2,
            fault_plan=plan,
        )
        estimator.estimate([0, 1])
        assert active_payload_count() >= 1
        shutdown_pools()
        assert active_payload_count() == 0
        estimator.close()


# ----------------------------------------------------------------------
# Corruption-safe persistence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_saved_index(small_graph, tmp_path_factory):
    config = InflexConfig(
        num_index_points=4,
        num_dirichlet_samples=500,
        seed_list_length=4,
        ris_num_sets=300,
        seed=7,
    )
    items = np.random.default_rng(5).dirichlet(np.ones(4), size=12)
    index = InflexIndex.build(small_graph, items, config)
    path = tmp_path_factory.mktemp("artifacts") / "index.npz"
    save_index(index, path)
    return index, path


class TestPersistenceIntegrity:
    def test_round_trip_is_exact(self, small_graph, small_saved_index):
        index, path = small_saved_index
        loaded = load_index(path, small_graph)
        assert [s.nodes for s in loaded.seed_lists] == [
            s.nodes for s in index.seed_lists
        ]
        assert np.array_equal(loaded.index_points, index.index_points)

    def test_no_tmp_remnant_after_save(self, small_saved_index):
        _, path = small_saved_index
        assert not list(path.parent.glob("*.tmp-*"))

    def test_bit_flip_raises_corrupt_artifact(
        self, small_graph, small_saved_index, tmp_path
    ):
        # Flip one bit of the stored seed matrix but rebuild the archive
        # so the *zip-level* CRCs stay valid — only the embedded
        # integrity manifest can catch this class of corruption.
        import zipfile

        _, path = small_saved_index
        with zipfile.ZipFile(path) as archive:
            members = {
                name: archive.read(name) for name in archive.namelist()
            }
        raw = bytearray(members["seed_matrix.npy"])
        raw[-1] ^= 0x01
        members["seed_matrix.npy"] = bytes(raw)
        damaged = tmp_path / "damaged.npz"
        with zipfile.ZipFile(
            damaged, "w", zipfile.ZIP_DEFLATED
        ) as archive:
            for name, blob in members.items():
                archive.writestr(name, blob)
        with pytest.raises(CorruptArtifactError) as excinfo:
            load_index(damaged, small_graph)
        assert "checksum" in str(excinfo.value)

    def test_truncation_raises_corrupt_artifact(
        self, small_graph, small_saved_index, tmp_path
    ):
        _, path = small_saved_index
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(path.read_bytes()[:120])
        with pytest.raises(CorruptArtifactError) as excinfo:
            load_index(truncated, small_graph)
        assert "truncated.npz" in str(excinfo.value)

    def test_garbage_file_raises_corrupt_artifact(
        self, small_graph, tmp_path
    ):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CorruptArtifactError):
            load_index(garbage, small_graph)

    def test_interrupted_save_keeps_previous_artifact(
        self, small_graph, small_saved_index, tmp_path
    ):
        index, path = small_saved_index
        target = tmp_path / "index.npz"
        save_index(index, target)
        before = target.read_bytes()
        crash = FaultPlan([FaultSpec(site="save-index", mode="crash")])
        with pytest.raises(InjectedFaultError):
            save_index(index, target, fault_plan=crash)
        assert target.read_bytes() == before
        # The surviving artifact still loads cleanly.
        load_index(target, small_graph)

    def test_injected_bitflip_is_caught_by_checksums(
        self, small_graph, small_saved_index, observability
    ):
        _, path = small_saved_index
        flip = FaultPlan([FaultSpec(site="index-load", mode="bitflip")])
        with pytest.raises(CorruptArtifactError) as excinfo:
            load_index(path, small_graph, fault_plan=flip)
        assert "seed_matrix" in str(excinfo.value)
        assert _counter(
            observability, "repro_resilience_corrupt_artifacts_total"
        ) >= 1

    # -- durability: atomic means nothing without fsync -----------------
    def test_atomic_write_fsyncs_file_and_directory(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro.core.persistence import atomic_write_bytes

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        atomic_write_bytes(tmp_path / "artifact.bin", b"payload")
        # Once for the temporary file, once for the parent directory —
        # without the latter a power cut can roll the rename back.
        assert len(synced) >= 2
        assert (tmp_path / "artifact.bin").read_bytes() == b"payload"

    def test_save_index_fsyncs_before_and_after_the_rename(
        self, small_saved_index, tmp_path, monkeypatch
    ):
        import os

        index, _ = small_saved_index
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os,
            "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1],
        )
        save_index(index, tmp_path / "index.npz")
        assert "replace" in events
        rename_at = events.index("replace")
        # Data hits the platter before the rename publishes it, and the
        # directory entry is flushed after.
        assert "fsync" in events[:rename_at]
        assert "fsync" in events[rename_at + 1 :]

    def test_every_tmp_rename_write_path_fsyncs(self):
        # Contract over the whole tree: any module that stages a write
        # through a ``.tmp`` file and renames it into place must also
        # fsync (directly or via atomic_write_bytes/atomic_write_text).
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            text = path.read_text()
            if ".tmp" not in text or "os.replace(" not in text:
                continue
            if "fsync" not in text and "atomic_write" not in text:
                offenders.append(str(path.relative_to(src)))
        assert not offenders, (
            f"tmp+rename writers without fsync durability: {offenders}"
        )


# ----------------------------------------------------------------------
# Builder quarantine and state-file protection
# ----------------------------------------------------------------------
@pytest.fixture
def builder_setup(small_graph):
    config = InflexConfig(
        num_index_points=3,
        num_dirichlet_samples=400,
        seed_list_length=3,
        ris_num_sets=200,
        seed=7,
    )
    items = np.random.default_rng(5).dirichlet(np.ones(4), size=10)
    return config, items


class TestBuilderResilience:
    def test_corrupt_state_file_raises_with_remedy(
        self, small_graph, builder_setup, tmp_path
    ):
        config, items = builder_setup
        builder = ResumableBuilder(small_graph, items, config, tmp_path)
        builder.run()
        state = tmp_path / "builder_state.json"
        state.write_text(state.read_text()[:25])  # torn write
        fresh = ResumableBuilder(small_graph, items, config, tmp_path)
        with pytest.raises(CorruptArtifactError) as excinfo:
            fresh.run()
        message = str(excinfo.value)
        assert "builder_state.json" in message
        assert "restore" in message and "delete" in message

    def test_corrupt_checkpoint_is_quarantined_and_recomputed(
        self, small_graph, builder_setup, tmp_path, observability
    ):
        config, items = builder_setup
        reference = ResumableBuilder(
            small_graph, items, config, tmp_path
        ).run()
        checkpoint = tmp_path / "seeds_00001.json"
        payload = json.loads(checkpoint.read_text())
        payload["body"]["nodes"][0] = 999999  # silent corruption
        checkpoint.write_text(json.dumps(payload))  # stale CRC now
        rebuilt = ResumableBuilder(
            small_graph, items, config, tmp_path
        ).run()
        assert (tmp_path / "seeds_00001.json.corrupt").exists()
        assert [s.nodes for s in rebuilt.seed_lists] == [
            s.nodes for s in reference.seed_lists
        ]
        assert _counter(
            observability,
            "repro_resilience_checkpoint_quarantines_total",
        ) >= 1

    def test_truncate_fault_hook_recovers_bit_identically(
        self, small_graph, builder_setup, tmp_path
    ):
        config, items = builder_setup
        reference = ResumableBuilder(
            small_graph, items, config, tmp_path / "clean"
        ).run()
        plan = FaultPlan(
            [FaultSpec(site="checkpoint", mode="truncate", match={"item": 1})]
        )
        chaotic = ResumableBuilder(
            small_graph, items, config, tmp_path / "chaos", fault_plan=plan
        ).run()
        assert (tmp_path / "chaos" / "seeds_00001.json.corrupt").exists()
        assert [s.nodes for s in chaotic.seed_lists] == [
            s.nodes for s in reference.seed_lists
        ]

    def test_legacy_unchecksummed_checkpoint_still_resumes(
        self, small_graph, builder_setup, tmp_path
    ):
        config, items = builder_setup
        reference = ResumableBuilder(
            small_graph, items, config, tmp_path
        ).run()
        checkpoint = tmp_path / "seeds_00000.json"
        body = json.loads(checkpoint.read_text())["body"]
        checkpoint.write_text(json.dumps(body))  # strip the envelope
        resumed = ResumableBuilder(
            small_graph, items, config, tmp_path
        ).run()
        assert [s.nodes for s in resumed.seed_lists] == [
            s.nodes for s in reference.seed_lists
        ]


# ----------------------------------------------------------------------
# Deadlines on the query and spread paths
# ----------------------------------------------------------------------
class TestDeadlineDegradation:
    def test_expired_query_returns_degraded_answer(self, small_index):
        gamma = np.full(4, 0.25)
        normal = small_index.query(gamma, 5)
        assert not normal.degraded
        degraded = small_index.query(gamma, 5, deadline_ms=1e-9)
        assert degraded.degraded
        assert degraded.seeds.algorithm.endswith(":degraded")
        assert len(tuple(degraded.seeds)) == len(tuple(normal.seeds))
        assert degraded.num_neighbors_used == 1

    def test_expired_query_is_prompt_not_hung(self, small_index):
        gamma = np.full(4, 0.25)
        start = time.perf_counter()
        answer = small_index.query(gamma, 5, deadline_ms=1e-9)
        elapsed = time.perf_counter() - start
        assert answer.degraded
        assert elapsed < 5.0  # bounded work, never hangs

    def test_batch_shares_one_deadline_and_never_comes_back_short(
        self, small_index
    ):
        rows = np.random.default_rng(0).dirichlet(np.ones(4), size=6)
        answers = small_index.query_batch(rows, 5, deadline_ms=1e-9)
        assert len(answers) == 6
        assert all(a.degraded for a in answers)
        assert all(len(tuple(a.seeds)) > 0 for a in answers)

    def test_config_default_deadline_applies(self, small_index):
        config = InflexConfig(
            num_index_points=small_index.config.num_index_points,
            seed_list_length=small_index.config.seed_list_length,
            deadline_ms=1e-9,
            seed=small_index.config.seed,
        )
        bounded = InflexIndex(
            small_index.graph,
            small_index.index_points,
            small_index.seed_lists,
            config,
        )
        assert bounded.query(np.full(4, 0.25), 5).degraded
        # An explicit argument overrides the config default.
        assert not bounded.query(
            np.full(4, 0.25), 5, deadline_ms=60000
        ).degraded

    def test_sequential_spread_returns_partial_on_deadline(
        self, small_graph
    ):
        estimate = estimate_spread_sequential(
            small_graph,
            GAMMA4,
            [0, 1],
            relative_halfwidth=0.0001,  # unreachable precision
            batch_size=50,
            max_simulations=10**6,
            seed=0,
            deadline=0.2,
        )
        assert estimate.degraded
        assert estimate.num_simulations >= 50  # at least one batch ran
        assert estimate.mean > 0

    def test_no_deadline_never_degrades(self, small_graph):
        estimate = estimate_spread_sequential(
            small_graph, GAMMA4, [0], seed=0
        )
        assert not estimate.degraded
