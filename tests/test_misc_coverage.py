"""Small-surface coverage: dataclass properties, reprs, and edge paths
not exercised elsewhere."""

import numpy as np
import pytest

from repro.core import CachedIndex, compare_positionings
from repro.core.query import QueryTiming
from repro.bbtree.projection import ProjectionResult
from repro.propagation import SpreadEstimate
from repro.rng import spawn_rngs
from repro.stats import BootstrapInterval


class TestQueryTiming:
    def test_total_sums_phases(self):
        timing = QueryTiming(search=0.1, selection=0.02, aggregation=0.03)
        assert timing.total == pytest.approx(0.15)

    def test_defaults_zero(self):
        assert QueryTiming().total == 0.0


class TestSpreadEstimate:
    def test_standard_error(self):
        estimate = SpreadEstimate(mean=10.0, std=2.0, num_simulations=4)
        assert estimate.standard_error == pytest.approx(1.0)

    def test_single_simulation_infinite_error(self):
        estimate = SpreadEstimate(mean=10.0, std=0.0, num_simulations=1)
        assert estimate.standard_error == float("inf")


class TestProjectionResult:
    def test_fields(self):
        result = ProjectionResult(
            min_divergence=0.5, iterations=10, inside=False
        )
        assert result.min_divergence == 0.5
        assert not result.inside


class TestBootstrapInterval:
    def test_contains_and_width(self):
        interval = BootstrapInterval(
            estimate=1.0, lower=0.8, upper=1.3, confidence=0.95
        )
        assert 1.0 in interval
        assert 0.5 not in interval
        assert interval.width == pytest.approx(0.5)


class TestSpawnRngsSeedSequence:
    def test_seed_sequence_input(self):
        seq = np.random.SeedSequence(42)
        children = spawn_rngs(seq, 2)
        assert len(children) == 2
        a = children[0].random(3)
        children2 = spawn_rngs(np.random.SeedSequence(42), 2)
        assert np.allclose(a, children2[0].random(3))


class TestCachedIndexEmpty:
    def test_hit_rate_before_any_query(self, small_index):
        cached = CachedIndex(small_index)
        assert cached.hit_rate == 0.0
        assert len(cached) == 0


class TestWhatIfOverlapEdge:
    def test_overlap_of_identical_candidates(self, small_index, small_dataset):
        gamma = small_dataset.item_topics[0]
        report = compare_positionings(
            small_index,
            {"a": gamma, "b": gamma},
            3,
            num_simulations=10,
            seed=1,
        )
        assert report.seed_overlap("a", "b") == pytest.approx(1.0)


class TestReprs:
    def test_core_reprs_are_informative(self, small_index, small_graph):
        assert "InflexIndex" in repr(small_index)
        assert "TopicGraph" in repr(small_graph)
        assert "BBTree" in repr(small_index.tree)
        seed_list = small_index.seed_lists[0]
        assert "SeedList" in repr(seed_list)
