"""Slow end-to-end check of IMM's approximation guarantee.

IMM promises ``sigma(S_imm) >= (1 - 1/e - eps) * OPT`` with probability
``1 - delta``.  OPT is unobservable, but the CELF++ greedy over a
Monte-Carlo oracle is itself at most OPT, so the checkable implication
is ``sigma(S_imm) >= (1 - 1/e - eps) * sigma(S_celf)`` — the ROADMAP's
differential acceptance criterion.  Both spreads are measured with the
same fresh-randomness Monte-Carlo estimator (independent of both
engines' training randomness) so the comparison is apples-to-apples.

These run minutes, not seconds, so they are ``slow``-marked and
excluded from the default tier-1 run (``addopts = -q -m 'not slow'``);
CI runs them in a dedicated job with ``-m slow``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.offline import offline_seed_list
from repro.propagation import estimate_spread

pytestmark = pytest.mark.slow

#: Monte-Carlo evaluation budget for the held-out spread measurement.
EVAL_SIMULATIONS = 1500

#: Noise allowance on the ratio: with 1500 simulations the relative
#: standard error of each spread is ~2-3%, so 5% covers >3 sigma of the
#: measurement noise without weakening the guarantee being checked.
NOISE_MARGIN = 0.05


def _measured_spread(graph, gamma, nodes) -> float:
    return estimate_spread(
        graph,
        gamma,
        list(nodes),
        num_simulations=EVAL_SIMULATIONS,
        seed=987654321,
    ).mean


@pytest.mark.parametrize(
    "gamma", [(0.7, 0.3), (0.25, 0.75)], ids=["topic0", "topic1"]
)
def test_imm_matches_celfpp_on_tiny_graph(tiny_graph, gamma):
    epsilon = 0.3
    gamma = np.asarray(gamma)
    imm = offline_seed_list(
        tiny_graph, gamma, 2, engine="imm", imm_epsilon=epsilon, seed=5
    )
    celf = offline_seed_list(
        tiny_graph, gamma, 2, engine="celf++-mc",
        num_simulations=400, seed=5,
    )
    imm_spread = _measured_spread(tiny_graph, gamma, imm.nodes)
    celf_spread = _measured_spread(tiny_graph, gamma, celf.nodes)
    floor = (1.0 - 1.0 / np.e - epsilon) * celf_spread
    assert imm_spread >= floor * (1.0 - NOISE_MARGIN), (
        f"IMM spread {imm_spread:.2f} below guarantee floor "
        f"{floor:.2f} (CELF++ spread {celf_spread:.2f})"
    )


@pytest.mark.parametrize("k", [5, 10])
def test_imm_matches_celfpp_on_small_graph(small_graph, k):
    epsilon = 0.2
    gamma = np.array([0.4, 0.3, 0.2, 0.1])
    imm = offline_seed_list(
        small_graph, gamma, k, engine="imm", imm_epsilon=epsilon, seed=9
    )
    celf = offline_seed_list(
        small_graph, gamma, k, engine="celf++-mc",
        num_simulations=300, seed=9,
    )
    imm_spread = _measured_spread(small_graph, gamma, imm.nodes)
    celf_spread = _measured_spread(small_graph, gamma, celf.nodes)
    floor = (1.0 - 1.0 / np.e - epsilon) * celf_spread
    assert imm_spread >= floor * (1.0 - NOISE_MARGIN), (
        f"k={k}: IMM spread {imm_spread:.2f} below guarantee floor "
        f"{floor:.2f} (CELF++ spread {celf_spread:.2f})"
    )
    # In practice the two greedy engines land much closer than the
    # worst-case bound: IMM should be within a few percent of CELF++.
    assert imm_spread >= 0.9 * celf_spread


def test_imm_on_dataset_graph(small_dataset):
    """The guarantee holds on the Flixster-like fixture too."""
    epsilon = 0.25
    graph = small_dataset.graph
    gamma = small_dataset.item_topics[0]
    imm = offline_seed_list(
        graph, gamma, 8, engine="imm", imm_epsilon=epsilon, seed=17
    )
    celf = offline_seed_list(
        graph, gamma, 8, engine="celf++-mc",
        num_simulations=250, seed=17,
    )
    imm_spread = _measured_spread(graph, gamma, imm.nodes)
    celf_spread = _measured_spread(graph, gamma, celf.nodes)
    floor = (1.0 - 1.0 / np.e - epsilon) * celf_spread
    assert imm_spread >= floor * (1.0 - NOISE_MARGIN)
