"""Tests for the AD-alpha ablation."""

import pytest

from repro.experiments import ablations, get_context


@pytest.fixture(scope="module")
def result():
    return ablations.run_ad_alpha(
        get_context("test"), alphas=(0.05, 0.4, 0.8), num_queries=12
    )


class TestADAlphaAblation:
    def test_leaves_monotone_in_alpha(self, result):
        leaves = [result.mean_leaves[a] for a in result.alphas]
        assert all(a <= b + 1e-9 for a, b in zip(leaves, leaves[1:]))

    def test_computations_track_leaves(self, result):
        comps = [result.mean_computations[a] for a in result.alphas]
        assert all(a <= b + 1e-9 for a, b in zip(comps, comps[1:]))

    def test_recall_bounds(self, result):
        for value in result.recall_at_10.values():
            assert 0.0 <= value <= 1.0

    def test_render(self, result):
        assert "ad_alpha" in result.render()
