"""Tests for the terminal scatter renderer and figure plot hooks."""

import numpy as np
import pytest

from repro.experiments import (
    fig3_index_selection,
    fig4_distance_correlation,
    fig9_tradeoff,
    get_context,
)
from repro.experiments.ascii_plot import ascii_scatter


class TestAsciiScatter:
    def test_basic_render(self):
        rng = np.random.default_rng(1)
        text = ascii_scatter(
            rng.random(200), rng.random(200), title="cloud"
        )
        assert "cloud" in text
        assert "^" in text and ">" in text
        # Density characters appear.
        assert any(ch in text for ch in ".:+*#")

    def test_markers_drawn(self):
        text = ascii_scatter(
            [0.0, 1.0],
            [0.0, 1.0],
            markers={"best": ([0.5], [0.5])},
        )
        assert "B" in text
        assert "markers: B=best" in text

    def test_extreme_points_on_raster(self):
        text = ascii_scatter([0.0, 10.0], [0.0, 5.0], width=20, height=6)
        lines = [line for line in text.splitlines() if line.startswith("      |")]
        assert len(lines) == 6
        assert all(len(line) == 7 + 20 for line in lines)

    def test_constant_data(self):
        text = ascii_scatter([1.0, 1.0], [2.0, 2.0])
        assert text  # no division-by-zero on degenerate spans

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_scatter([], [])
        with pytest.raises(ValueError):
            ascii_scatter([1.0], [1.0], width=2)

    def test_markers_only(self):
        text = ascii_scatter(
            [], [], markers={"a": ([1.0], [2.0]), "b": ([3.0], [4.0])}
        )
        assert "A" in text and "B" in text


class TestFigurePlotHooks:
    @pytest.fixture(scope="class")
    def context(self):
        return get_context("test")

    def test_fig3_plot(self, context):
        result = fig3_index_selection.run(context, num_eval_samples=30)
        plot = result.render_plot()
        assert "ILR-1" in plot
        assert "X" in plot

    def test_fig4_plot(self, context):
        result = fig4_distance_correlation.run(context, num_pairs=100)
        plot = result.render_plot()
        assert "Pearson" in plot
        assert "KL divergence" in plot

    def test_fig9_plot(self, context):
        result = fig9_tradeoff.run(context)
        plot = result.render_plot()
        assert "query time" in plot
        # Every method has a marker initial.
        assert "I" in plot  # INFLEX
