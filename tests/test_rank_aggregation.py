"""Tests for Borda, Copeland, MC4, Local Kemenization and weights."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ranking import (
    borda_aggregation,
    borda_scores,
    brute_force_kemeny,
    copeland_aggregation,
    copeland_scores,
    importance_weights,
    local_kemenization,
    mc4_aggregation,
    mean_kendall_tau_top,
    pairwise_preference_matrix,
    select_neighbors,
)

AGGREGATORS = [borda_aggregation, copeland_aggregation, mc4_aggregation]

ranking_lists = st.lists(
    st.permutations([0, 1, 2, 3]).map(list), min_size=1, max_size=5
)


@pytest.mark.parametrize("aggregate", AGGREGATORS)
class TestAggregatorContracts:
    def test_unanimous_input_preserved(self, aggregate):
        lists = [[3, 1, 2]] * 4
        assert aggregate(lists, 3) == [3, 1, 2]

    def test_output_is_subset_of_union(self, aggregate):
        lists = [[1, 2], [3, 4], [5, 1]]
        result = aggregate(lists, None)
        assert set(result) == {1, 2, 3, 4, 5}
        assert len(result) == len(set(result))

    def test_k_truncation(self, aggregate):
        lists = [[1, 2, 3], [2, 3, 1]]
        assert len(aggregate(lists, 2)) == 2

    def test_negative_k_rejected(self, aggregate):
        with pytest.raises(ValueError):
            aggregate([[1, 2]], -1)

    def test_empty_input_rejected(self, aggregate):
        with pytest.raises(ValueError):
            aggregate([], 3)

    def test_weight_shifts_outcome(self, aggregate):
        lists = [[1, 2, 3], [3, 2, 1]]
        toward_first = aggregate(lists, None, weights=[10.0, 0.1])
        toward_second = aggregate(lists, None, weights=[0.1, 10.0])
        assert toward_first[0] == 1
        assert toward_second[0] == 3

    @given(ranking_lists)
    @settings(max_examples=40)
    def test_property_permutation_of_lists_invariant(self, aggregate, lists):
        forward = aggregate(lists, None)
        backward = aggregate(list(reversed(lists)), None)
        assert forward == backward


class TestBordaSpecifics:
    def test_scores_formula(self):
        # Single list [a, b]: with ell=2 -> a: 2, b: 1.
        scores = borda_scores([[10, 20]])
        assert scores[10] == pytest.approx(2.0)
        assert scores[20] == pytest.approx(1.0)

    def test_absent_node_gets_nothing(self):
        scores = borda_scores([[1, 2], [3]])
        # node 3 appears once at rank 0 of a length-1 list with ell=2.
        assert scores[3] == pytest.approx(2.0)
        assert scores[1] == pytest.approx(2.0)

    def test_explicit_ell(self):
        scores = borda_scores([[5]], ell=10)
        assert scores[5] == pytest.approx(10.0)

    def test_bad_ell(self):
        with pytest.raises(ValueError):
            borda_scores([[1]], ell=0)

    def test_tie_breaks_to_lower_id(self):
        result = borda_aggregation([[2, 1], [1, 2]], None)
        assert result == [1, 2]


class TestCopelandSpecifics:
    def test_pairwise_matrix(self):
        matrix, universe = pairwise_preference_matrix([[1, 2], [2, 1]])
        assert universe == [1, 2]
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[1, 0] == pytest.approx(1.0)

    def test_majority_wins(self):
        lists = [[1, 2], [1, 2], [2, 1]]
        scores = copeland_scores(lists)
        assert scores[1] > scores[2]

    def test_present_beats_absent(self):
        lists = [[1], [1], [2]]
        scores = copeland_scores(lists)
        assert scores[1] > scores[2]

    def test_weighted_majority(self):
        lists = [[1, 2], [2, 1]]
        scores = copeland_scores(lists, weights=[1.0, 3.0])
        assert scores[2] > scores[1]


class TestLocalKemenization:
    def test_never_worsens_objective(self):
        rng = np.random.default_rng(1)
        for _ in range(15):
            lists = [
                rng.permutation(6).tolist() for _ in range(4)
            ]
            initial = rng.permutation(6).tolist()
            refined = local_kemenization(initial, lists)
            assert sorted(refined) == sorted(initial)
            before = mean_kendall_tau_top(initial, lists)
            after = mean_kendall_tau_top(refined, lists)
            assert after <= before + 1e-12

    def test_locally_optimal(self):
        rng = np.random.default_rng(2)
        lists = [rng.permutation(5).tolist() for _ in range(3)]
        refined = local_kemenization(list(range(5)), lists)
        base = mean_kendall_tau_top(refined, lists)
        for i in range(4):
            swapped = list(refined)
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
            assert mean_kendall_tau_top(swapped, lists) >= base - 1e-12

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            local_kemenization([1, 1], [[1, 2]])

    def test_unanimous_preference_respected(self):
        refined = local_kemenization([2, 1], [[1, 2], [1, 2]])
        assert refined == [1, 2]


class TestBruteForceKemeny:
    def test_matches_unanimity(self):
        assert brute_force_kemeny([[1, 2, 3]] * 3) == [1, 2, 3]

    def test_optimal_on_small_instance(self):
        lists = [[1, 2, 3], [2, 1, 3], [1, 3, 2]]
        best = brute_force_kemeny(lists)
        best_value = mean_kendall_tau_top(best, lists)
        # Borda + LK should reach (or tie) the optimum on easy cases.
        approx = local_kemenization(
            borda_aggregation(lists, None), lists
        )
        assert mean_kendall_tau_top(approx, lists) <= best_value + 1e-9

    def test_size_guard(self):
        big = [list(range(12))]
        with pytest.raises(ValueError):
            brute_force_kemeny(big)

    def test_aggregators_close_to_optimum(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            lists = [rng.permutation(5).tolist() for _ in range(3)]
            optimum = mean_kendall_tau_top(
                brute_force_kemeny(lists), lists
            )
            for aggregate in AGGREGATORS:
                candidate = local_kemenization(
                    aggregate(lists, None), lists
                )
                value = mean_kendall_tau_top(candidate, lists)
                # Well within the known factor-5 Borda guarantee; in
                # practice these instances come out near-optimal.
                assert value <= 5 * optimum + 1e-9


class TestImportanceWeights:
    def test_range_and_endpoints(self):
        weights = importance_weights([0.0, 1e9], 5, kl_max=2.0)
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.0)

    def test_monotone_decreasing(self):
        divs = np.linspace(0, 3, 20)
        weights = importance_weights(divs, 5)
        assert np.all(np.diff(weights) <= 1e-12)

    def test_negative_divergence_rejected(self):
        with pytest.raises(ValueError):
            importance_weights([-0.1], 5)

    def test_bad_kl_max_rejected(self):
        with pytest.raises(ValueError):
            importance_weights([0.1], 5, kl_max=0.0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50)
    def test_property_in_unit_interval(self, divs):
        weights = importance_weights(divs, 8)
        assert np.all(weights >= 0.0)
        assert np.all(weights <= 1.0)


class TestSelectNeighbors:
    def test_keeps_all_equal_weights(self):
        assert select_neighbors(np.full(6, 0.8)) == 6

    def test_prunes_weight_cliff(self):
        weights = np.array([0.9, 0.9, 0.9, 0.01])
        assert select_neighbors(weights) == 3

    def test_min_neighbors(self):
        weights = np.array([0.9, 0.001, 0.0005])
        assert select_neighbors(weights, min_neighbors=2) >= 2

    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            select_neighbors(np.array([0.1, 0.9]))

    def test_requires_positive_threshold(self):
        with pytest.raises(ValueError):
            select_neighbors(np.array([0.5]), threshold=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_neighbors(np.array([]))

    def test_all_zero_weights_keep_all(self):
        assert select_neighbors(np.zeros(4)) == 4
