"""Tests for the significance and workload-split experiments and the
DegreeDiscount heuristic."""

import numpy as np
import pytest

from repro.experiments import get_context, significance, workload_split
from repro.im import degree_discount_seeds, random_seeds
from repro.propagation import estimate_spread


@pytest.fixture(scope="module")
def context():
    return get_context("test")


class TestSignificance:
    def test_structure(self, context):
        result = significance.run(context)
        assert ("inflex", "approx-knn") in result.strategy_tests
        assert ("copeland_w", "copeland") in result.aggregation_tests
        for test in result.strategy_tests.values():
            assert 0.0 <= test.p_value <= 1.0
        assert "t-tests" in result.render()

    def test_inflex_vs_approx_ad_direction(self, context):
        result = significance.run(context)
        test = result.strategy_tests[("inflex", "approx-ad")]
        # INFLEX should not be significantly WORSE than approxAD.
        if test.significant():
            assert test.mean_difference < 0


class TestWorkloadSplit:
    def test_both_kinds_present(self, context):
        result = workload_split.run(context)
        assert set(result.mean_distance) == {"data-driven", "uniform"}
        assert "robustness" in result.render()

    def test_robust_across_kinds(self, context):
        result = workload_split.run(context)
        # The paper's robustness claim: accuracy holds up on the
        # uniform stress half, not just the data-driven half.  (Note
        # the right-sided KL makes *sparse* data-driven queries the
        # retrieval-hard case: any index point with mass outside the
        # query's support diverges strongly, while mixed uniform
        # queries are close to everything.)
        dd = result.mean_distance["data-driven"]
        uniform = result.mean_distance["uniform"]
        assert dd < 0.6 and uniform < 0.6
        assert max(dd, uniform) <= 2.5 * max(min(dd, uniform), 1e-6)
        for value in result.mean_nn_divergence.values():
            assert np.isfinite(value)


class TestDegreeDiscount:
    def test_returns_k_distinct(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        result = degree_discount_seeds(small_graph, gamma, 8)
        assert len(result) == 8
        assert len(set(result.nodes)) == 8

    def test_beats_random(self, small_graph):
        gamma = np.zeros(small_graph.num_topics)
        gamma[0] = 1.0
        dd = degree_discount_seeds(small_graph, gamma, 5)
        rnd = random_seeds(small_graph.num_nodes, 5, seed=3)
        s_dd = estimate_spread(
            small_graph, gamma, dd.nodes, num_simulations=400, seed=4
        ).mean
        s_rnd = estimate_spread(
            small_graph, gamma, rnd.nodes, num_simulations=400, seed=4
        ).mean
        assert s_dd > s_rnd

    def test_topic_sensitivity(self, small_graph):
        gamma_a = np.zeros(small_graph.num_topics)
        gamma_a[0] = 1.0
        gamma_b = np.zeros(small_graph.num_topics)
        gamma_b[1] = 1.0
        a = degree_discount_seeds(small_graph, gamma_a, 10)
        b = degree_discount_seeds(small_graph, gamma_b, 10)
        assert a.nodes != b.nodes

    def test_k_validation(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        with pytest.raises(ValueError):
            degree_discount_seeds(small_graph, gamma, -1)
        with pytest.raises(ValueError):
            degree_discount_seeds(
                small_graph, gamma, small_graph.num_nodes + 1
            )

    def test_k_zero(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        assert len(degree_discount_seeds(small_graph, gamma, 0)) == 0
