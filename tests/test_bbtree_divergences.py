"""bb-tree searches under non-KL Bregman divergences.

The tree is written against the BregmanDivergence interface; these
tests exercise the full search stack under squared Euclidean and
Itakura--Saito geometry to keep that genericity honest.
"""

import numpy as np
import pytest

from repro.bbtree import (
    BBTree,
    exact_nearest_neighbors,
    inflex_search,
    leaf_limited_search,
    range_search,
)
from repro.divergence import ItakuraSaito, SquaredEuclidean


@pytest.fixture(scope="module", params=["sqeuclidean", "itakura-saito"])
def tree_points(request):
    rng = np.random.default_rng(31)
    points = rng.uniform(0.1, 2.0, size=(220, 4))
    divergence = (
        SquaredEuclidean()
        if request.param == "sqeuclidean"
        else ItakuraSaito()
    )
    tree = BBTree(points, divergence=divergence, seed=32, leaf_size=12)
    return tree, points, divergence


class TestGenericDivergenceSearch:
    def test_exact_matches_brute_force(self, tree_points):
        tree, points, divergence = tree_points
        rng = np.random.default_rng(33)
        for _ in range(5):
            query = rng.uniform(0.2, 1.8, 4)
            result = exact_nearest_neighbors(tree, query, 5)
            brute = np.argsort(
                divergence.divergence_to_point(points, query)
            )[:5]
            assert set(result.indices.tolist()) == set(brute.tolist())

    def test_leaf_limited_subset_of_points(self, tree_points):
        tree, points, _ = tree_points
        query = np.full(4, 1.0)
        result = leaf_limited_search(tree, query, 5, max_leaves=2)
        assert len(result) == 5
        assert all(0 <= i < points.shape[0] for i in result.indices)

    def test_inflex_search_runs(self, tree_points):
        tree, points, _ = tree_points
        result = inflex_search(tree, points[13])
        assert result.stats.epsilon_match
        assert result.indices.tolist() == [13]

    def test_range_search_matches_brute_force(self, tree_points):
        tree, points, divergence = tree_points
        query = np.full(4, 1.0)
        radius = 0.4
        result = range_search(tree, query, radius)
        divs = divergence.divergence_to_point(points, query)
        expected = set(np.flatnonzero(divs <= radius).tolist())
        assert set(result.indices.tolist()) == expected
