"""Property-based tests for incremental RR-sketch maintenance.

Hypothesis draws scalars (graph shape, RNG seeds, stream shape); each
drawn tuple seeds numpy generators, so every example is a fully
deterministic graph + delta-stream instance.  The properties are the
differential contracts :mod:`repro.streaming` promises:

* **incremental == rebuild** — after replaying any valid delta
  sequence, every RR set and every seed list of the incremental
  maintainer is bit-identical to a maintainer built from scratch on
  the final graph with the same RNG streams,
* **add then remove is a no-op** — a batch pair that adds an arc and
  then removes it leaves the sketches exactly where they started,
* **time-decay is monotone** — decayed arc probabilities never exceed
  their pre-decay values, and decay factors compose multiplicatively.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import TopicGraph
from repro.simplex.sampling import sample_uniform_simplex
from repro.streaming import (
    DeltaBatch,
    EdgeDelta,
    EdgeState,
    IncrementalSketchMaintainer,
)

SETTINGS = settings(max_examples=20, deadline=None)


def _random_graph(
    num_nodes: int, num_arcs: int, num_topics: int, seed: int
) -> TopicGraph:
    """A deterministic random simple topic graph."""
    rng = np.random.default_rng(seed)
    tails = rng.integers(0, num_nodes, size=num_arcs)
    heads = rng.integers(0, num_nodes, size=num_arcs)
    keep = tails != heads
    pairs = np.unique(np.stack([tails[keep], heads[keep]], axis=1), axis=0)
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    probs = rng.uniform(0.05, 0.6, size=(pairs.shape[0], num_topics))
    return TopicGraph.from_arcs(num_nodes, pairs, probs)


def _index_points(num_points: int, num_topics: int, seed: int) -> np.ndarray:
    return sample_uniform_simplex(num_points, num_topics, seed=seed)


def _random_stream(graph, num_batches, batch_size, seed):
    """A valid delta stream over ``graph`` (mirrors the generator but
    kept local so the property does not depend on the code under
    test's own workload helper)."""
    rng = np.random.default_rng(seed)
    state = EdgeState.from_graph(graph)
    n = graph.num_nodes
    batches = []
    for batch_id in range(num_batches):
        deltas = []
        touched: set[tuple[int, int]] = set()
        for _ in range(batch_size):
            existing = [a for a in state.edges if a not in touched]
            roll = rng.random()
            if roll < 0.4 or not existing:
                arc = None
                for _attempt in range(64):
                    tail = int(rng.integers(n))
                    head = int(rng.integers(n))
                    if (
                        tail != head
                        and (tail, head) not in state.edges
                        and (tail, head) not in touched
                    ):
                        arc = (tail, head)
                        break
                if arc is None:
                    continue
                op = "add"
            else:
                arc = existing[int(rng.integers(len(existing)))]
                op = "remove" if roll < 0.7 else "reweight"
            touched.add(arc)
            if op == "remove":
                delta = EdgeDelta("remove", arc[0], arc[1])
            else:
                probs = tuple(
                    float(p)
                    for p in rng.uniform(0.05, 0.6, size=graph.num_topics)
                )
                delta = EdgeDelta(op, arc[0], arc[1], probs)
            state.apply_delta(delta)
            deltas.append(delta)
        if deltas:
            batches.append(
                DeltaBatch(deltas=tuple(deltas), timestamp=float(batch_id))
            )
    return batches


@given(
    graph_seed=st.integers(0, 2**20),
    stream_seed=st.integers(0, 2**20),
    rng_seed=st.integers(0, 2**20),
    num_nodes=st.integers(20, 60),
    num_batches=st.integers(1, 4),
)
@SETTINGS
def test_incremental_equals_full_rebuild(
    graph_seed, stream_seed, rng_seed, num_nodes, num_batches
):
    """The differential guarantee: replaying any valid delta stream
    leaves the maintainer bit-identical to a from-scratch build on the
    final graph at the same RNG streams."""
    graph = _random_graph(num_nodes, num_nodes * 3, 3, graph_seed)
    points = _index_points(3, 3, graph_seed + 1)
    incremental = IncrementalSketchMaintainer(
        graph, points, num_sets=60, seed_list_length=4, seed=rng_seed
    )
    batches = _random_stream(graph, num_batches, 4, stream_seed)
    for batch in batches:
        incremental.apply_batch(batch)
    fresh = IncrementalSketchMaintainer(
        incremental.graph,
        points,
        num_sets=60,
        seed_list_length=4,
        seed=rng_seed,
    )
    for inc_coll, ref_coll in zip(
        incremental.rr_collections, fresh.rr_collections
    ):
        assert inc_coll.num_sets == ref_coll.num_sets
        for inc_set, ref_set in zip(inc_coll.sets, ref_coll.sets):
            assert np.array_equal(inc_set, ref_set)
    for inc_list, ref_list in zip(incremental.seed_lists, fresh.seed_lists):
        assert inc_list.nodes == ref_list.nodes


@given(
    graph_seed=st.integers(0, 2**20),
    rng_seed=st.integers(0, 2**20),
    tail=st.integers(0, 39),
    head=st.integers(0, 39),
)
@SETTINGS
def test_add_then_remove_same_edge_is_noop(graph_seed, rng_seed, tail, head):
    """Adding an arc and removing it again restores every RR set and
    seed list exactly (the resample RNG streams are positional, not
    history-dependent)."""
    if tail == head:
        head = (head + 1) % 40
    graph = _random_graph(40, 120, 3, graph_seed)
    if (tail, head) in EdgeState.from_graph(graph).edges:
        return  # the drawn arc already exists; adding it would be invalid
    points = _index_points(2, 3, graph_seed + 1)
    maintainer = IncrementalSketchMaintainer(
        graph, points, num_sets=50, seed_list_length=4, seed=rng_seed
    )
    before_sets = [
        [rr.copy() for rr in coll.sets] for coll in maintainer.rr_collections
    ]
    before_seeds = [sl.nodes for sl in maintainer.seed_lists]
    maintainer.apply_batch(
        DeltaBatch(
            deltas=(EdgeDelta("add", tail, head, (0.3, 0.2, 0.1)),),
            timestamp=0.0,
        )
    )
    maintainer.apply_batch(
        DeltaBatch(
            deltas=(EdgeDelta("remove", tail, head),), timestamp=0.0
        )
    )
    for coll, before in zip(maintainer.rr_collections, before_sets):
        for rr, rr_before in zip(coll.sets, before):
            assert np.array_equal(rr, rr_before)
    assert [sl.nodes for sl in maintainer.seed_lists] == before_seeds


@given(
    graph_seed=st.integers(0, 2**20),
    decay_rate=st.floats(0.01, 2.0),
    dt1=st.floats(0.1, 5.0),
    dt2=st.floats(0.1, 5.0),
)
@SETTINGS
def test_time_decay_is_monotone_and_composes(
    graph_seed, decay_rate, dt1, dt2
):
    """Decay never increases an arc probability, and decaying by dt1
    then dt2 equals decaying by dt1 + dt2 (exp factors compose)."""
    graph = _random_graph(30, 90, 3, graph_seed)
    stepwise = EdgeState.from_graph(graph)
    original = {arc: probs.copy() for arc, probs in stepwise.edges.items()}
    stepwise.decay(math.exp(-decay_rate * dt1))
    for arc, probs in stepwise.edges.items():
        assert np.all(probs <= original[arc] + 1e-15)
    stepwise.decay(math.exp(-decay_rate * dt2))
    oneshot = EdgeState.from_graph(graph)
    oneshot.decay(math.exp(-decay_rate * (dt1 + dt2)))
    for arc in original:
        np.testing.assert_allclose(
            stepwise.edges[arc], oneshot.edges[arc], rtol=1e-12
        )
        assert np.all(stepwise.edges[arc] <= original[arc] + 1e-15)


@given(
    graph_seed=st.integers(0, 2**20),
    rng_seed=st.integers(0, 2**20),
    decay_rate=st.floats(0.05, 1.0),
)
@SETTINGS
def test_decayed_apply_matches_rebuild_on_decayed_graph(
    graph_seed, rng_seed, decay_rate
):
    """The differential guarantee holds through time-decay too: an
    empty batch at a later timestamp (pure decay) leaves the maintainer
    identical to a fresh build on the decayed graph."""
    graph = _random_graph(25, 75, 3, graph_seed)
    points = _index_points(2, 3, graph_seed + 1)
    maintainer = IncrementalSketchMaintainer(
        graph,
        points,
        num_sets=40,
        seed_list_length=3,
        seed=rng_seed,
        decay_rate=decay_rate,
    )
    stream = _random_stream(graph, 1, 3, graph_seed + 2)
    batch = DeltaBatch(
        deltas=stream[0].deltas if stream else (), timestamp=2.0
    )
    report = maintainer.apply_batch(batch)
    assert report.decayed
    fresh = IncrementalSketchMaintainer(
        maintainer.graph,
        points,
        num_sets=40,
        seed_list_length=3,
        seed=rng_seed,
    )
    for inc_coll, ref_coll in zip(
        maintainer.rr_collections, fresh.rr_collections
    ):
        for inc_set, ref_set in zip(inc_coll.sets, ref_coll.sets):
            assert np.array_equal(inc_set, ref_set)
    for inc_list, ref_list in zip(maintainer.seed_lists, fresh.seed_lists):
        assert inc_list.nodes == ref_list.nodes
