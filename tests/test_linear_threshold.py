"""Tests for the topic-aware Linear Threshold substrate."""

import numpy as np
import pytest

from repro.graph import TopicGraph
from repro.im import random_seeds
from repro.propagation import (
    estimate_lt_spread,
    lt_influence_maximization,
    normalize_lt_weights,
    sample_lt_rr_sets,
    simulate_lt_cascade,
    validate_lt_weights,
)


def _lt_chain(weight: float) -> TopicGraph:
    """0 -> 1 -> 2 -> 3 with a single in-arc of weight ``weight`` each."""
    arcs = [(0, 1), (1, 2), (2, 3)]
    probs = np.full((3, 1), weight)
    return TopicGraph.from_arcs(4, np.asarray(arcs), probs)


class TestWeightNormalization:
    def test_valid_graph_untouched(self):
        g = _lt_chain(0.6)
        normalized = normalize_lt_weights(g)
        assert np.allclose(normalized.probabilities, g.probabilities)

    def test_overweight_node_rescaled(self):
        # Node 2 has two in-arcs of 0.8 each: sum 1.6 -> rescale to 1.0.
        arcs = [(0, 2), (1, 2)]
        probs = np.full((2, 1), 0.8)
        g = TopicGraph.from_arcs(3, np.asarray(arcs), probs)
        assert not validate_lt_weights(g)
        normalized = normalize_lt_weights(g)
        assert validate_lt_weights(normalized)
        assert np.allclose(normalized.probabilities.sum(), 1.0)

    def test_per_topic_normalization(self):
        arcs = [(0, 2), (1, 2)]
        probs = np.array([[0.9, 0.1], [0.9, 0.2]])
        normalized = normalize_lt_weights(
            TopicGraph.from_arcs(3, np.asarray(arcs), probs)
        )
        sums = normalized.probabilities.sum(axis=0)
        assert sums[0] == pytest.approx(1.0)
        assert sums[1] == pytest.approx(0.3)  # was already valid


class TestLTSimulation:
    def test_weight_one_chain_fully_activates(self):
        g = _lt_chain(1.0)
        active = simulate_lt_cascade(g, [1.0], [0], rng=0)
        assert active.all()

    def test_zero_weight_only_seeds(self):
        g = _lt_chain(0.0)
        active = simulate_lt_cascade(g, [1.0], [0], rng=0)
        assert active.tolist() == [True, False, False, False]

    def test_empty_seeds(self):
        g = _lt_chain(1.0)
        assert not simulate_lt_cascade(g, [1.0], [], rng=0).any()

    def test_activation_probability_matches_weight(self):
        # P[1 activates | 0 seeded] = P[theta_1 <= w] = w.
        w = 0.3
        g = _lt_chain(w)
        rng = np.random.default_rng(1)
        hits = sum(
            simulate_lt_cascade(g, [1.0], [0], rng)[1] for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(w, abs=0.03)

    def test_threshold_accumulation(self):
        # Two in-arcs of 0.5 each: both parents active => always fires.
        arcs = [(0, 2), (1, 2)]
        probs = np.full((2, 1), 0.5)
        g = TopicGraph.from_arcs(3, np.asarray(arcs), probs)
        rng = np.random.default_rng(2)
        hits = sum(
            simulate_lt_cascade(g, [1.0], [0, 1], rng)[2]
            for _ in range(500)
        )
        assert hits >= 497  # theta in (0, 1]: weight 1.0 >= theta a.s.

    def test_topic_mixture(self):
        arcs = [(0, 1)]
        probs = np.array([[0.8, 0.0]])
        g = TopicGraph.from_arcs(2, np.asarray(arcs), probs)
        rng = np.random.default_rng(3)
        gamma = np.array([0.5, 0.5])  # mixture weight = 0.4
        hits = sum(
            simulate_lt_cascade(g, gamma, [0], rng)[1] for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.4, abs=0.03)


class TestLTSpreadAndRIS:
    @pytest.fixture(scope="class")
    def lt_graph(self, small_graph):
        return normalize_lt_weights(small_graph)

    def test_spread_estimate_contract(self, lt_graph):
        gamma = np.full(lt_graph.num_topics, 1.0 / lt_graph.num_topics)
        estimate = estimate_lt_spread(
            lt_graph, gamma, [0, 1], num_simulations=100, seed=4
        )
        assert estimate.mean >= 2.0
        with pytest.raises(ValueError):
            estimate_lt_spread(lt_graph, gamma, [0], num_simulations=0)

    def test_rr_estimate_matches_monte_carlo(self, lt_graph):
        gamma = np.zeros(lt_graph.num_topics)
        gamma[0] = 1.0
        seeds = [0, 1, 2]
        collection = sample_lt_rr_sets(lt_graph, gamma, 8000, seed=5)
        ris_estimate = collection.spread_estimate(seeds)
        mc_estimate = estimate_lt_spread(
            lt_graph, gamma, seeds, num_simulations=4000, seed=6
        ).mean
        assert ris_estimate == pytest.approx(mc_estimate, rel=0.2, abs=1.0)

    def test_selection_beats_random(self, lt_graph):
        gamma = np.zeros(lt_graph.num_topics)
        gamma[0] = 1.0
        chosen = lt_influence_maximization(
            lt_graph, gamma, 5, num_sets=4000, seed=7
        )
        rnd = random_seeds(lt_graph.num_nodes, 5, seed=8)
        s_chosen = estimate_lt_spread(
            lt_graph, gamma, chosen.nodes, num_simulations=500, seed=9
        ).mean
        s_rnd = estimate_lt_spread(
            lt_graph, gamma, rnd.nodes, num_simulations=500, seed=9
        ).mean
        assert s_chosen > s_rnd

    def test_invalid_weights_rejected(self, small_graph):
        # The raw generated graph typically violates the LT constraint.
        arcs = [(0, 2), (1, 2)]
        probs = np.full((2, 1), 0.9)
        bad = TopicGraph.from_arcs(3, np.asarray(arcs), probs)
        with pytest.raises(ValueError):
            lt_influence_maximization(bad, [1.0], 1, num_sets=10)

    def test_rr_args_validated(self, lt_graph):
        gamma = np.full(lt_graph.num_topics, 1.0 / lt_graph.num_topics)
        with pytest.raises(ValueError):
            sample_lt_rr_sets(lt_graph, gamma, 0)
