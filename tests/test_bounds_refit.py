"""Tests for analytic spread bounds, Fig.-5 t-tests, and EM warm starts."""

import numpy as np
import pytest

from repro.experiments import fig5_retrieval_recall, get_context
from repro.graph import TopicGraph, interest_topic_graph
from repro.learning import TICLearner, generate_propagation_log
from repro.learning.propagation_log import PropagationLog
from repro.propagation import (
    estimate_spread,
    exact_spread,
    one_hop_lower_bound,
    union_upper_bound,
)


def _chain(p: float, length: int = 4) -> TopicGraph:
    arcs = [(i, i + 1) for i in range(length - 1)]
    probs = np.full((length - 1, 1), p)
    return TopicGraph.from_arcs(length, np.asarray(arcs), probs)


class TestSpreadBounds:
    def test_brackets_exact_on_chain(self):
        g = _chain(0.5)
        exact = exact_spread(g, [1.0], [0])
        lower = one_hop_lower_bound(g, [1.0], [0])
        upper = union_upper_bound(g, [1.0], [0])
        assert lower <= exact + 1e-9
        assert upper >= exact - 1e-9

    def test_brackets_exact_on_random_tiny_graphs(self):
        rng = np.random.default_rng(1)
        for _ in range(15):
            n = int(rng.integers(3, 7))
            m = int(rng.integers(1, min(10, n * (n - 1)) + 1))
            pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
            chosen = rng.choice(len(pairs), size=m, replace=False)
            arcs = np.asarray([pairs[i] for i in chosen])
            probs = rng.uniform(0.05, 0.9, size=(m, 2))
            g = TopicGraph.from_arcs(n, arcs, probs)
            gamma = rng.dirichlet(np.ones(2))
            seeds = [int(rng.integers(n))]
            exact = exact_spread(g, gamma, seeds)
            assert one_hop_lower_bound(g, gamma, seeds) <= exact + 1e-9
            assert union_upper_bound(g, gamma, seeds) >= exact - 1e-9

    def test_lower_bound_exact_for_single_hop_graph(self):
        # Star graph: all spread is one-hop, lower bound is tight.
        arcs = [(0, i) for i in range(1, 5)]
        probs = np.full((4, 1), 0.3)
        g = TopicGraph.from_arcs(5, np.asarray(arcs), probs)
        lower = one_hop_lower_bound(g, [1.0], [0])
        exact = exact_spread(g, [1.0], [0])
        assert lower == pytest.approx(exact, abs=1e-9)

    def test_deterministic_chain_bounds_tight(self):
        g = _chain(1.0)
        assert union_upper_bound(g, [1.0], [0]) == pytest.approx(4.0)
        assert one_hop_lower_bound(g, [1.0], [0]) == pytest.approx(2.0)

    def test_brackets_monte_carlo_on_generated_graph(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        seeds = [0, 5, 9]
        mc = estimate_spread(
            small_graph, gamma, seeds, num_simulations=1500, seed=2
        )
        lower = one_hop_lower_bound(small_graph, gamma, seeds)
        upper = union_upper_bound(small_graph, gamma, seeds)
        slack = 4 * mc.standard_error
        assert lower <= mc.mean + slack
        assert upper >= mc.mean - slack

    def test_empty_seeds(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        assert one_hop_lower_bound(small_graph, gamma, []) == 0.0
        assert union_upper_bound(small_graph, gamma, []) == 0.0

    def test_validation(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        with pytest.raises(ValueError):
            one_hop_lower_bound(small_graph, gamma, [10**6])
        with pytest.raises(ValueError):
            union_upper_bound(small_graph, gamma, [0], max_rounds=0)


class TestFig5Comparisons:
    def test_paired_tests_available(self):
        context = get_context("test")
        result = fig5_retrieval_recall.run(context, num_queries=12)
        budget = result.leaf_budgets[-1]
        k = result.k_values[-1]
        recall_test, computation_test = result.compare_with_budget(
            budget, k=k
        )
        assert 0.0 <= recall_test.p_value <= 1.0
        # The AD stop performs at most as many computations as the full
        # budget on every query, so the mean difference is <= 0.
        assert computation_test.mean_difference <= 1e-9

    def test_compare_validation(self):
        context = get_context("test")
        result = fig5_retrieval_recall.run(context, num_queries=8)
        with pytest.raises(ValueError):
            result.compare_with_budget(999)
        with pytest.raises(ValueError):
            result.compare_with_budget(result.leaf_budgets[0], k=999)


class TestRefitWithNewItems:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = interest_topic_graph(
            100, 3, topics_per_node=1, base_strength=0.25, seed=71
        )
        rng = np.random.default_rng(72)
        items = rng.dirichlet(np.full(3, 0.3), size=120)
        old_log = generate_propagation_log(
            graph, items[:90], seeds_per_item=5, seed=73
        )
        new_log = generate_propagation_log(
            graph, items[90:], seeds_per_item=5, seed=74
        )
        learner = TICLearner(graph, 3, max_iter=20, seed=75)
        result = learner.fit(old_log, init_item_topics="trace-clustering")
        return graph, learner, result, old_log, new_log

    def test_covers_all_items(self, setup):
        _, learner, result, old_log, new_log = setup
        refined = learner.refit_with_new_items(
            result, old_log, new_log, max_iter=5
        )
        assert refined.item_topics.shape[0] == (
            old_log.num_items + new_log.num_items
        )
        assert np.allclose(refined.item_topics.sum(axis=1), 1.0)

    def test_warm_start_converges_fast(self, setup):
        _, learner, result, old_log, new_log = setup
        refined = learner.refit_with_new_items(
            result, old_log, new_log, max_iter=8
        )
        # A handful of warm iterations should suffice to converge (or
        # at least monotonically improve without regressing).
        assert len(refined.history) <= 8
        assert refined.history[-1] >= refined.history[0] - 1e-6

    def test_validation(self, setup):
        graph, learner, result, old_log, new_log = setup
        with pytest.raises(ValueError):
            learner.refit_with_new_items(
                result, old_log, PropagationLog(old_log.num_nodes + 1)
            )
        with pytest.raises(ValueError):
            learner.refit_with_new_items(
                result, new_log, new_log  # result size mismatch
            )
        with pytest.raises(ValueError):
            learner.refit_with_new_items(
                result, old_log, new_log, max_iter=0
            )