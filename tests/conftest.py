"""Shared fixtures for the test suite.

Expensive artifacts (graphs, datasets, a built INFLEX index) are
session-scoped: they are deterministic, read-only, and reused across
test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InflexConfig, InflexIndex
from repro.datasets import generate_flixster_like, generate_query_workload
from repro.graph import TopicGraph, interest_topic_graph


@pytest.fixture(scope="session")
def tiny_graph() -> TopicGraph:
    """A 6-node, 2-topic graph with hand-written probabilities."""
    arcs = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)]
    probs = np.array(
        [
            [0.9, 0.1],
            [0.8, 0.1],
            [0.7, 0.2],
            [0.6, 0.1],
            [0.5, 0.3],
            [0.4, 0.4],
            [0.3, 0.2],
        ]
    )
    return TopicGraph.from_arcs(6, np.asarray(arcs), probs)


@pytest.fixture(scope="session")
def small_graph() -> TopicGraph:
    """A 200-node, 4-topic generated graph (deterministic)."""
    return interest_topic_graph(
        200, 4, topics_per_node=1, base_strength=0.2, seed=11
    )


@pytest.fixture(scope="session")
def small_dataset():
    """A small Flixster-like dataset with a propagation log."""
    return generate_flixster_like(
        num_nodes=250,
        num_topics=4,
        num_items=80,
        topics_per_node=1,
        base_strength=0.2,
        with_log=True,
        seed=13,
    )


@pytest.fixture(scope="session")
def small_index(small_dataset) -> InflexIndex:
    """An INFLEX index built over the small dataset."""
    config = InflexConfig(
        num_index_points=20,
        num_dirichlet_samples=1500,
        seed_list_length=12,
        ris_num_sets=1200,
        knn=6,
        leaf_size=8,
        seed=17,
    )
    return InflexIndex.build(
        small_dataset.graph, small_dataset.item_topics, config
    )


@pytest.fixture(scope="session")
def small_workload(small_dataset):
    """A 10-query workload over the small dataset's catalog."""
    return generate_query_workload(small_dataset.item_topics, 10, seed=19)


@pytest.fixture(autouse=True)
def _reset_observability():
    """Give every test a pristine observability state.

    Tests that enable :mod:`repro.obs` (or merely run code that
    records into the global registry while another test left it
    enabled) must not see each other's counters, spans, flight
    records, or logging configuration.  Resetting *after* each test —
    and restoring the disabled default — makes accumulated-count
    assertions deterministic regardless of execution order.
    """
    from repro import obs
    from repro.obs.flightrec import get_flight_recorder
    from repro.obs.logs import reset_logging

    yield
    obs.disable()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    get_flight_recorder().clear()
    reset_logging()
