"""Tests for the influence-maximization algorithms."""

import numpy as np
import pytest

from repro.im import (
    SeedList,
    celf_seed_selection,
    celfpp_seed_selection,
    degree_seeds,
    greedy_seed_selection,
    pagerank_seeds,
    random_seeds,
    ris_influence_maximization,
    ris_seed_selection,
    sample_rr_sets,
    weighted_degree_seeds,
)
from repro.propagation import SnapshotSpread, estimate_spread


class TestSeedList:
    def test_basic(self):
        sl = SeedList((3, 1, 2), (5.0, 2.0, 1.0), algorithm="x")
        assert len(sl) == 3
        assert sl[0] == 3
        assert 1 in sl
        assert sl.rank_of(2) == 2
        assert sl.rank_of(99) is None
        assert sl.estimated_spread == pytest.approx(8.0)

    def test_top(self):
        sl = SeedList((3, 1, 2), (5.0, 2.0, 1.0))
        top = sl.top(2)
        assert top.nodes == (3, 1)
        assert top.marginal_gains == (5.0, 2.0)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SeedList((1, 1, 2))

    def test_gain_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SeedList((1, 2), (1.0,))

    def test_iteration_order(self):
        sl = SeedList((5, 3, 9))
        assert list(sl) == [5, 3, 9]

    def test_as_array(self):
        sl = SeedList((5, 3))
        arr = sl.as_array()
        assert arr.dtype == np.int64
        assert arr.tolist() == [5, 3]


class TestGreedyFamilyEquivalence:
    """Greedy, CELF and CELF++ must return the same seeds when run on
    the same deterministic (snapshot) spread oracle — CELF/CELF++ are
    exact optimizations, not approximations."""

    @pytest.fixture(scope="class")
    def oracle(self, small_graph):
        gamma = np.full(
            small_graph.num_topics, 1.0 / small_graph.num_topics
        )
        return SnapshotSpread(
            small_graph, gamma, num_snapshots=60, seed=21
        )

    def test_all_agree(self, oracle, small_graph):
        n = small_graph.num_nodes
        greedy = greedy_seed_selection(oracle, n, 4)
        celf = celf_seed_selection(oracle, n, 4)
        celfpp = celfpp_seed_selection(oracle, n, 4)
        assert greedy.nodes == celf.nodes == celfpp.nodes
        assert np.allclose(greedy.marginal_gains, celf.marginal_gains)
        assert np.allclose(greedy.marginal_gains, celfpp.marginal_gains)

    def test_gains_nonincreasing(self, oracle, small_graph):
        result = celf_seed_selection(oracle, small_graph.num_nodes, 5)
        gains = result.marginal_gains
        assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))

    def test_k_zero(self, oracle, small_graph):
        assert len(celf_seed_selection(oracle, small_graph.num_nodes, 0)) == 0
        assert (
            len(celfpp_seed_selection(oracle, small_graph.num_nodes, 0)) == 0
        )

    def test_k_too_large_rejected(self, oracle):
        with pytest.raises(ValueError):
            greedy_seed_selection(oracle, 5, 6)
        with pytest.raises(ValueError):
            celf_seed_selection(oracle, 5, 6)
        with pytest.raises(ValueError):
            celfpp_seed_selection(oracle, 5, 6)

    def test_candidate_restriction(self, oracle, small_graph):
        pool = [0, 1, 2, 3, 4]
        result = celf_seed_selection(
            oracle, small_graph.num_nodes, 3, candidates=pool
        )
        assert set(result.nodes) <= set(pool)


class TestRIS:
    def test_rr_sets_contain_root(self, small_graph):
        gamma = np.full(
            small_graph.num_topics, 1.0 / small_graph.num_topics
        )
        collection = sample_rr_sets(small_graph, gamma, 50, seed=22)
        assert collection.num_sets == 50
        for rr in collection.sets:
            assert rr.size >= 1

    def test_spread_estimate_unbiased_vs_mc(self, small_graph):
        gamma = np.zeros(small_graph.num_topics)
        gamma[0] = 1.0
        collection = sample_rr_sets(small_graph, gamma, 6000, seed=23)
        seeds = [0, 1, 2]
        ris_est = collection.spread_estimate(seeds)
        mc_est = estimate_spread(
            small_graph, gamma, seeds, num_simulations=3000, seed=24
        ).mean
        assert ris_est == pytest.approx(mc_est, rel=0.2, abs=1.0)

    def test_selection_beats_random(self, small_graph):
        gamma = np.zeros(small_graph.num_topics)
        gamma[0] = 1.0
        result = ris_influence_maximization(
            small_graph, gamma, 5, num_sets=3000, seed=25
        )
        random = random_seeds(small_graph.num_nodes, 5, seed=26)
        s_ris = estimate_spread(
            small_graph, gamma, result.nodes, num_simulations=500, seed=27
        ).mean
        s_rand = estimate_spread(
            small_graph, gamma, random.nodes, num_simulations=500, seed=27
        ).mean
        assert s_ris > s_rand

    def test_gains_nonincreasing(self, small_graph):
        gamma = np.full(
            small_graph.num_topics, 1.0 / small_graph.num_topics
        )
        result = ris_influence_maximization(
            small_graph, gamma, 8, num_sets=2000, seed=28
        )
        gains = result.marginal_gains
        assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))

    def test_pads_when_rr_sets_exhausted(self, tiny_graph):
        gamma = np.array([1.0, 0.0])
        collection = sample_rr_sets(tiny_graph, gamma, 5, seed=29)
        result = ris_seed_selection(collection, tiny_graph.num_nodes)
        assert len(result) == tiny_graph.num_nodes
        assert len(set(result.nodes)) == tiny_graph.num_nodes

    def test_invalid_args(self, small_graph):
        gamma = np.full(
            small_graph.num_topics, 1.0 / small_graph.num_topics
        )
        with pytest.raises(ValueError):
            sample_rr_sets(small_graph, gamma, 0)
        collection = sample_rr_sets(small_graph, gamma, 10, seed=30)
        with pytest.raises(ValueError):
            ris_seed_selection(collection, -1)

    def test_deterministic(self, small_graph):
        gamma = np.full(
            small_graph.num_topics, 1.0 / small_graph.num_topics
        )
        a = ris_influence_maximization(
            small_graph, gamma, 5, num_sets=500, seed=31
        )
        b = ris_influence_maximization(
            small_graph, gamma, 5, num_sets=500, seed=31
        )
        assert a.nodes == b.nodes


class TestHeuristics:
    def test_random_seeds_distinct(self):
        result = random_seeds(100, 10, seed=32)
        assert len(set(result.nodes)) == 10

    def test_random_seeds_bounds(self):
        with pytest.raises(ValueError):
            random_seeds(5, 6)

    def test_degree_seeds_order(self, small_graph):
        result = degree_seeds(small_graph, 5)
        degrees = small_graph.out_degree()
        returned = [degrees[v] for v in result.nodes]
        assert all(a >= b for a, b in zip(returned, returned[1:]))
        assert returned[0] == degrees.max()

    def test_weighted_degree_topic_sensitivity(self, small_graph):
        gamma_a = np.zeros(small_graph.num_topics)
        gamma_a[0] = 1.0
        gamma_b = np.zeros(small_graph.num_topics)
        gamma_b[1] = 1.0
        top_a = weighted_degree_seeds(small_graph, gamma_a, 10).nodes
        top_b = weighted_degree_seeds(small_graph, gamma_b, 10).nodes
        # Topic-aware ranking should differ across topics on an
        # interest-structured graph.
        assert top_a != top_b

    def test_pagerank_seeds(self, small_graph):
        result = pagerank_seeds(small_graph, 5)
        assert len(result) == 5
        assert len(set(result.nodes)) == 5

    def test_pagerank_validation(self, small_graph):
        with pytest.raises(ValueError):
            pagerank_seeds(small_graph, 5, damping=1.5)
        with pytest.raises(ValueError):
            pagerank_seeds(small_graph, small_graph.num_nodes + 1)
