"""Tests for the observability layer: registry semantics, span
nesting and exception safety, Chrome trace round-trips, and the
query-path instrumentation contract (QueryTiming derived from spans,
cache and batch accounting flowing into the registry)."""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.core import CachedIndex
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer


@pytest.fixture
def registry() -> MetricsRegistry:
    """A fresh private registry (global state untouched)."""
    return MetricsRegistry()


@pytest.fixture
def observability():
    """Enable the global switch with clean registry/tracer; restore
    the disabled default afterwards."""
    obs.enable()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    yield obs.get_registry(), obs.get_tracer()
    obs.disable()
    obs.get_registry().reset()
    obs.get_tracer().clear()


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_monotonic(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0


class TestHistogram:
    def test_quantiles_within_bucket_resolution(self):
        hist = Histogram()
        for value in range(1, 1001):
            hist.observe(float(value))
        assert hist.count == 1000
        assert hist.sum == pytest.approx(500500.0)
        assert hist.min == 1.0 and hist.max == 1000.0
        # Geometric buckets bound the relative error; 25% is generous.
        assert hist.quantile(0.5) == pytest.approx(500, rel=0.25)
        assert hist.quantile(0.9) == pytest.approx(900, rel=0.25)
        assert hist.quantile(0.99) == pytest.approx(990, rel=0.25)

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_underflow_and_overflow_observations_kept(self):
        hist = Histogram(lowest=1.0, highest=10.0, growth=2.0)
        hist.observe(0.0)
        hist.observe(1e9)
        assert hist.count == 2
        assert hist.min == 0.0 and hist.max == 1e9

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Histogram().observe(float("nan"))

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestRegistry:
    def test_label_isolation(self, registry):
        family = registry.counter("c_total", labels=("kind",))
        family.labels(kind="a").inc(2)
        family.labels(kind="b").inc(5)
        assert family.labels(kind="a").value == 2.0
        assert family.labels(kind="b").value == 5.0
        # Same labels -> the same child object.
        assert family.labels(kind="a") is family.labels(kind="a")

    def test_wrong_label_names_raise(self, registry):
        family = registry.counter("c_total", labels=("kind",))
        with pytest.raises(ValueError):
            family.labels(flavor="a")

    def test_registration_idempotent(self, registry):
        first = registry.counter("c_total", labels=("kind",))
        again = registry.counter("c_total", labels=("kind",))
        assert first is again

    def test_conflicting_registration_raises(self, registry):
        registry.counter("c_total")
        with pytest.raises(ValueError):
            registry.gauge("c_total")
        with pytest.raises(ValueError):
            registry.counter("c_total", labels=("kind",))

    def test_reset_zeroes_but_keeps_series(self, registry):
        counter = registry.counter("c_total")
        hist = registry.histogram("h_seconds")
        counter.inc(7)
        hist.observe(1.0)
        registry.reset()
        assert counter.value == 0.0
        assert hist.count == 0
        # The registered objects stay live after reset.
        assert registry.get("c_total") is counter
        counter.inc()
        assert counter.value == 1.0

    def test_snapshot_structure(self, registry):
        registry.counter("c_total", "help text", labels=("kind",)).labels(
            kind="x"
        ).inc(3)
        registry.histogram("h_seconds").observe(0.5)
        snap = registry.snapshot()
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["help"] == "help text"
        assert snap["c_total"]["series"] == [
            {"labels": {"kind": "x"}, "value": 3.0}
        ]
        hist_value = snap["h_seconds"]["series"][0]["value"]
        assert hist_value["count"] == 1
        assert hist_value["p50"] == pytest.approx(0.5, rel=0.25)

    def test_to_json_parses(self, registry):
        registry.counter("c_total").inc()
        parsed = json.loads(registry.to_json())
        assert parsed["c_total"]["series"][0]["value"] == 1.0

    def test_prometheus_exposition(self, registry):
        registry.counter("c_total", "a counter", labels=("kind",)).labels(
            kind="x"
        ).inc(3)
        registry.gauge("g_now").set(2)
        registry.histogram("h_seconds").observe(1.0)
        text = registry.to_prometheus()
        assert "# TYPE c_total counter" in text
        assert 'c_total{kind="x"} 3' in text
        assert "# TYPE g_now gauge" in text
        assert "g_now 2" in text
        assert "# TYPE h_seconds histogram" in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text
        assert "h_seconds_sum 1" in text

    def test_prometheus_histogram_buckets_cumulative(self, registry):
        hist = registry.histogram("lat_seconds")
        for value in (0.001, 0.001, 0.5, 2.0):
            hist.observe(value)
        pairs = hist.cumulative_buckets()
        # Monotone non-decreasing cumulative counts, +Inf last with the
        # grand total.
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert pairs[-1][0] == float("inf")
        assert pairs[-1][1] == 4
        text = registry.to_prometheus()
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_links_parents(self, observability):
        _, tracer = observability
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        records = {record.name: record for record in tracer.spans()}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["sibling"].parent_id == records["outer"].span_id
        assert records["outer"].parent_id is None

    def test_durations_measured_even_when_disabled(self):
        assert not obs.enabled()
        tracer = obs.get_tracer()
        before = len(tracer.spans())
        with tracer.span("unrecorded") as span:
            pass
        assert span.duration is not None and span.duration >= 0.0
        # Nothing was buffered while disabled.
        assert len(tracer.spans()) == before

    def test_exception_safety(self, observability):
        _, tracer = observability
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("failing") as span:
                    raise RuntimeError("boom")
        assert span.duration is not None
        names = [record.name for record in tracer.spans()]
        assert names == ["failing", "outer"]
        # The stack unwound: a new span is a root again.
        with tracer.span("after"):
            pass
        assert tracer.find("after")[0].parent_id is None

    def test_buffer_bound_counts_drops(self, observability):
        tracer = Tracer(max_spans=2)
        for _ in range(4):
            with tracer.span("s"):
                pass
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 2

    def test_chrome_trace_round_trip(self, observability):
        _, tracer = observability
        with tracer.span("query", strategy="inflex", k=5):
            with tracer.span("query.search", category="phase"):
                pass
        # Serialize through real JSON to prove the document is valid.
        document = json.loads(json.dumps(tracer.to_chrome_trace()))
        assert document["traceEvents"]
        restored = Tracer.from_chrome_trace(document)
        originals = {record.span_id: record for record in tracer.spans()}
        assert len(restored) == len(originals)
        for record in restored:
            original = originals[record.span_id]
            assert record.name == original.name
            assert record.category == original.category
            assert record.parent_id == original.parent_id
            assert record.duration == pytest.approx(
                original.duration, abs=1e-9
            )
            assert record.start == pytest.approx(original.start, abs=1e-9)
        assert any(
            record.args.get("strategy") == "inflex" for record in restored
        )

    def test_to_json_export(self, observability):
        _, tracer = observability
        with tracer.span("alpha"):
            pass
        payload = json.loads(tracer.to_json())
        assert payload[0]["name"] == "alpha"
        assert payload[0]["duration"] >= 0.0


# ----------------------------------------------------------------------
# Query-path instrumentation
# ----------------------------------------------------------------------
class TestQueryInstrumentation:
    def test_query_timing_equals_sum_of_child_phase_spans(
        self, small_index, small_workload, observability
    ):
        _, tracer = observability
        answer = small_index.query(small_workload.items[0], 5)
        (query_record,) = tracer.find("query")
        children = tracer.children_of(query_record.span_id)
        assert {child.name for child in children} <= {
            "query.search",
            "query.selection",
            "query.aggregation",
        }
        assert answer.timing.total == pytest.approx(
            sum(child.duration for child in children), rel=1e-9
        )
        # The public QueryTiming fields ARE the span durations.
        by_name = {child.name: child.duration for child in children}
        assert answer.timing.search == by_name["query.search"]

    def test_query_counters_recorded(
        self, small_index, small_workload, observability
    ):
        registry, _ = observability
        small_index.query(small_workload.items[1], 5)
        snap = registry.snapshot()
        totals = {
            (entry["labels"]["strategy"], entry["labels"]["outcome"]): entry[
                "value"
            ]
            for entry in snap["repro_queries_total"]["series"]
        }
        assert sum(totals.values()) == 1.0
        phase_counts = {
            entry["labels"]["phase"]: entry["value"]["count"]
            for entry in snap["repro_query_phase_seconds"]["series"]
        }
        assert phase_counts["total"] == 1
        assert snap["repro_search_total"]["series"], "search not recorded"

    def test_query_batch_aggregates_into_registry(
        self, small_index, small_workload, observability
    ):
        registry, _ = observability
        answers = small_index.query_batch(
            np.vstack(small_workload.items[:4]), 5
        )
        assert len(answers) == 4
        snap = registry.snapshot()
        assert (
            snap["repro_query_batches_total"]["series"][0]["value"] == 1.0
        )
        assert (
            snap["repro_query_batch_size"]["series"][0]["value"]["count"]
            == 1
        )
        expected_leaves = sum(
            answer.search_stats.leaves_visited for answer in answers
        )
        assert (
            snap["repro_batch_leaves_visited_total"]["series"][0]["value"]
            == expected_leaves
        )
        expected_divs = sum(
            answer.search_stats.divergence_computations
            for answer in answers
        )
        assert (
            snap["repro_batch_divergence_computations_total"]["series"][0][
                "value"
            ]
            == expected_divs
        )

    def test_disabled_records_nothing(self, small_index, small_workload):
        assert not obs.enabled()
        registry = obs.get_registry()
        registry.reset()
        obs.get_tracer().clear()
        answer = small_index.query(small_workload.items[2], 5)
        assert answer.timing.total > 0.0  # timing still populated
        snap = registry.snapshot()
        # reset() keeps previously-seen label series alive but zeroed;
        # disabled queries must not have added anything.
        assert (
            sum(
                entry["value"]
                for entry in snap["repro_queries_total"]["series"]
            )
            == 0.0
        )
        assert obs.get_tracer().spans() == []


class TestCacheInstrumentation:
    def test_stats_dict_and_evictions(
        self, small_index, small_workload, observability
    ):
        registry, _ = observability
        cache = CachedIndex(small_index, max_entries=2)
        items = small_workload.items
        cache.query(items[0], 5)
        cache.query(items[0], 5)  # hit
        cache.query(items[1], 5)
        cache.query(items[2], 5)  # evicts items[0]
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 3
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["max_entries"] == 2
        assert stats["hit_rate"] == pytest.approx(0.25)
        snap = registry.snapshot()
        assert snap["repro_cache_hits_total"]["series"][0]["value"] == 1.0
        assert (
            snap["repro_cache_misses_total"]["series"][0]["value"] == 3.0
        )
        assert (
            snap["repro_cache_evictions_total"]["series"][0]["value"] == 1.0
        )
        assert snap["repro_cache_entries"]["series"][0]["value"] == 2.0

    def test_clear_resets_local_accounting(self, small_index, small_workload):
        cache = CachedIndex(small_index, max_entries=2)
        cache.query(small_workload.items[0], 5)
        cache.clear()
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "expirations": 0,
            "entries": 0,
            "max_entries": 2,
            "hit_rate": 0.0,
        }


class TestGlobalSwitch:
    def test_enable_disable_round_trip(self):
        assert not obs.enabled()
        obs.enable()
        try:
            assert obs.enabled()
        finally:
            obs.disable()
        assert not obs.enabled()
