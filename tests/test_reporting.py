"""Tests for the ASCII reporting helpers."""

from repro.experiments import format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["beta", 2.25]],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in text and "1.500" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_large_floats_compact(self):
        text = format_table(["x"], [[123456.789]])
        assert "123456.8" in text

    def test_mixed_types(self):
        text = format_table(["k", "v"], [[5, "hello"]])
        assert "5" in text and "hello" in text


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series(
            "k",
            [1, 2],
            {"method-a": [0.1, 0.2], "method-b": [0.3, 0.4]},
        )
        assert "method-a" in text
        assert "method-b" in text
        assert "0.100" in text
        assert "0.400" in text
