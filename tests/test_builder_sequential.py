"""Tests for the resumable builder and sequential spread estimation."""

import numpy as np
import pytest

from repro.core import InflexConfig, InflexIndex, ResumableBuilder
from repro.propagation import estimate_spread, estimate_spread_sequential


@pytest.fixture
def build_config():
    return InflexConfig(
        num_index_points=6,
        num_dirichlet_samples=300,
        seed_list_length=4,
        ris_num_sets=300,
        knn=3,
        seed=81,
    )


class TestResumableBuilder:
    def test_complete_build_matches_direct(
        self, small_dataset, build_config, tmp_path
    ):
        builder = ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            build_config,
            tmp_path / "ckpt",
        )
        index = builder.run()
        assert index is not None
        direct = InflexIndex.build(
            small_dataset.graph, small_dataset.item_topics, build_config
        )
        assert np.allclose(index.index_points, direct.index_points)
        for a, b in zip(index.seed_lists, direct.seed_lists):
            assert a.nodes == b.nodes

    def test_interrupted_build_resumes(
        self, small_dataset, build_config, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        builder = ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            build_config,
            ckpt,
        )
        # First session: only 2 items.
        partial = builder.run(max_items=2)
        assert partial is None
        assert builder.completed_count() == 2
        # "Restart": a fresh builder over the same checkpoint dir.
        resumed = ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            build_config,
            ckpt,
        )
        index = resumed.run()
        assert index is not None
        assert index.num_index_points == build_config.num_index_points
        # Identical to an uninterrupted build.
        direct = InflexIndex.build(
            small_dataset.graph, small_dataset.item_topics, build_config
        )
        for a, b in zip(index.seed_lists, direct.seed_lists):
            assert a.nodes == b.nodes

    def test_config_mismatch_rejected(
        self, small_dataset, build_config, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            build_config,
            ckpt,
        ).run(max_items=1)
        other = InflexConfig(
            num_index_points=8,
            num_dirichlet_samples=300,
            seed_list_length=4,
            ris_num_sets=300,
            knn=3,
            seed=81,
        )
        builder = ResumableBuilder(
            small_dataset.graph, small_dataset.item_topics, other, ckpt
        )
        with pytest.raises(ValueError):
            builder.run(max_items=1)

    def test_progress_callback(self, small_dataset, build_config, tmp_path):
        calls = []
        ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            build_config,
            tmp_path / "ckpt",
        ).run(progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (6, 6)

    def test_corrupt_checkpoint_is_not_silent(
        self, small_dataset, build_config, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        builder = ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            build_config,
            ckpt,
        )
        builder.run(max_items=1)
        # Corrupt the first checkpoint: resuming must not quietly decode
        # a broken seed list.  The file is quarantined (kept for
        # post-mortems as *.corrupt) and just that item is recomputed
        # from its pinned per-item seed — see docs/RESILIENCE.md.
        (ckpt / "seeds_00000.json").write_text("{ not json")
        resumed = ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            build_config,
            ckpt,
        )
        index = resumed.run()
        assert index is not None
        assert (ckpt / "seeds_00000.json.corrupt").exists()
        # The recomputed list matches an uninterrupted build exactly.
        clean = ResumableBuilder(
            small_dataset.graph,
            small_dataset.item_topics,
            build_config,
            tmp_path / "clean",
        ).run()
        assert [s.nodes for s in index.seed_lists] == [
            s.nodes for s in clean.seed_lists
        ]


class TestSequentialSpread:
    def test_matches_fixed_budget(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        seeds = [0, 3, 7]
        sequential = estimate_spread_sequential(
            small_graph, gamma, seeds, relative_halfwidth=0.05, seed=1
        )
        fixed = estimate_spread(
            small_graph, gamma, seeds, num_simulations=4000, seed=2
        )
        assert sequential.mean == pytest.approx(fixed.mean, rel=0.15)

    def test_stops_early_on_low_variance(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        # Isolated behavior: a seed set whose spread is nearly
        # deterministic stops at one batch.
        loose = estimate_spread_sequential(
            small_graph,
            gamma,
            list(range(20)),
            relative_halfwidth=0.2,
            batch_size=50,
            seed=3,
        )
        tight = estimate_spread_sequential(
            small_graph,
            gamma,
            list(range(20)),
            relative_halfwidth=0.01,
            batch_size=50,
            max_simulations=2000,
            seed=3,
        )
        assert loose.num_simulations <= tight.num_simulations

    def test_empty_seed_set(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        estimate = estimate_spread_sequential(small_graph, gamma, [], seed=4)
        assert estimate.mean == 0.0

    def test_respects_max_simulations(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        estimate = estimate_spread_sequential(
            small_graph,
            gamma,
            [0],
            relative_halfwidth=0.001,
            batch_size=100,
            max_simulations=300,
            seed=5,
        )
        assert estimate.num_simulations <= 300

    def test_validation(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        with pytest.raises(ValueError):
            estimate_spread_sequential(
                small_graph, gamma, [0], relative_halfwidth=0.0
            )
        with pytest.raises(ValueError):
            estimate_spread_sequential(small_graph, gamma, [0], batch_size=1)
        with pytest.raises(ValueError):
            estimate_spread_sequential(
                small_graph, gamma, [0], batch_size=100, max_simulations=50
            )
