"""Tests for Kendall-tau distances (full and top-list)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ranking import (
    kendall_tau_full,
    kendall_tau_top,
    mean_kendall_tau_top,
)

permutations_of_5 = st.permutations(list(range(5)))

top_lists = st.lists(
    st.integers(min_value=0, max_value=12), min_size=1, max_size=6, unique=True
)


class TestKendallFull:
    def test_identity(self):
        assert kendall_tau_full([1, 2, 3], [1, 2, 3]) == 0.0

    def test_reversal(self):
        assert kendall_tau_full([1, 2, 3, 4], [4, 3, 2, 1]) == 1.0

    def test_single_swap(self):
        # One adjacent transposition = 1 of C(3,2)=3 possible inversions.
        assert kendall_tau_full([1, 2, 3], [2, 1, 3]) == pytest.approx(1 / 3)

    def test_unnormalized_counts_inversions(self):
        assert kendall_tau_full(
            [1, 2, 3, 4], [4, 3, 2, 1], normalized=False
        ) == 6

    def test_different_domains_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau_full([1, 2], [1, 3])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau_full([1, 1], [1, 2])

    def test_trivial_lists(self):
        assert kendall_tau_full([7], [7]) == 0.0

    @given(permutations_of_5, permutations_of_5)
    @settings(max_examples=60)
    def test_property_symmetry(self, a, b):
        assert kendall_tau_full(a, b) == pytest.approx(
            kendall_tau_full(b, a)
        )

    @given(permutations_of_5, permutations_of_5)
    @settings(max_examples=60)
    def test_property_bounds_and_identity(self, a, b):
        value = kendall_tau_full(a, b)
        assert 0.0 <= value <= 1.0
        if list(a) == list(b):
            assert value == 0.0

    @given(permutations_of_5)
    @settings(max_examples=30)
    def test_property_matches_bruteforce(self, a):
        b = list(range(5))
        expected = sum(
            1
            for i, j in itertools.combinations(range(5), 2)
            if (a.index(i) - a.index(j)) * (b.index(i) - b.index(j)) < 0
        )
        assert kendall_tau_full(a, b, normalized=False) == expected


class TestKendallTop:
    def test_identical(self):
        assert kendall_tau_top([1, 2, 3], [1, 2, 3]) == 0.0

    def test_disjoint_is_max(self):
        assert kendall_tau_top([1, 2, 3], [4, 5, 6]) == pytest.approx(1.0)

    def test_paper_normalization(self):
        # Max disagreements for equal-length lists: l^2 + l(l-1)p.
        ell, p = 4, 0.5
        raw = kendall_tau_top(
            [1, 2, 3, 4], [5, 6, 7, 8], p=p, normalized=False
        )
        assert raw == pytest.approx(ell * ell + ell * (ell - 1) * p)

    def test_case2_penalty(self):
        # Lists [a, b] and [b]: within list 1, a < b but list 2
        # implicitly ranks b ahead of a -> 1 disagreement on pair (a,b).
        raw = kendall_tau_top([1, 2], [2], normalized=False)
        assert raw == pytest.approx(1.0)

    def test_case2_agreement(self):
        # Lists [a, b] and [a]: consistent -> pair (a,b) costs 0; but
        # pair contributions of absent-b... only pair is (1,2): agree.
        raw = kendall_tau_top([1, 2], [1], normalized=False)
        assert raw == pytest.approx(0.0)

    def test_case4_penalty_scales_with_p(self):
        # Pair (1,2) appears only in the first list; pair counts p.
        for p in (0.0, 0.5, 1.0):
            raw = kendall_tau_top([1, 2], [3], p=p, normalized=False)
            # pairs: (1,2): case 4 -> p; (1,3): case 3 -> 1; (2,3): 1.
            assert raw == pytest.approx(p + 2.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            kendall_tau_top([1], [2], p=1.5)

    def test_reversal_of_same_set(self):
        # All 3 pairs reversed = 3 disagreements over max 9 + 3 = 12.
        assert kendall_tau_top([1, 2, 3], [3, 2, 1]) == pytest.approx(
            3.0 / 12.0
        )

    @given(top_lists, top_lists)
    @settings(max_examples=80)
    def test_property_symmetry(self, a, b):
        assert kendall_tau_top(a, b) == pytest.approx(kendall_tau_top(b, a))

    @given(top_lists, top_lists)
    @settings(max_examples=80)
    def test_property_bounds(self, a, b):
        value = kendall_tau_top(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(top_lists)
    @settings(max_examples=40)
    def test_property_identity(self, a):
        assert kendall_tau_top(a, a) == 0.0

    def test_accepts_seed_lists(self, small_index):
        lists = small_index.seed_lists
        assert kendall_tau_top(lists[0], lists[0]) == 0.0
        assert kendall_tau_top(lists[0], lists[1]) >= 0.0


class TestMeanKendall:
    def test_weighted_mean(self):
        candidate = [1, 2, 3]
        rankings = [[1, 2, 3], [3, 2, 1]]
        d_far = kendall_tau_top(candidate, rankings[1])
        unweighted = mean_kendall_tau_top(candidate, rankings)
        assert unweighted == pytest.approx(d_far / 2)
        weighted = mean_kendall_tau_top(
            candidate, rankings, weights=[1.0, 0.0]
        )
        assert weighted == 0.0

    def test_empty_rankings_rejected(self):
        with pytest.raises(ValueError):
            mean_kendall_tau_top([1], [])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            mean_kendall_tau_top([1], [[1]], weights=[-1.0])

    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            mean_kendall_tau_top([1], [[1], [2]], weights=[1.0])
