"""Tests for the Bregman divergence framework."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.divergence import (
    ItakuraSaito,
    KLDivergence,
    Mahalanobis,
    SquaredEuclidean,
)
from repro.simplex import kl_divergence, sample_uniform_simplex

ALL_DIVERGENCES = [
    KLDivergence(),
    SquaredEuclidean(),
    ItakuraSaito(),
    Mahalanobis(np.array([[2.0, 0.5], [0.5, 1.0]])),
]

positive_pairs = st.integers(min_value=0, max_value=5000).map(
    lambda seed: np.random.default_rng(seed).uniform(0.05, 2.0, size=(2, 2))
)


@pytest.mark.parametrize("div", ALL_DIVERGENCES, ids=lambda d: d.name)
class TestCommonProperties:
    def test_identity_zero(self, div):
        x = np.array([0.4, 0.6])
        assert div.divergence(x, x) == pytest.approx(0.0, abs=1e-10)

    def test_nonnegative(self, div):
        rng = np.random.default_rng(1)
        for _ in range(20):
            p = rng.uniform(0.05, 1.5, 2)
            q = rng.uniform(0.05, 1.5, 2)
            assert div.divergence(p, q) >= 0.0

    def test_gradient_inverse_round_trip(self, div):
        x = np.array([[0.3, 0.9]])
        theta = div.gradient(div._prepare(x))
        back = div.gradient_inverse(theta)
        assert np.allclose(back, x, atol=1e-9)

    def test_vectorized_matches_scalar(self, div):
        rng = np.random.default_rng(2)
        points = rng.uniform(0.05, 1.5, size=(5, 2))
        q = rng.uniform(0.05, 1.5, 2)
        batch = div.divergence_to_point(points, q)
        singles = [div.divergence(p, q) for p in points]
        assert np.allclose(batch, singles, atol=1e-9)

    def test_divergence_from_point_matches_scalar(self, div):
        rng = np.random.default_rng(3)
        points = rng.uniform(0.05, 1.5, size=(5, 2))
        p = rng.uniform(0.05, 1.5, 2)
        batch = div.divergence_from_point(p, points)
        singles = [div.divergence(p, q) for q in points]
        assert np.allclose(batch, singles, atol=1e-9)

    def test_right_centroid_is_minimizer(self, div):
        rng = np.random.default_rng(4)
        points = rng.uniform(0.1, 1.0, size=(8, 2))
        centroid = div.right_centroid(points)
        objective = div.divergence_to_point(points, centroid).sum()
        for _ in range(20):
            other = centroid + rng.normal(0, 0.05, 2)
            if np.any(other <= 0):
                continue
            assert div.divergence_to_point(points, other).sum() >= (
                objective - 1e-9
            )

    def test_left_centroid_is_minimizer(self, div):
        rng = np.random.default_rng(5)
        points = rng.uniform(0.1, 1.0, size=(8, 2))
        centroid = div.left_centroid(points)
        objective = div.divergence_from_point(centroid, points).sum()
        for _ in range(20):
            other = centroid + rng.normal(0, 0.05, 2)
            if np.any(other <= 0):
                continue
            assert div.divergence_from_point(other, points).sum() >= (
                objective - 1e-9
            )

    def test_weighted_centroid_weights_validation(self, div):
        points = np.array([[0.5, 0.5], [0.4, 0.6]])
        with pytest.raises(ValueError):
            div.right_centroid(points, weights=[1.0])
        with pytest.raises(ValueError):
            div.right_centroid(points, weights=[0.0, 0.0])


class TestKLSpecifics:
    def test_matches_simplex_kl_on_distributions(self):
        div = KLDivergence()
        pts = sample_uniform_simplex(2, 4, seed=6)
        # Generalized KL equals ordinary KL for normalized inputs.
        assert div.divergence(pts[0], pts[1]) == pytest.approx(
            kl_divergence(pts[0], pts[1]), abs=1e-9
        )

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            KLDivergence(eps=0.0)

    @given(positive_pairs)
    @settings(max_examples=50)
    def test_property_generalized_kl_formula(self, pair):
        div = KLDivergence()
        p, q = pair
        expected = np.sum(p * np.log(p / q) - p + q)
        assert div.divergence(p, q) == pytest.approx(expected, abs=1e-9)


class TestSquaredEuclideanSpecifics:
    def test_closed_form(self):
        div = SquaredEuclidean()
        p = np.array([1.0, 2.0])
        q = np.array([0.0, 0.0])
        assert div.divergence(p, q) == pytest.approx(2.5)

    def test_symmetric(self):
        div = SquaredEuclidean()
        p = np.array([0.7, 1.3])
        q = np.array([0.2, 0.4])
        assert div.divergence(p, q) == pytest.approx(div.divergence(q, p))


class TestItakuraSaitoSpecifics:
    def test_closed_form(self):
        div = ItakuraSaito()
        p = np.array([2.0])
        q = np.array([1.0])
        assert div.divergence(p, q) == pytest.approx(2.0 - np.log(2.0) - 1.0)

    def test_asymmetric(self):
        div = ItakuraSaito()
        p = np.array([2.0, 1.0])
        q = np.array([1.0, 1.0])
        assert div.divergence(p, q) != pytest.approx(div.divergence(q, p))


class TestMahalanobisSpecifics:
    def test_identity_matrix_matches_sqeuclidean(self):
        maha = Mahalanobis(np.eye(3))
        sq = SquaredEuclidean()
        p = np.array([1.0, 0.5, 0.2])
        q = np.array([0.3, 0.3, 0.3])
        assert maha.divergence(p, q) == pytest.approx(sq.divergence(p, q))

    def test_rejects_non_symmetric(self):
        with pytest.raises(ValueError):
            Mahalanobis(np.array([[1.0, 0.2], [0.0, 1.0]]))

    def test_rejects_indefinite(self):
        with pytest.raises(ValueError):
            Mahalanobis(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            Mahalanobis(np.ones((2, 3)))
