"""Correctness battery for reverse-influence sampling (`repro.im.ris`
and the vectorized sampler in `repro.im.imm`).

Three families of checks the RR-set machinery must pass:

* **Exact differential** — on graphs small enough for
  :func:`repro.propagation.exact.exact_spread` to enumerate all
  ``2^m`` live-edge worlds, the unbiased RR estimate
  ``n * coverage / num_sets`` must converge to the exact spread within
  binomial confidence bounds.
* **Root containment** — every sampled RR set contains the root it was
  grown from (the root is the first draw of the per-set stream).
* **Determinism** — the same seed yields bit-identical collections
  regardless of the ``REPRO_SIM_WORKERS`` environment value or the
  explicit worker count (block streams are keyed by position, not by
  where they run).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.im.imm import RRSampler, sample_rr_index
from repro.im.ris import (
    RRSetCollection,
    sample_rr_set,
    sample_rr_sets,
)
from repro.propagation.exact import exact_spread

GAMMA = np.array([0.7, 0.3])

#: Seed sets spanning the tiny graph's topology (source, middle, sink).
SEED_SETS = ([0], [2], [5], [0, 3], [1, 4], [0, 1, 2])


def _binomial_bound(n: int, exact: float, num_sets: int) -> float:
    """A 5-sigma bound on |estimate - exact| for the RR estimator.

    The RR estimate is ``n * B/num_sets`` with
    ``B ~ Binomial(num_sets, exact/n)``, so its standard error is
    ``n * sqrt(p (1 - p) / num_sets)``.
    """
    p = exact / n
    return 5.0 * n * np.sqrt(p * (1.0 - p) / num_sets) + 1e-9


class TestExactDifferential:
    """RR spread estimates converge to the enumerated ground truth."""

    NUM_SETS = 6000

    @pytest.mark.parametrize("seeds", SEED_SETS)
    def test_legacy_collection_matches_exact(self, tiny_graph, seeds):
        exact = exact_spread(tiny_graph, GAMMA, seeds)
        collection = sample_rr_sets(
            tiny_graph, GAMMA, self.NUM_SETS, seed=123
        )
        estimate = collection.spread_estimate(seeds)
        bound = _binomial_bound(
            tiny_graph.num_nodes, exact, self.NUM_SETS
        )
        assert abs(estimate - exact) <= bound

    @pytest.mark.parametrize("seeds", SEED_SETS)
    def test_packed_index_matches_exact(self, tiny_graph, seeds):
        exact = exact_spread(tiny_graph, GAMMA, seeds)
        index = sample_rr_index(
            tiny_graph, GAMMA, self.NUM_SETS, seed=123
        )
        estimate = index.spread_estimate(seeds)
        bound = _binomial_bound(
            tiny_graph.num_nodes, exact, self.NUM_SETS
        )
        assert abs(estimate - exact) <= bound

    def test_both_samplers_agree_with_each_other(self, tiny_graph):
        """Legacy and vectorized estimators target the same quantity."""
        collection = sample_rr_sets(tiny_graph, GAMMA, 4000, seed=7)
        index = sample_rr_index(tiny_graph, GAMMA, 4000, seed=7)
        for seeds in SEED_SETS:
            a = collection.spread_estimate(seeds)
            b = index.spread_estimate(seeds)
            assert abs(a - b) <= _binomial_bound(
                tiny_graph.num_nodes, max(a, b), 4000
            )


class TestRootContainment:
    def test_legacy_set_starts_with_its_root(self, tiny_graph):
        """``sample_rr_set`` draws the root first and lists it first."""
        probs = tiny_graph.item_probabilities(GAMMA)
        in_indptr, in_tails, in_arc_ids = tiny_graph.reverse_view
        in_probs = probs[in_arc_ids]
        visited = np.zeros(tiny_graph.num_nodes, dtype=bool)
        for seed in range(50):
            rng = np.random.default_rng(seed)
            replay = np.random.default_rng(seed)
            expected_root = int(replay.integers(tiny_graph.num_nodes))
            rr = sample_rr_set(in_indptr, in_tails, in_probs, visited, rng)
            assert rr[0] == expected_root
            assert expected_root in rr.tolist()
            assert not visited.any()  # scratch buffer restored

    def test_packed_index_sets_contain_their_roots(self, small_graph):
        gamma = np.full(4, 0.25)
        index = sample_rr_index(small_graph, gamma, 800, seed=31)
        assert index.roots.shape == (800,)
        for set_id in range(index.num_sets):
            root = int(index.roots[set_id])
            assert index.contains(set_id, root)
            assert root in index.members(set_id).tolist()

    def test_members_are_sorted_and_unique(self, small_graph):
        gamma = np.full(4, 0.25)
        index = sample_rr_index(small_graph, gamma, 400, seed=37)
        for set_id in range(index.num_sets):
            members = index.members(set_id)
            assert np.all(np.diff(members.astype(np.int64)) > 0)


class TestDeterminism:
    def test_legacy_same_seed_identical_collections(self, tiny_graph):
        a = sample_rr_sets(tiny_graph, GAMMA, 200, seed=42)
        b = sample_rr_sets(tiny_graph, GAMMA, 200, seed=42)
        assert a.num_sets == b.num_sets
        for x, y in zip(a.sets, b.sets):
            assert np.array_equal(x, y)

    @pytest.mark.parametrize("env_workers", ["1", "3"])
    def test_collection_invariant_under_sim_workers_env(
        self, tiny_graph, monkeypatch, env_workers
    ):
        """REPRO_SIM_WORKERS must never leak into sampled randomness."""
        monkeypatch.setenv("REPRO_SIM_WORKERS", env_workers)
        collection = sample_rr_sets(tiny_graph, GAMMA, 100, seed=11)
        index = sample_rr_index(tiny_graph, GAMMA, 100, seed=11)
        monkeypatch.setenv("REPRO_SIM_WORKERS", "1")
        baseline_collection = sample_rr_sets(
            tiny_graph, GAMMA, 100, seed=11
        )
        baseline_index = sample_rr_index(tiny_graph, GAMMA, 100, seed=11)
        for x, y in zip(collection.sets, baseline_collection.sets):
            assert np.array_equal(x, y)
        assert np.array_equal(index.roots, baseline_index.roots)
        for set_id in range(index.num_sets):
            assert np.array_equal(
                index.members(set_id), baseline_index.members(set_id)
            )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sampler_bit_identical_across_worker_counts(
        self, small_graph, workers
    ):
        gamma = np.array([0.4, 0.3, 0.2, 0.1])
        with RRSampler(small_graph, workers=1) as inline:
            base = inline.sample(gamma, 700, seed=19)
        with RRSampler(small_graph, workers=workers) as pooled:
            wide = pooled.sample(gamma, 700, seed=19)
        for a, b in zip(base, wide):
            assert np.array_equal(a, b)

    def test_requests_draw_disjoint_streams(self, small_graph):
        """Different ``request`` ids must not replay the same sets."""
        gamma = np.full(4, 0.25)
        with RRSampler(small_graph, workers=1) as sampler:
            first = sampler.sample(gamma, 64, seed=5, request=0)
            second = sampler.sample(gamma, 64, seed=5, request=1)
            replayed = sampler.sample(gamma, 64, seed=5, request=0)
        assert not np.array_equal(first[2], second[2])
        assert np.array_equal(first[2], replayed[2])


class TestValidation:
    def test_zero_sets_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="num_sets"):
            sample_rr_sets(tiny_graph, GAMMA, 0)
        with RRSampler(tiny_graph, workers=1) as sampler:
            with pytest.raises(ValueError, match="num_sets"):
                sampler.sample(GAMMA, 0)

    def test_empty_collection_has_no_estimate(self):
        collection = RRSetCollection((), 6)
        with pytest.raises(ValueError, match="no RR sets"):
            collection.spread_estimate([0])

    def test_closed_sampler_rejected(self, tiny_graph):
        sampler = RRSampler(tiny_graph, workers=1)
        sampler.close()
        with pytest.raises(RuntimeError, match="closed"):
            sampler.sample(GAMMA, 10)

    def test_topic_mismatch_rejected(self, tiny_graph):
        with RRSampler(tiny_graph, workers=1) as sampler:
            with pytest.raises(ValueError, match="topics"):
                sampler.sample(np.array([0.5, 0.3, 0.2]), 10)
