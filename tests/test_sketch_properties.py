"""Property-based tests for per-topic composable RR sketches.

Hypothesis draws scalars (graph shape, seeds, budgets); each drawn
tuple seeds numpy generators, so every example is a fully deterministic
graph instance.  The properties are the determinism contracts
:mod:`repro.sketches` promises:

* **vertex identity** — composing at a simplex vertex ``e_z`` with the
  full budget is bit-identical to pool ``z`` itself, and with any
  smaller budget to its prefix,
* **worker invariance** — banks built with different worker counts are
  bit-identical, so composed greedy answers are too,
* **order invariance** — greedy selection over a composition is
  invariant to the topic iteration order,
* **differential freshness** — a bank maintained incrementally through
  a delta stream matches a bank sampled from scratch on the final
  graph, bit for bit,
* **mixture accuracy** — the composed estimator's greedy answer
  achieves a spread (under a large fresh RR referee) within a constant
  factor of a fresh same-budget IMM answer at the query mixture.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SketchConfig
from repro.graph import TopicGraph
from repro.im.imm import RRIndex, RRSampler
from repro.sketches import SketchBank

SETTINGS = settings(max_examples=20, deadline=None)


def _random_graph(
    num_nodes: int, num_arcs: int, num_topics: int, seed: int
) -> TopicGraph:
    """A deterministic random simple topic graph."""
    rng = np.random.default_rng(seed)
    tails = rng.integers(0, num_nodes, size=num_arcs)
    heads = rng.integers(0, num_nodes, size=num_arcs)
    keep = tails != heads
    pairs = np.unique(np.stack([tails[keep], heads[keep]], axis=1), axis=0)
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    probs = rng.uniform(0.1, 0.7, size=(pairs.shape[0], num_topics))
    return TopicGraph.from_arcs(num_nodes, pairs, probs)


def _vertex(num_topics: int, z: int) -> np.ndarray:
    gamma = np.zeros(num_topics)
    gamma[z] = 1.0
    return gamma


@SETTINGS
@given(
    seed=st.integers(0, 2**31 - 1),
    num_topics=st.integers(2, 4),
    budget_frac=st.floats(0.2, 1.0),
)
def test_vertex_compose_is_pool_prefix(seed, num_topics, budget_frac):
    graph = _random_graph(30, 90, num_topics, seed)
    bank = SketchBank.build(graph, SketchConfig(num_sets=40, seed=seed))
    arrays = bank.arrays()
    budget = max(1, int(budget_frac * bank.num_sets))
    for z in range(num_topics):
        values, indptr, roots = bank.compose(
            _vertex(num_topics, z), budget=budget
        )
        lo = int(arrays["pool_offsets"][z])
        size = int(arrays["indptr_matrix"][z, budget])
        assert np.array_equal(values, arrays["values"][lo:lo + size])
        assert np.array_equal(
            indptr, arrays["indptr_matrix"][z, : budget + 1]
        )
        assert np.array_equal(
            roots, arrays["roots_matrix"][z, :budget]
        )


@SETTINGS
@given(
    seed=st.integers(0, 2**31 - 1),
    num_topics=st.integers(2, 4),
    workers=st.integers(2, 4),
)
def test_bank_is_worker_count_invariant(seed, num_topics, workers):
    graph = _random_graph(30, 90, num_topics, seed)
    config = SketchConfig(num_sets=30, seed=seed)
    serial = SketchBank.build(graph, config, workers=1)
    parallel = SketchBank.build(graph, config, workers=workers)
    for name, array in serial.arrays().items():
        assert np.array_equal(array, parallel.arrays()[name]), name
    gamma = np.random.default_rng(seed).dirichlet([1.0] * num_topics)
    assert (
        serial.compose_index(gamma).greedy_select(4)
        == parallel.compose_index(gamma).greedy_select(4)
    )


@SETTINGS
@given(
    seed=st.integers(0, 2**31 - 1),
    num_topics=st.integers(2, 5),
)
def test_greedy_is_topic_order_invariant(seed, num_topics):
    graph = _random_graph(30, 90, num_topics, seed)
    bank = SketchBank.build(graph, SketchConfig(num_sets=30, seed=seed))
    rng = np.random.default_rng(seed)
    gamma = rng.dirichlet([0.7] * num_topics)
    order = rng.permutation(num_topics).tolist()
    base = bank.compose_index(gamma, budget=25).greedy_select(5)
    permuted = bank.compose_index(
        gamma, budget=25, order=order
    ).greedy_select(5)
    assert base == permuted


@SETTINGS
@given(
    seed=st.integers(0, 2**31 - 1),
    num_topics=st.integers(2, 3),
    num_batches=st.integers(1, 3),
)
def test_incremental_bank_matches_scratch_bank(
    seed, num_topics, num_batches
):
    from repro.streaming import DeltaBatch, EdgeDelta
    from repro.streaming.maintainer import IncrementalSketchMaintainer

    graph = _random_graph(24, 70, num_topics, seed)
    if graph.indptr[-1] == 0:
        return
    config = SketchConfig(num_sets=20, seed=seed % 1000)
    identity = np.eye(num_topics)
    live = IncrementalSketchMaintainer(
        graph, identity, num_sets=20, seed_list_length=1,
        seed=config.seed,
    )
    rng = np.random.default_rng(seed)
    for batch_id in range(num_batches):
        current = live.graph
        tail = int(rng.integers(current.num_nodes))
        head = int(rng.integers(current.num_nodes))
        if tail == head:
            head = (head + 1) % current.num_nodes
        probs = tuple(rng.uniform(0.1, 0.7, size=num_topics))
        existing = {
            (int(t), int(current.indices[j]))
            for t in range(current.num_nodes)
            for j in range(current.indptr[t], current.indptr[t + 1])
        }
        op = "reweight" if (tail, head) in existing else "add"
        live.apply_batch(
            DeltaBatch(
                deltas=(
                    EdgeDelta(op=op, tail=tail, head=head,
                              probabilities=probs),
                ),
                timestamp=float(batch_id + 1),
            )
        )
    scratch = IncrementalSketchMaintainer(
        live.graph, identity, num_sets=20, seed_list_length=1,
        seed=config.seed,
    )
    live_bank = SketchBank.from_collections(
        [c.sets for c in live.rr_collections],
        live.graph.num_nodes, config,
    )
    scratch_bank = SketchBank.from_collections(
        [c.sets for c in scratch.rr_collections],
        scratch.graph.num_nodes, config,
    )
    for name, array in live_bank.arrays().items():
        assert np.array_equal(array, scratch_bank.arrays()[name]), name


@SETTINGS
@given(
    seed=st.integers(0, 2**31 - 1),
    num_topics=st.integers(2, 3),
)
def test_composed_answer_tracks_fresh_imm(seed, num_topics):
    """The composed sketch answer is competitive with a fresh build.

    Spread is judged by a large referee RR index sampled at the query
    mixture itself; the composed mixture-of-marginals answer must
    achieve at least 0.8x the spread of a same-budget fresh IMM answer
    (both lazy-greedy, k = 4).
    """
    graph = _random_graph(40, 160, num_topics, seed)
    gamma = np.random.default_rng(seed).dirichlet([1.0] * num_topics)
    k = 4
    bank = SketchBank.build(graph, SketchConfig(num_sets=150, seed=seed))
    sketch_seeds, _ = bank.compose_index(gamma, budget=150).greedy_select(k)
    with RRSampler(graph) as sampler:
        fresh = sampler.sample(gamma, 150, seed=seed + 1, request=7)
        referee_sets = sampler.sample(gamma, 1500, seed=seed + 2, request=8)
    fresh_index = RRIndex(*fresh, graph.num_nodes)
    referee = RRIndex(*referee_sets, graph.num_nodes)
    fresh_seeds, _ = fresh_index.greedy_select(k)
    sketch_spread = referee.spread_of(sketch_seeds)
    fresh_spread = referee.spread_of(fresh_seeds)
    assert sketch_spread >= 0.8 * fresh_spread - 1e-9
