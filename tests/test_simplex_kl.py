"""Tests for the KL divergence functions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simplex import (
    kl_divergence,
    kl_divergence_matrix,
    kl_max_bound,
    sample_uniform_simplex,
    symmetrized_kl,
)

distributions = st.integers(min_value=0, max_value=10_000).map(
    lambda seed: sample_uniform_simplex(2, 5, seed=seed)
)


class TestKLDivergence:
    def test_identity_is_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log(2) + 0.5 * np.log(2 / 3)
        assert kl_divergence(p, q) == pytest.approx(expected, rel=1e-6)

    def test_asymmetry(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_handles_zeros_via_smoothing(self):
        value = kl_divergence([1.0, 0.0], [0.0, 1.0])
        assert np.isfinite(value)
        assert value > 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.5], [0.2, 0.3, 0.5])

    @given(distributions)
    def test_property_nonnegative(self, pair):
        assert kl_divergence(pair[0], pair[1]) >= 0.0


class TestKLDivergenceMatrix:
    def test_matches_scalar_version(self):
        points = sample_uniform_simplex(6, 4, seed=1)
        q = sample_uniform_simplex(1, 4, seed=2)[0]
        batch = kl_divergence_matrix(points, q)
        singles = [kl_divergence(p, q) for p in points]
        assert np.allclose(batch, singles)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kl_divergence_matrix(np.ones((2, 3)) / 3, np.ones(4) / 4)


class TestSymmetrizedKL:
    def test_symmetric(self):
        p = np.array([0.7, 0.3])
        q = np.array([0.4, 0.6])
        assert symmetrized_kl(p, q) == pytest.approx(symmetrized_kl(q, p))

    def test_average_of_sides(self):
        p = np.array([0.7, 0.3])
        q = np.array([0.4, 0.6])
        expected = 0.5 * (kl_divergence(p, q) + kl_divergence(q, p))
        assert symmetrized_kl(p, q) == pytest.approx(expected)


class TestKLMaxBound:
    def test_positive_and_finite(self):
        bound = kl_max_bound(10)
        assert np.isfinite(bound)
        assert bound > 0

    def test_dominates_random_divergences(self):
        bound = kl_max_bound(5)
        points = sample_uniform_simplex(50, 5, seed=3)
        q = sample_uniform_simplex(1, 5, seed=4)[0]
        assert np.all(kl_divergence_matrix(points, q) <= bound)

    def test_larger_eps_smaller_bound(self):
        assert kl_max_bound(5, eps=0.05) < kl_max_bound(5, eps=1e-6)

    def test_rejects_single_topic(self):
        with pytest.raises(ValueError):
            kl_max_bound(1)
