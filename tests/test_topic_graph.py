"""Tests for the CSR topic graph."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graph import TopicGraph
from repro.simplex import uniform_distribution


@pytest.fixture
def simple_graph() -> TopicGraph:
    arcs = [(0, 1), (1, 2), (2, 0), (0, 2)]
    probs = np.array(
        [[0.5, 0.1], [0.4, 0.2], [0.3, 0.3], [0.2, 0.4]]
    )
    return TopicGraph.from_arcs(3, np.asarray(arcs), probs)


class TestConstruction:
    def test_basic_counts(self, simple_graph):
        assert simple_graph.num_nodes == 3
        assert simple_graph.num_arcs == 4
        assert simple_graph.num_topics == 2

    def test_arc_order_independent(self):
        probs = np.array([[0.1, 0.2], [0.3, 0.4]])
        g1 = TopicGraph.from_arcs(3, [(0, 1), (1, 2)], probs)
        g2 = TopicGraph.from_arcs(3, [(1, 2), (0, 1)], probs[::-1])
        assert np.array_equal(g1.indices, g2.indices)
        assert np.allclose(g1.probabilities, g2.probabilities)

    def test_rejects_out_of_range_head(self):
        with pytest.raises(InvalidGraphError):
            TopicGraph.from_arcs(2, [(0, 5)], np.array([[0.5]]))

    def test_rejects_bad_probabilities(self):
        with pytest.raises(InvalidGraphError):
            TopicGraph.from_arcs(2, [(0, 1)], np.array([[1.5]]))
        with pytest.raises(InvalidGraphError):
            TopicGraph.from_arcs(2, [(0, 1)], np.array([[-0.1]]))
        with pytest.raises(InvalidGraphError):
            TopicGraph.from_arcs(2, [(0, 1)], np.array([[np.nan]]))

    def test_rejects_misaligned_probabilities(self):
        with pytest.raises(InvalidGraphError):
            TopicGraph.from_arcs(
                2, [(0, 1)], np.array([[0.5], [0.5]])
            )

    def test_rejects_zero_nodes(self):
        with pytest.raises(InvalidGraphError):
            TopicGraph(0, [0], [], np.empty((0, 1)))

    def test_empty_arc_graph(self):
        g = TopicGraph.from_arcs(3, np.empty((0, 2)), np.empty((0, 2)))
        assert g.num_arcs == 0
        assert g.out_degree(0) == 0


class TestAccessors:
    def test_successors(self, simple_graph):
        assert sorted(simple_graph.successors(0).tolist()) == [1, 2]
        assert simple_graph.successors(1).tolist() == [2]

    def test_predecessors(self, simple_graph):
        assert sorted(simple_graph.predecessors(2).tolist()) == [0, 1]

    def test_degrees(self, simple_graph):
        assert simple_graph.out_degree(0) == 2
        assert simple_graph.in_degree(2) == 2
        assert simple_graph.out_degree().sum() == simple_graph.num_arcs

    def test_arcs_round_trip(self, simple_graph):
        arcs = simple_graph.arcs()
        rebuilt = TopicGraph.from_arcs(
            3, arcs, simple_graph.probabilities
        )
        assert np.array_equal(rebuilt.indices, simple_graph.indices)


class TestItemProbabilities:
    def test_pure_topic_matches_slice(self, simple_graph):
        pure = np.array([1.0, 0.0])
        assert np.allclose(
            simple_graph.item_probabilities(pure),
            simple_graph.topic_slice(0),
        )

    def test_mixture_is_convex_combination(self, simple_graph):
        gamma = np.array([0.3, 0.7])
        expected = (
            0.3 * simple_graph.topic_slice(0)
            + 0.7 * simple_graph.topic_slice(1)
        )
        assert np.allclose(
            simple_graph.item_probabilities(gamma), expected
        )

    def test_uniform_item(self, simple_graph):
        gamma = uniform_distribution(2)
        probs = simple_graph.item_probabilities(gamma)
        assert np.allclose(probs, simple_graph.probabilities.mean(axis=1))

    def test_dimension_mismatch(self, simple_graph):
        with pytest.raises(InvalidGraphError):
            simple_graph.item_probabilities(np.array([1.0, 0.0, 0.0]))

    def test_topic_slice_bounds(self, simple_graph):
        with pytest.raises(InvalidGraphError):
            simple_graph.topic_slice(5)


class TestReverseView:
    def test_consistency(self, simple_graph):
        in_indptr, in_tails, in_arc_ids = simple_graph.reverse_view
        arcs = simple_graph.arcs()
        for node in range(simple_graph.num_nodes):
            lo, hi = in_indptr[node], in_indptr[node + 1]
            for pos in range(lo, hi):
                arc_id = in_arc_ids[pos]
                assert arcs[arc_id][1] == node
                assert arcs[arc_id][0] == in_tails[pos]

    def test_total_count(self, simple_graph):
        in_indptr, _, _ = simple_graph.reverse_view
        assert in_indptr[-1] == simple_graph.num_arcs


class TestNetworkxInterop:
    def test_round_trip(self, simple_graph):
        nx_graph = simple_graph.to_networkx()
        back = TopicGraph.from_networkx(nx_graph)
        assert back.num_nodes == simple_graph.num_nodes
        assert np.array_equal(back.indices, simple_graph.indices)
        assert np.allclose(back.probabilities, simple_graph.probabilities)

    def test_missing_attribute_rejected(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge(0, 1)
        with pytest.raises(InvalidGraphError):
            TopicGraph.from_networkx(g)

    def test_edgeless_graph_needs_topics(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from([0, 1])
        with pytest.raises(InvalidGraphError):
            TopicGraph.from_networkx(g)
        back = TopicGraph.from_networkx(g, num_topics=3)
        assert back.num_topics == 3
