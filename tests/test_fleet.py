"""Tests for the supervised sharded serving fleet (`repro.serving.fleet`).

Covers the fleet components in isolation (circuit breaker state
machine with a scripted clock, hedging policy, topic-affinity routing,
zero-copy shared-memory index publication) and end-to-end: a real
router + worker-process fleet answering queries, surviving a SIGKILLed
worker via shared-memory re-attach, and running under an injected
worker-crash fault plan without ever failing an accepted request.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import FleetConfig, ServingConfig
from repro.resilience import CircuitBreaker, HedgePolicy
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serving import Fleet
from repro.serving.protocol import (
    HttpRequest,
    encode_request,
    json_body,
    read_response,
)
from repro.serving.shared_index import (
    attach_index,
    attach_kind,
    publish_index,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Circuit breaker: exact state-machine scripting
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        now = [0.0]
        breaker = CircuitBreaker(clock=lambda: now[0], **kwargs)
        return breaker, now

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self._breaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self._breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker, now = self._breaker(failure_threshold=1, cooloff_s=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        now[0] = 5.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        # The single probe slot is taken until its outcome lands.
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker, now = self._breaker(failure_threshold=1, cooloff_s=1.0)
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooloff(self):
        breaker, now = self._breaker(failure_threshold=1, cooloff_s=1.0)
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        # Cooloff restarts from the re-trip, not the original trip.
        now[0] = 1.5
        assert breaker.state == OPEN
        now[0] = 2.0
        assert breaker.state == HALF_OPEN

    def test_force_open_skips_the_threshold(self):
        breaker, _ = self._breaker(failure_threshold=99)
        breaker.force_open()
        assert breaker.state == OPEN
        assert breaker.opened_total == 1

    def test_snapshot_shape(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap == {"state": CLOSED, "streak": 1, "opened_total": 0}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooloff_s=0.0)


# ----------------------------------------------------------------------
# Hedging policy
# ----------------------------------------------------------------------
class TestHedgePolicy:
    def test_fixed_delay_wins(self):
        policy = HedgePolicy(delay_ms=25.0)
        policy.observe(9.0)  # ignored: the delay is pinned
        assert policy.delay_s() == pytest.approx(0.025)

    def test_cold_window_uses_the_ceiling(self):
        policy = HedgePolicy(max_ms=200.0)
        assert policy.p99_ms() is None
        assert policy.delay_s() == pytest.approx(0.2)

    def test_derived_delay_tracks_the_window_p99(self):
        policy = HedgePolicy(min_ms=1.0, max_ms=10_000.0, factor=2.0)
        for latency_ms in range(1, 101):  # 1ms .. 100ms
            policy.observe(latency_ms / 1000.0)
        assert policy.p99_ms() == pytest.approx(100.0)
        assert policy.delay_s() == pytest.approx(0.2)  # p99 * factor

    def test_derived_delay_is_clamped(self):
        policy = HedgePolicy(min_ms=50.0, max_ms=60.0)
        policy.observe(0.001)
        assert policy.delay_s() == pytest.approx(0.05)  # floor
        for _ in range(600):
            policy.observe(10.0)
        assert policy.delay_s() == pytest.approx(0.06)  # ceiling

    def test_snapshot_shape(self):
        policy = HedgePolicy(delay_ms=40.0)
        policy.observe(0.02)
        snap = policy.snapshot()
        assert snap["configured_delay_ms"] == 40.0
        assert snap["derived_delay_ms"] == 40.0
        assert snap["window_size"] == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay_ms=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_ms=10.0, max_ms=5.0)


# ----------------------------------------------------------------------
# Topic-affinity routing (no processes spawned: Fleet.__init__ is cheap)
# ----------------------------------------------------------------------
class TestShardOrder:
    def _fleet(self, small_index, workers=4, seed=0):
        return Fleet(
            small_index,
            ServingConfig(port=0),
            FleetConfig(workers=workers, affinity_seed=seed),
        )

    def test_order_is_a_permutation(self, small_index):
        fleet = self._fleet(small_index)
        order = fleet.shard_order([0.4, 0.3, 0.2, 0.1])
        assert sorted(order) == [0, 1, 2, 3]

    def test_same_seed_same_routing(self, small_index):
        gamma = [0.7, 0.1, 0.1, 0.1]
        first = self._fleet(small_index, seed=5).shard_order(gamma)
        second = self._fleet(small_index, seed=5).shard_order(gamma)
        assert first == second

    def test_unnormalized_gamma_routes_identically(self, small_index):
        fleet = self._fleet(small_index)
        assert fleet.shard_order([0.4, 0.3, 0.2, 0.1]) == (
            fleet.shard_order([4.0, 3.0, 2.0, 1.0])
        )

    def test_missing_gamma_rotates_over_all_shards(self, small_index):
        fleet = self._fleet(small_index, workers=3)
        firsts = {fleet.shard_order(None)[0] for _ in range(3)}
        assert firsts == {0, 1, 2}

    def test_extract_gamma_from_query_and_batch(self, small_index):
        fleet = self._fleet(small_index)
        gamma = [0.4, 0.3, 0.2, 0.1]
        single = HttpRequest(
            "POST", "/query", body=json_body({"gamma": gamma, "k": 3})
        )
        batch = HttpRequest(
            "POST",
            "/query_batch",
            body=json_body({"queries": [{"gamma": gamma, "k": 3}]}),
        )
        assert fleet._extract_gamma("/query", single) == gamma
        assert fleet._extract_gamma("/query_batch", batch) == gamma
        # Wrong dimensionality / garbage bodies fall back to rotation.
        short = HttpRequest(
            "POST", "/query", body=json_body({"gamma": [0.5, 0.5], "k": 3})
        )
        assert fleet._extract_gamma("/query", short) is None
        junk = HttpRequest("POST", "/query", body=b"not json")
        assert fleet._extract_gamma("/query", junk) is None


# ----------------------------------------------------------------------
# Shared-memory index publication
# ----------------------------------------------------------------------
class TestSharedIndex:
    def test_round_trip_answers_match(self, small_index, small_workload):
        payload, spec = publish_index(small_index)
        try:
            assert attach_kind(spec) == "shm"
            attached = attach_index(spec)
            assert attached.num_index_points == small_index.num_index_points
            assert attached.graph.num_nodes == small_index.graph.num_nodes
            for gamma in small_workload.items[:4]:
                original = small_index.query(gamma, 5)
                mirrored = attached.query(gamma, 5)
                assert list(mirrored.seeds) == list(original.seeds)
        finally:
            payload.release()

    def test_seed_lists_survive_packing(self, small_index):
        payload, spec = publish_index(small_index)
        try:
            attached = attach_index(spec)
            assert [s.nodes for s in attached.seed_lists] == [
                s.nodes for s in small_index.seed_lists
            ]
            assert [s.algorithm for s in attached.seed_lists] == [
                s.algorithm for s in small_index.seed_lists
            ]
        finally:
            payload.release()


# ----------------------------------------------------------------------
# End-to-end: router + worker processes over shared memory
# ----------------------------------------------------------------------
async def _fleet_post(host, port, gamma, k=5, target="/query", request_id=None):
    """One request on its own connection -> (status, headers, payload)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = {"gamma": [float(v) for v in gamma], "k": k}
        extra = {"X-Request-Id": request_id} if request_id else None
        writer.write(
            encode_request(
                "POST", target, json_body(body), extra_headers=extra
            )
        )
        await writer.drain()
        status, headers, payload = await read_response(reader)
        return status, headers, json.loads(payload) if payload else {}
    finally:
        writer.close()


def _fast_fleet_config(**overrides):
    base = dict(
        workers=2,
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=1.5,
        probe_interval_s=0.5,
        respawn_backoff_s=0.05,
        dispatch_timeout_s=10.0,
    )
    base.update(overrides)
    return FleetConfig(**base)


async def _wait_for(predicate, timeout_s=60.0, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.05)
    raise TimeoutError(f"timed out waiting for {what}")


class TestFleetEndToEnd:
    def test_query_kill_respawn_query(self, small_index):
        async def scenario():
            fleet = Fleet(
                small_index, ServingConfig(port=0), _fast_fleet_config()
            )
            await fleet.start()
            try:
                assert all(
                    h.snapshot()["attach"] == "shm" for h in fleet._handles
                )
                gamma = [0.4, 0.3, 0.2, 0.1]
                status, headers, payload = await _fleet_post(
                    "127.0.0.1", fleet.port, gamma
                )
                assert status == 200
                assert payload["seeds"]
                assert headers["x-shard"] in ("0", "1")

                # SIGKILL one shard: the supervisor must respawn it and
                # the replacement must re-attach from shared memory (no
                # disk reload — its snapshot says so).
                victim = fleet._handles[0]
                victim.process.kill()
                await _wait_for(
                    lambda: victim.generation == 1
                    and victim.snapshot()["state"] == "ready",
                    what="shard 0 respawn",
                )
                snap = victim.snapshot()
                assert snap["restarts"] == 1
                assert snap["attach"] == "shm"

                status, _, payload = await _fleet_post(
                    "127.0.0.1", fleet.port, gamma
                )
                assert status == 200
                assert payload["seeds"]
                report = fleet.fleet_status()
                assert report["dispatch"]["accepted"] == (
                    report["dispatch"]["answered"]
                    + report["dispatch"]["shed"]
                )
            finally:
                await fleet.aclose()

        asyncio.run(scenario())

    def test_status_routes_and_metrics_aggregation(self, small_index):
        async def scenario():
            fleet = Fleet(
                small_index, ServingConfig(port=0), _fast_fleet_config()
            )
            await fleet.start()
            try:
                gamma = [0.4, 0.3, 0.2, 0.1]
                for _ in range(3):
                    status, _, _ = await _fleet_post(
                        "127.0.0.1", fleet.port, gamma
                    )
                    assert status == 200

                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", fleet.port
                )
                try:
                    writer.write(
                        encode_request("GET", "/fleet", b"")
                        + encode_request("GET", "/healthz", b"")
                    )
                    await writer.drain()
                    status, _, body = await read_response(reader)
                    report = json.loads(body)
                    assert status == 200
                    assert len(report["workers"]) == 2
                    assert report["dispatch"]["accepted"] == 3
                    status, _, body = await read_response(reader)
                    assert status == 200
                    assert json.loads(body)["status"] == "ok"
                finally:
                    writer.close()

                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", fleet.port
                )
                try:
                    writer.write(encode_request("GET", "/metrics", b""))
                    await writer.drain()
                    status, _, body = await read_response(reader)
                finally:
                    writer.close()
                assert status == 200
                text = body.decode()
                # Per-shard samples plus the plain fleet-wide sum the
                # loadgen scraper reads.
                assert 'shard="0"' in text and 'shard="1"' in text
                plain = {
                    line.rpartition(" ")[0]
                    for line in text.splitlines()
                    if line and not line.startswith("#")
                }
                assert "repro_cache_hits_total" in plain
                assert "repro_cache_misses_total" in plain
            finally:
                await fleet.aclose()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Chaos: injected worker crashes must never fail an accepted request
# ----------------------------------------------------------------------
class TestFleetChaos:
    def test_no_accepted_request_fails_under_crash_faults(
        self, small_index, monkeypatch
    ):
        # Children inherit the plan through the environment; the rate
        # draw is keyed on (shard, request), so a re-dispatched request
        # rolls independently on the sibling shard.
        monkeypatch.setenv("REPRO_FAULTS", "worker:mode=crash:rate=0.08")

        async def scenario():
            fleet = Fleet(
                small_index,
                ServingConfig(port=0),
                _fast_fleet_config(redispatch_attempts=2),
            )
            await fleet.start()
            try:
                rng = np.random.default_rng(3)
                statuses = []
                for i, gamma in enumerate(
                    rng.dirichlet(np.full(4, 0.8), size=40)
                ):
                    # Respawn takes seconds (a fresh interpreter) while
                    # this loop fires in microseconds; wait for a shard
                    # that is both ready and trusted (closed breaker) so
                    # the test measures fault handling, not how fast
                    # this box forks Python.
                    await _wait_for(
                        lambda: any(
                            s["state"] == "ready"
                            and s["breaker"]["state"] == "closed"
                            for s in map(
                                lambda h: h.snapshot(), fleet._handles
                            )
                        ),
                        what="a trusted ready shard",
                    )
                    # Explicit request ids pin the fault draws, so the
                    # crash pattern is identical on every run.
                    status, _, _ = await _fleet_post(
                        "127.0.0.1",
                        fleet.port,
                        gamma,
                        request_id=f"chaos-{i}",
                    )
                    statuses.append(status)
                # Let the supervisor finish respawning anything that
                # died on the final requests before snapshotting.
                await _wait_for(
                    lambda: all(
                        h.snapshot()["state"] == "ready"
                        for h in fleet._handles
                    ),
                    what="fleet recovery",
                )
                return statuses, fleet.fleet_status()
            finally:
                await fleet.aclose()

        statuses, report = asyncio.run(scenario())
        # Every accepted request got a terminal, non-5xx-error answer:
        # 200 (answered, possibly after re-dispatch) or 503 (honest
        # shed when no shard could take it) — never a 500, never a
        # dropped connection.
        assert len(statuses) == 40
        assert set(statuses) <= {200, 503}
        assert statuses.count(200) >= 32
        dispatch = report["dispatch"]
        assert dispatch["accepted"] == (
            dispatch["answered"] + dispatch["shed"]
        )
        # The plan's 8% crash rate across 40 queries makes at least one
        # kill overwhelmingly likely; respawns must have re-attached
        # shared memory.
        restarts = sum(w["restarts"] for w in report["workers"])
        assert restarts >= 1
        assert all(
            w["attach"] == "shm"
            for w in report["workers"]
            if w["state"] == "ready"
        )


# ----------------------------------------------------------------------
# Hedging end-to-end: a hung primary is beaten by the backup
# ----------------------------------------------------------------------
class TestFleetHedging:
    def test_backup_answers_while_primary_hangs(
        self, small_index, monkeypatch
    ):
        # Hang every request on shard 0 for far longer than the hedge
        # delay; with hedging on, the sibling's answer must land.
        monkeypatch.setenv(
            "REPRO_FAULTS", "worker:mode=hang:shard=0:keep=3"
        )

        async def scenario():
            fleet = Fleet(
                small_index,
                ServingConfig(port=0),
                _fast_fleet_config(
                    hedge=True,
                    hedge_delay_ms=100.0,
                    dispatch_timeout_s=20.0,
                ),
            )
            await fleet.start()
            try:
                # Route to shard 0 first by aiming at its anchor.
                anchor = fleet._anchors[0].tolist()
                assert fleet.shard_order(anchor)[0] == 0
                started = time.monotonic()
                status, headers, payload = await _fleet_post(
                    "127.0.0.1", fleet.port, anchor
                )
                elapsed = time.monotonic() - started
                return status, headers, payload, elapsed, fleet.hedge_total
            finally:
                await fleet.aclose()

        status, headers, payload, elapsed, hedged = asyncio.run(scenario())
        assert status == 200
        assert payload["seeds"]
        assert headers["x-shard"] == "1"
        assert hedged >= 1
        assert elapsed < 2.5  # well below the injected 3s hang


# ----------------------------------------------------------------------
# CLI: fleet serve drains gracefully even with a crashed shard
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serve_artifacts(tmp_path_factory):
    """A tiny dataset + index built through the CLI, for the CLI test."""
    from repro.cli import main

    data_dir = tmp_path_factory.mktemp("fleet-data")
    assert main(
        [
            "generate", "--out", str(data_dir),
            "--nodes", "80", "--topics", "3", "--items", "24", "--seed", "1",
        ]
    ) == 0
    index_path = data_dir / "index.npz"
    assert main(
        [
            "build", "--data", str(data_dir), "--out", str(index_path),
            "--index-points", "8", "--dirichlet-samples", "300",
            "--seed-list-length", "5", "--ris-sets", "200", "--seed", "2",
        ]
    ) == 0
    return data_dir, index_path


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_FAULTS", None)
    return env


def _child_pids(parent_pid: int) -> list[int]:
    """Direct children of ``parent_pid`` via /proc (Linux)."""
    children = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        # Field 4 of /proc/<pid>/stat (after the parenthesised comm).
        ppid = int(stat.rsplit(")", 1)[1].split()[1])
        if ppid == parent_pid:
            children.append(int(entry.name))
    return children


@pytest.mark.skipif(
    not Path("/proc").is_dir(), reason="needs /proc to find worker pids"
)
def test_cli_fleet_serve_drains_with_a_crashed_shard(serve_artifacts):
    data_dir, index_path = serve_artifacts
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--data", str(data_dir), "--index", str(index_path),
            "--port", "0", "--workers", "2",
            "--heartbeat-interval", "0.1", "--heartbeat-timeout", "1.5",
        ],
        env=_cli_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert "serving" in banner, banner
        port = int(banner.split(":")[-1].split()[0])

        async def poke():
            return await _fleet_post("127.0.0.1", port, [0.5, 0.3, 0.2], k=3)

        status, _, payload = asyncio.run(poke())
        assert status == 200
        assert payload["seeds"]

        # SIGKILL one worker, then SIGTERM the router while that shard
        # is down: the drain must still complete cleanly and answer
        # everything it accepted.
        workers = _child_pids(proc.pid)
        assert workers, "no worker children found"
        os.kill(workers[0], signal.SIGKILL)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "drained; all accepted requests answered" in out
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup path
            proc.kill()
            proc.wait()
