"""Tests for topic-distribution validation and smoothing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidDistributionError
from repro.simplex import (
    as_distribution,
    as_distribution_matrix,
    is_distribution,
    smooth,
    uniform_distribution,
)


class TestIsDistribution:
    def test_valid(self):
        assert is_distribution([0.5, 0.25, 0.25])

    def test_negative_entry(self):
        assert not is_distribution([1.2, -0.2])

    def test_wrong_sum(self):
        assert not is_distribution([0.5, 0.4])

    def test_nan(self):
        assert not is_distribution([np.nan, 1.0])

    def test_empty(self):
        assert not is_distribution([])

    def test_2d_rejected(self):
        assert not is_distribution([[0.5, 0.5]])


class TestAsDistribution:
    def test_returns_float64(self):
        arr = as_distribution([1, 0, 0])
        assert arr.dtype == np.float64

    def test_rejects_bad_sum(self):
        with pytest.raises(InvalidDistributionError):
            as_distribution([0.7, 0.7])

    def test_rejects_negative(self):
        with pytest.raises(InvalidDistributionError):
            as_distribution([1.5, -0.5])

    def test_rejects_empty(self):
        with pytest.raises(InvalidDistributionError):
            as_distribution([])

    def test_rejects_2d(self):
        with pytest.raises(InvalidDistributionError):
            as_distribution([[0.5, 0.5]])

    def test_tolerance(self):
        as_distribution([0.5 + 1e-10, 0.5])  # within tol: ok


class TestAsDistributionMatrix:
    def test_valid(self):
        mat = as_distribution_matrix([[0.5, 0.5], [1.0, 0.0]])
        assert mat.shape == (2, 2)

    def test_rejects_bad_row(self):
        with pytest.raises(InvalidDistributionError) as info:
            as_distribution_matrix([[0.5, 0.5], [0.9, 0.2]])
        assert "rows" in str(info.value)

    def test_rejects_1d(self):
        with pytest.raises(InvalidDistributionError):
            as_distribution_matrix([0.5, 0.5])


class TestSmooth:
    def test_removes_zeros(self):
        out = smooth(np.array([1.0, 0.0, 0.0]))
        assert np.all(out > 0)
        assert np.isclose(out.sum(), 1.0)

    def test_matrix_rows_normalized(self):
        out = smooth(np.array([[1.0, 0.0], [0.5, 0.5]]))
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_idempotent_on_interior_points(self):
        vec = np.array([0.3, 0.3, 0.4])
        assert np.allclose(smooth(vec), vec)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=2,
            max_size=10,
        ).filter(lambda xs: sum(xs) > 1e-6)
    )
    def test_property_output_is_distribution(self, values):
        arr = np.asarray(values)
        arr = arr / arr.sum()
        out = smooth(arr)
        assert np.isclose(out.sum(), 1.0)
        assert np.all(out > 0)


class TestUniformDistribution:
    def test_values(self):
        assert np.allclose(uniform_distribution(4), [0.25] * 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidDistributionError):
            uniform_distribution(0)
