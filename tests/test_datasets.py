"""Tests for the synthetic Flixster stand-in and query workloads."""

import numpy as np
import pytest

from repro.datasets import (
    FlixsterLikeDataset,
    generate_flixster_like,
    generate_query_workload,
)
from repro.simplex import is_distribution


class TestFlixsterLike:
    def test_shapes(self):
        ds = generate_flixster_like(
            num_nodes=150, num_topics=5, num_items=40, seed=1
        )
        assert ds.graph.num_nodes == 150
        assert ds.graph.num_topics == 5
        assert ds.item_topics.shape == (40, 5)
        assert ds.num_items == 40
        assert ds.num_topics == 5
        assert ds.log is None

    def test_catalog_rows_are_distributions(self):
        ds = generate_flixster_like(
            num_nodes=100, num_topics=4, num_items=30, seed=2
        )
        for row in ds.item_topics:
            assert is_distribution(row)
            assert np.all(row > 0)

    def test_with_log(self):
        ds = generate_flixster_like(
            num_nodes=120,
            num_topics=4,
            num_items=15,
            with_log=True,
            seed=3,
        )
        assert ds.log is not None
        assert ds.log.num_items == 15
        assert ds.log.num_nodes == 120

    def test_deterministic(self):
        a = generate_flixster_like(
            num_nodes=80, num_topics=3, num_items=20, seed=4
        )
        b = generate_flixster_like(
            num_nodes=80, num_topics=3, num_items=20, seed=4
        )
        assert np.allclose(a.item_topics, b.item_topics)
        assert np.array_equal(a.graph.indices, b.graph.indices)

    def test_too_few_items_rejected(self):
        with pytest.raises(ValueError):
            generate_flixster_like(num_items=1)

    def test_catalog_is_sparse_mixture(self):
        # Low concentration => most items dominated by few topics.
        ds = generate_flixster_like(
            num_nodes=100, num_topics=8, num_items=200, seed=5
        )
        max_mass = ds.item_topics.max(axis=1)
        assert np.median(max_mass) > 0.4


class TestQueryWorkload:
    def test_split(self, small_dataset):
        workload = generate_query_workload(
            small_dataset.item_topics, 20, seed=6
        )
        assert workload.num_queries == 20
        assert workload.kinds.count("data-driven") == 10
        assert workload.kinds.count("uniform") == 10
        assert workload.subset("data-driven").shape == (
            10,
            small_dataset.num_topics,
        )

    def test_all_rows_valid(self, small_dataset):
        workload = generate_query_workload(
            small_dataset.item_topics, 15, seed=7
        )
        for row in workload.items:
            assert is_distribution(row)

    def test_custom_fraction(self, small_dataset):
        workload = generate_query_workload(
            small_dataset.item_topics,
            10,
            data_driven_fraction=1.0,
            seed=8,
        )
        assert workload.kinds.count("uniform") == 0

    def test_data_driven_closer_to_catalog_mode(self, small_dataset):
        # Data-driven queries should look like catalog items more often
        # than uniform ones do: compare max-topic-mass distributions.
        workload = generate_query_workload(
            small_dataset.item_topics, 60, seed=9
        )
        dd = workload.subset("data-driven").max(axis=1).mean()
        uni = workload.subset("uniform").max(axis=1).mean()
        catalog = small_dataset.item_topics.max(axis=1).mean()
        assert abs(dd - catalog) < abs(uni - catalog)

    def test_invalid_args(self, small_dataset):
        with pytest.raises(ValueError):
            generate_query_workload(small_dataset.item_topics, 0)
        with pytest.raises(ValueError):
            generate_query_workload(
                small_dataset.item_topics, 5, data_driven_fraction=1.5
            )

    def test_kind_label_validation(self):
        from repro.datasets.workloads import QueryWorkload

        with pytest.raises(ValueError):
            QueryWorkload(
                items=np.array([[0.5, 0.5]]), kinds=("a", "b")
            )
