"""Integration tests: every table/figure experiment runs at TEST scale
and reproduces the paper's qualitative shape."""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig3_index_selection,
    fig4_distance_correlation,
    fig5_retrieval_recall,
    fig6_accuracy,
    fig7_runtime,
    fig8_spread,
    fig9_tradeoff,
    get_context,
    table1_aggregation,
    table3_spread_by_k,
)
from repro.experiments.presets import PRESETS, TEST


@pytest.fixture(scope="module")
def context():
    return get_context("test")


class TestPresets:
    def test_registry(self):
        assert {"test", "demo", "paper-shape"} <= set(PRESETS)

    def test_scaled_override(self):
        scaled = TEST.scaled(num_queries=3)
        assert scaled.num_queries == 3
        assert scaled.num_nodes == TEST.num_nodes

    def test_config_derivation(self):
        config = TEST.config()
        assert config.num_index_points == TEST.num_index_points

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            get_context("bogus")


class TestContext:
    def test_ground_truth_prefix_consistency(self, context):
        full = context.ground_truth(0)
        short = context.ground_truth(0, 5)
        assert short.nodes == full.nodes[:5]

    def test_ground_truth_cached(self, context):
        a = context.ground_truth(1)
        b = context.ground_truth(1)
        assert a is b

    def test_spread_deterministic(self, context):
        gamma = context.workload.items[0]
        seeds = context.ground_truth(0, 5)
        a = context.spread(gamma, seeds, seed_offset=1).mean
        b = context.spread(gamma, seeds, seed_offset=1).mean
        assert a == b


class TestFig3:
    def test_pipeline_covers_at_least_as_well_as_uniform(self, context):
        result = fig3_index_selection.run(context, num_eval_samples=60)
        inflex = result.coverage["dirichlet+kmeans++ (INFLEX)"]
        uniform = result.coverage["uniform simplex (space-based)"]
        assert inflex < uniform
        assert result.ilr_index.shape == (
            context.index.num_index_points,
            context.scale.num_topics - 1,
        )
        assert "Figure 3" in result.render()


class TestFig4:
    def test_positive_correlation(self, context):
        result = fig4_distance_correlation.run(context, num_pairs=250)
        assert result.pearson > 0.2
        assert result.spearman > 0.2
        centers, means = result.binned_means(5)
        # Trend: farthest bin has larger Kendall-tau than nearest bin.
        assert means[-1] > means[0]
        assert "Pearson" in result.render()


class TestFig5:
    def test_recall_monotone_in_leaves(self, context):
        result = fig5_retrieval_recall.run(context, num_queries=15)
        for k in result.k_values:
            series = [
                result.recall[(k, leaves)] for leaves in result.leaf_budgets
            ]
            assert all(
                later >= earlier - 1e-9
                for earlier, later in zip(series, series[1:])
            )
            # Full budget should retrieve most of the true neighbors.
            assert series[-1] >= 0.6

    def test_ad_cheaper_than_full_budget(self, context):
        result = fig5_retrieval_recall.run(context, num_queries=15)
        assert result.ad_mean_computations <= result.fixed_mean_computations[
            max(result.leaf_budgets)
        ]
        assert 1.0 <= result.ad_mean_leaves <= max(result.leaf_budgets)
        assert "Figure 5" in result.render()


class TestTable1:
    def test_weighted_beats_unweighted(self, context):
        result = table1_aggregation.run(context)
        means = result.method_means()
        assert means["borda_w"] <= means["borda"] + 1e-9
        assert means["copeland_w"] <= means["copeland"] + 1e-9

    def test_copeland_w_competitive(self, context):
        # The paper's winner: weighted Copeland should be the best (or
        # within noise of the best) aggregation method.
        result = table1_aggregation.run(context)
        means = result.method_means()
        best = min(means.values())
        assert means["copeland_w"] <= best + 0.02
        assert "Table 1" in result.render()


class TestFig6:
    def test_inflex_beats_approx_ad(self, context):
        result = fig6_accuracy.run(context)
        means = result.strategy_means()
        assert means["inflex"] <= means["approx-ad"] + 1e-9

    def test_exact_knn_is_best_or_tied(self, context):
        result = fig6_accuracy.run(context)
        means = result.strategy_means()
        assert means["exact-knn"] <= min(means.values()) + 0.02

    def test_paired_comparison_api(self, context):
        result = fig6_accuracy.run(context)
        k = result.k_values[0]
        test = result.compare("inflex", "approx-ad", k)
        assert 0.0 <= test.p_value <= 1.0
        assert "Figure 6" in result.render()


class TestFig7:
    def test_all_queries_fast(self, context):
        result = fig7_runtime.run(context)
        # Every strategy answers in milliseconds (paper: < 30 ms).
        assert all(v < 50.0 for v in result.mean_total_ms.values())
        assert "Figure 7" in result.render()

    def test_selection_speeds_up_aggregation(self, context):
        result = fig7_runtime.run(context)
        assert (
            result.mean_aggregation_ms["approx-knn-sel"]
            <= result.mean_aggregation_ms["approx-knn"] + 1e-6
        )


class TestFig8Table2:
    @pytest.fixture(scope="class")
    def spread_result(self, context):
        return fig8_spread.run(context)

    def test_method_ordering(self, spread_result):
        tic = spread_result.mean_spread("offline TIC")
        inflex = spread_result.mean_spread("INFLEX")
        ic = spread_result.mean_spread("offline IC")
        random = spread_result.mean_spread("random")
        # The paper's headline ordering.
        assert random < ic < tic
        assert inflex > ic
        # INFLEX within a modest margin of the ground truth.
        assert inflex >= 0.85 * tic

    def test_topic_blind_clearly_worse(self, spread_result):
        tic = spread_result.mean_spread("offline TIC")
        ic = spread_result.mean_spread("offline IC")
        assert ic <= 0.9 * tic

    def test_nrmse_ordering(self, spread_result):
        _, inflex_nrmse = spread_result.error_metrics("INFLEX")
        _, random_nrmse = spread_result.error_metrics("random")
        assert inflex_nrmse < random_nrmse
        assert "NRMSE" in spread_result.render()


class TestTable3:
    def test_rows_and_accuracy(self, context):
        result = table3_spread_by_k.run(context)
        for k in result.k_values:
            inflex_mean, _, offline_mean, _, _, nrmse = result.row(k)
            assert inflex_mean > 0
            assert nrmse < 0.5
            assert inflex_mean <= offline_mean * 1.25
        assert "Table 3" in result.render()


class TestFig9:
    def test_points_and_frontier(self, context):
        result = fig9_tradeoff.run(context)
        assert set(result.points) == {
            "exactKNN",
            "INFLEX",
            "approxKNN",
            "approxAD",
            "approxKNN+Sel",
        }
        frontier = result.frontier()
        assert len(frontier) >= 1
        assert "Figure 9" in result.render()


class TestAblations:
    def test_kl_side(self, context):
        result = ablations.run_kl_side(context)
        assert set(result.distances) == {
            "right (paper)",
            "left",
            "symmetrized",
        }
        assert all(0 <= v <= 1 for v in result.distances.values())
        assert "sidedness" in result.render()

    def test_selection_threshold(self, context):
        result = ablations.run_selection_threshold(
            context, thresholds=(0.001, 0.05)
        )
        # A tighter threshold triggers the stop earlier and keeps fewer
        # lists; a larger threshold is harder to trigger and keeps more.
        assert (
            result.mean_lists_kept[0.001]
            <= result.mean_lists_kept[0.05] + 1e-9
        )
        assert "threshold" in result.render()

    def test_index_size(self, context):
        result = ablations.run_index_size(context, sizes=(6, 18))
        assert result.mean_distance[18] <= result.mean_distance[6] + 0.1
        assert "index size" in result.render()
