"""Tests for the Bregman ball tree: construction, projection, searches."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bbtree import (
    BBTree,
    can_prune,
    exact_nearest_neighbors,
    inflex_search,
    leaf_limited_search,
    project_to_ball,
    similar_enough,
)
from repro.divergence import KLDivergence, SquaredEuclidean
from repro.simplex import kl_divergence_matrix, sample_uniform_simplex


@pytest.fixture(scope="module")
def tree_and_points():
    points = sample_uniform_simplex(300, 6, seed=61)
    tree = BBTree(points, seed=62)
    return tree, points


class TestConstruction:
    def test_all_points_in_exactly_one_leaf(self, tree_and_points):
        tree, points = tree_and_points
        seen: list[int] = []
        for leaf in tree.leaves():
            seen.extend(leaf.point_ids.tolist())
        assert sorted(seen) == list(range(points.shape[0]))

    def test_balls_cover_their_subtrees(self, tree_and_points):
        tree, points = tree_and_points
        div = tree.divergence

        def check(node):
            ids = []

            def collect(n):
                if n.is_leaf:
                    ids.extend(n.point_ids.tolist())
                else:
                    for child in n.children:
                        collect(child)

            collect(node)
            divs = div.divergence_to_point(points[ids], node.center)
            assert divs.max() <= node.radius + 1e-9
            for child in node.children:
                check(child)

        check(tree.root)

    def test_leaf_size_respected(self):
        points = sample_uniform_simplex(100, 4, seed=63)
        tree = BBTree(points, leaf_size=10, seed=64)
        assert all(
            leaf.point_ids.size <= 10 or leaf is tree.root
            for leaf in tree.leaves()
        )

    def test_fixed_branching(self):
        points = sample_uniform_simplex(64, 3, seed=65)
        tree = BBTree(points, branching=2, leaf_size=8, seed=66)
        def check(node):
            if not node.is_leaf:
                assert len(node.children) <= 2
                for child in node.children:
                    check(child)
        check(tree.root)

    def test_single_point_tree(self):
        tree = BBTree(np.array([[0.5, 0.5]]), seed=67)
        assert tree.num_leaves() == 1
        assert tree.root.is_leaf

    def test_duplicate_points_terminate(self):
        points = np.tile(np.array([[0.25, 0.75]]), (40, 1))
        tree = BBTree(points, leaf_size=8, seed=68)
        assert tree.num_points == 40  # construction must terminate

    def test_other_divergences_supported(self):
        points = np.random.default_rng(69).uniform(0.1, 1.0, (50, 3))
        tree = BBTree(points, divergence=SquaredEuclidean(), seed=70)
        result = exact_nearest_neighbors(tree, points[7], 1)
        assert result.indices[0] == 7

    def test_invalid_args(self):
        points = sample_uniform_simplex(10, 3, seed=71)
        with pytest.raises(ValueError):
            BBTree(np.empty((0, 3)))
        with pytest.raises(ValueError):
            BBTree(points, leaf_size=0)
        with pytest.raises(ValueError):
            BBTree(points, max_branch=1)
        with pytest.raises(ValueError):
            BBTree(points, branching=1)


class TestProjection:
    def test_query_inside_ball(self):
        div = KLDivergence()
        center = np.array([0.5, 0.5])
        result = project_to_ball(div, center, 1.0, np.array([0.45, 0.55]))
        assert result.inside
        assert result.min_divergence == 0.0

    def test_projection_bounds_brute_force(self):
        div = KLDivergence()
        rng = np.random.default_rng(72)
        for _ in range(10):
            center = rng.dirichlet(np.ones(4))
            radius = 0.05
            query = rng.dirichlet(np.ones(4))
            if div.divergence(query, center) <= radius:
                continue
            result = project_to_ball(div, center, radius, query)
            # Brute force: the min over random in-ball points can never
            # be *smaller* than ~the projection (projection is optimal).
            samples = rng.dirichlet(np.ones(4) * 5, size=4000)
            in_ball = samples[
                div.divergence_to_point(samples, center) <= radius
            ]
            if in_ball.shape[0] == 0:
                continue
            brute = div.divergence_to_point(in_ball, query).min()
            assert result.min_divergence <= brute + 1e-3

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            project_to_ball(
                KLDivergence(), np.array([0.5, 0.5]), -1.0, np.array([0.5, 0.5])
            )

    def test_can_prune_consistency(self):
        div = KLDivergence()
        center = np.array([0.8, 0.1, 0.1])
        query = np.array([0.1, 0.1, 0.8])
        distance = div.divergence(center, query)
        # Far threshold: prunable; tiny threshold: not prunable.
        assert can_prune(div, center, 0.01, query, distance * 2) is False
        assert can_prune(div, center, 0.01, query, distance * 0.1) is True

    def test_can_prune_query_inside(self):
        div = KLDivergence()
        center = np.array([0.5, 0.5])
        assert not can_prune(div, center, 5.0, np.array([0.4, 0.6]), 0.5)

    def test_can_prune_zero_threshold(self):
        div = KLDivergence()
        assert not can_prune(
            div, np.array([0.5, 0.5]), 0.1, np.array([0.9, 0.1]), 0.0
        )


class TestExactSearch:
    def test_matches_brute_force(self, tree_and_points):
        tree, points = tree_and_points
        rng = np.random.default_rng(73)
        for _ in range(10):
            query = rng.dirichlet(np.ones(points.shape[1]))
            result = exact_nearest_neighbors(tree, query, 8)
            brute = np.argsort(kl_divergence_matrix(points, query))[:8]
            assert set(result.indices.tolist()) == set(brute.tolist())

    def test_divergences_sorted(self, tree_and_points):
        tree, _ = tree_and_points
        query = sample_uniform_simplex(1, 6, seed=74)[0]
        result = exact_nearest_neighbors(tree, query, 5)
        assert np.all(np.diff(result.divergences) >= -1e-12)

    def test_k_bounds(self, tree_and_points):
        tree, _ = tree_and_points
        query = sample_uniform_simplex(1, 6, seed=75)[0]
        with pytest.raises(ValueError):
            exact_nearest_neighbors(tree, query, 0)
        with pytest.raises(ValueError):
            exact_nearest_neighbors(tree, query, tree.num_points + 1)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_property_exactness(self, seed):
        points = sample_uniform_simplex(80, 4, seed=seed)
        tree = BBTree(points, seed=seed + 1, leaf_size=8)
        query = sample_uniform_simplex(1, 4, seed=seed + 2)[0]
        result = exact_nearest_neighbors(tree, query, 3)
        brute = np.argsort(kl_divergence_matrix(points, query))[:3]
        assert set(result.indices.tolist()) == set(brute.tolist())


class TestLeafLimitedSearch:
    def test_recall_improves_with_leaves(self, tree_and_points):
        tree, points = tree_and_points
        queries = sample_uniform_simplex(15, 6, seed=76)
        recalls = []
        for budget in (1, tree.num_leaves()):
            hits = 0
            for query in queries:
                result = leaf_limited_search(
                    tree, query, 5, max_leaves=budget
                )
                true5 = set(
                    np.argsort(kl_divergence_matrix(points, query))[
                        :5
                    ].tolist()
                )
                hits += len(set(result.indices.tolist()) & true5)
            recalls.append(hits / (5 * len(queries)))
        assert recalls[-1] >= recalls[0]
        assert recalls[-1] == pytest.approx(1.0)

    def test_stats_leaf_budget(self, tree_and_points):
        tree, _ = tree_and_points
        query = sample_uniform_simplex(1, 6, seed=77)[0]
        result = leaf_limited_search(tree, query, 5, max_leaves=3)
        assert result.stats.leaves_visited <= 3

    def test_invalid_args(self, tree_and_points):
        tree, _ = tree_and_points
        query = sample_uniform_simplex(1, 6, seed=78)[0]
        with pytest.raises(ValueError):
            leaf_limited_search(tree, query, 5, max_leaves=0)
        with pytest.raises(ValueError):
            leaf_limited_search(tree, query, 0)


class TestInflexSearch:
    def test_epsilon_exact_match(self, tree_and_points):
        tree, points = tree_and_points
        result = inflex_search(tree, points[123])
        assert result.stats.epsilon_match
        assert result.indices.tolist() == [123]

    def test_returns_sorted_neighbors(self, tree_and_points):
        tree, _ = tree_and_points
        query = sample_uniform_simplex(1, 6, seed=79)[0]
        result = inflex_search(tree, query)
        assert np.all(np.diff(result.divergences) >= -1e-12)
        assert len(result) > 0

    def test_max_leaves_respected(self, tree_and_points):
        tree, _ = tree_and_points
        query = sample_uniform_simplex(1, 6, seed=80)[0]
        result = inflex_search(tree, query, max_leaves=2, use_ad_test=False)
        assert result.stats.leaves_visited <= 2

    def test_ad_test_stops_earlier_on_average(self, tree_and_points):
        tree, _ = tree_and_points
        queries = sample_uniform_simplex(20, 6, seed=81)
        with_ad = np.mean(
            [
                inflex_search(tree, q, max_leaves=5).stats.leaves_visited
                for q in queries
            ]
        )
        without_ad = np.mean(
            [
                inflex_search(
                    tree, q, max_leaves=5, use_ad_test=False
                ).stats.leaves_visited
                for q in queries
            ]
        )
        assert with_ad <= without_ad

    def test_invalid_args(self, tree_and_points):
        tree, _ = tree_and_points
        query = sample_uniform_simplex(1, 6, seed=82)[0]
        with pytest.raises(ValueError):
            inflex_search(tree, query, max_leaves=0)
        with pytest.raises(ValueError):
            inflex_search(tree, query, epsilon=-1.0)

    def test_search_result_top(self, tree_and_points):
        tree, _ = tree_and_points
        query = sample_uniform_simplex(1, 6, seed=83)[0]
        result = inflex_search(tree, query, use_ad_test=False)
        top = result.top(3)
        assert len(top) == min(3, len(result))
        with pytest.raises(ValueError):
            result.top(-1)


class TestSimilarEnough:
    def test_small_population_not_similar(self):
        points = sample_uniform_simplex(3, 4, seed=84)
        query = sample_uniform_simplex(1, 4, seed=85)[0]
        assert not similar_enough(points, query)

    def test_tight_cluster_around_query_is_similar(self):
        rng = np.random.default_rng(86)
        query = np.array([0.4, 0.3, 0.3])
        cloud = np.clip(query + rng.normal(0, 0.02, (30, 3)), 1e-4, None)
        cloud /= cloud.sum(axis=1, keepdims=True)
        assert similar_enough(cloud, query, alpha=0.05)

    def test_bimodal_cloud_not_similar(self):
        rng = np.random.default_rng(87)
        a = np.clip(
            np.array([0.9, 0.05, 0.05]) + rng.normal(0, 0.01, (25, 3)),
            1e-4,
            None,
        )
        b = np.clip(
            np.array([0.05, 0.05, 0.9]) + rng.normal(0, 0.01, (25, 3)),
            1e-4,
            None,
        )
        cloud = np.vstack([a, b])
        cloud /= cloud.sum(axis=1, keepdims=True)
        query = np.array([1 / 3, 1 / 3, 1 / 3])
        assert not similar_enough(cloud, query, alpha=0.05)
