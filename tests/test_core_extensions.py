"""Tests for the future-work extensions: what-if, segments, auto-size."""

import numpy as np
import pytest

from repro.core import (
    auto_size_index,
    compare_positionings,
    estimate_segment_spread,
    sample_segment_rr_sets,
    segment_influence_maximization,
)
from repro.im import random_seeds
from repro.propagation import estimate_spread


class TestWhatIf:
    def test_report_structure(self, small_index, small_dataset):
        z = small_dataset.num_topics
        candidates = {
            "pure-0": np.eye(z)[0],
            "pure-1": np.eye(z)[1],
            "blend": np.full(z, 1.0 / z),
        }
        report = compare_positionings(
            small_index, candidates, 5, num_simulations=40, seed=1
        )
        assert len(report.candidates) == 3
        assert report.best.spread.mean == max(
            c.spread.mean for c in report.candidates
        )
        assert 0.0 <= report.seed_overlap("pure-0", "pure-1") <= 1.0
        assert "What-if" in report.render()

    def test_different_topics_different_seeds(self, small_index, small_dataset):
        z = small_dataset.num_topics
        candidates = {"a": np.eye(z)[0], "b": np.eye(z)[1]}
        report = compare_positionings(
            small_index, candidates, 8, num_simulations=20, seed=2
        )
        # On an interest-structured graph, pure topics should target
        # (at least partly) different users.
        assert report.seed_overlap("a", "b") < 1.0

    def test_empty_candidates_rejected(self, small_index):
        with pytest.raises(ValueError):
            compare_positionings(small_index, {}, 5)


class TestSegmentQueries:
    @pytest.fixture(scope="class")
    def segment(self, small_dataset):
        rng = np.random.default_rng(3)
        return rng.choice(
            small_dataset.graph.num_nodes, size=40, replace=False
        )

    def test_segment_spread_bounded(self, small_dataset, segment):
        gamma = small_dataset.item_topics[0]
        seeds = [0, 1, 2]
        seg = estimate_segment_spread(
            small_dataset.graph,
            gamma,
            seeds,
            segment,
            num_simulations=100,
            seed=4,
        )
        total = estimate_spread(
            small_dataset.graph, gamma, seeds, num_simulations=100, seed=4
        )
        assert 0 <= seg.mean <= len(segment)
        assert seg.mean <= total.mean + 1e-9

    def test_targeted_beats_random_within_segment(
        self, small_dataset, segment
    ):
        gamma = small_dataset.item_topics[1]
        targeted = segment_influence_maximization(
            small_dataset.graph, gamma, 5, segment, num_sets=3000, seed=5
        )
        random = random_seeds(small_dataset.graph.num_nodes, 5, seed=6)
        s_targeted = estimate_segment_spread(
            small_dataset.graph,
            gamma,
            targeted.nodes,
            segment,
            num_simulations=300,
            seed=7,
        ).mean
        s_random = estimate_segment_spread(
            small_dataset.graph,
            gamma,
            random.nodes,
            segment,
            num_simulations=300,
            seed=7,
        ).mean
        assert s_targeted > s_random

    def test_rr_sets_rooted_in_segment(self, small_dataset, segment):
        gamma = small_dataset.item_topics[2]
        collection = sample_segment_rr_sets(
            small_dataset.graph, gamma, segment, 30, seed=8
        )
        assert collection.num_nodes == len(set(segment.tolist()))
        # Every RR set contains its root, which is a segment member;
        # at least one member per set must be in the segment.
        members = set(int(v) for v in segment)
        for rr in collection.sets:
            assert members & set(rr.tolist())

    def test_validation(self, small_dataset):
        gamma = small_dataset.item_topics[0]
        with pytest.raises(ValueError):
            estimate_segment_spread(
                small_dataset.graph, gamma, [0], [], num_simulations=10
            )
        with pytest.raises(ValueError):
            estimate_segment_spread(
                small_dataset.graph,
                gamma,
                [0],
                [10**6],
                num_simulations=10,
            )
        with pytest.raises(ValueError):
            segment_influence_maximization(
                small_dataset.graph, gamma, 2, [0, 1], num_sets=0
            )


class TestAutoSize:
    def test_coverage_decreases_with_h(self, small_dataset):
        result = auto_size_index(
            small_dataset.item_topics,
            candidate_sizes=(4, 16, 64),
            num_cloud_samples=1500,
            num_validation_queries=100,
            improvement_tolerance=0.001,
            seed=9,
        )
        values = [result.coverage[h] for h in result.candidate_sizes]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_stops_at_knee(self, small_dataset):
        result = auto_size_index(
            small_dataset.item_topics,
            candidate_sizes=(4, 8, 16, 32, 64),
            num_cloud_samples=1200,
            num_validation_queries=80,
            improvement_tolerance=0.9,  # absurdly strict: stop early
            seed=10,
        )
        assert result.chosen_size <= 8
        assert "Auto-sizing" in result.render()

    def test_validation(self, small_dataset):
        with pytest.raises(ValueError):
            auto_size_index(
                small_dataset.item_topics, candidate_sizes=(1,)
            )
        with pytest.raises(ValueError):
            auto_size_index(
                small_dataset.item_topics, improvement_tolerance=2.0
            )
