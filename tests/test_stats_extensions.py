"""Tests for the exact spread oracle, bootstrap CIs, latency experiment,
batch build/query APIs."""

import numpy as np
import pytest

from repro.core import InflexConfig, InflexIndex, offline_seed_lists_batch
from repro.experiments import get_context, latency
from repro.graph import TopicGraph
from repro.propagation import (
    estimate_spread,
    exact_activation_probabilities,
    exact_spread,
)
from repro.stats import bootstrap_mean, bootstrap_mean_ratio


def _tiny(p: float, num_arcs: int = 3) -> TopicGraph:
    arcs = [(i, i + 1) for i in range(num_arcs)]
    probs = np.full((num_arcs, 1), p)
    return TopicGraph.from_arcs(num_arcs + 1, np.asarray(arcs), probs)


class TestExactSpread:
    def test_chain_closed_form(self):
        p = 0.4
        g = _tiny(p)
        expected = 1 + p + p**2 + p**3
        assert exact_spread(g, [1.0], [0]) == pytest.approx(expected)

    def test_matches_monte_carlo(self, tiny_graph):
        gamma = np.array([0.7, 0.3])
        exact = exact_spread(tiny_graph, gamma, [0])
        mc = estimate_spread(
            tiny_graph, gamma, [0], num_simulations=20000, seed=1
        )
        assert mc.mean == pytest.approx(exact, abs=4 * mc.standard_error)

    def test_activation_probabilities(self):
        p = 0.5
        g = _tiny(p, num_arcs=2)
        probs = exact_activation_probabilities(g, [1.0], [0])
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(p)
        assert probs[2] == pytest.approx(p * p)

    def test_sum_of_marginals_is_spread(self, tiny_graph):
        gamma = np.array([0.5, 0.5])
        total = exact_spread(tiny_graph, gamma, [0, 3])
        marginals = exact_activation_probabilities(tiny_graph, gamma, [0, 3])
        assert marginals.sum() == pytest.approx(total)

    def test_empty_seeds(self, tiny_graph):
        assert exact_spread(tiny_graph, [0.5, 0.5], []) == 0.0

    def test_too_many_arcs_rejected(self, small_graph):
        gamma = np.full(small_graph.num_topics, 1.0 / small_graph.num_topics)
        with pytest.raises(ValueError):
            exact_spread(small_graph, gamma, [0])

    def test_invalid_seed_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            exact_spread(tiny_graph, [1.0, 0.0], [99])


class TestBootstrap:
    def test_mean_interval_contains_truth(self):
        rng = np.random.default_rng(2)
        covered = 0
        for i in range(30):
            sample = rng.normal(5.0, 1.0, 80)
            interval = bootstrap_mean(sample, seed=i)
            if 5.0 in interval:
                covered += 1
        # ~95% nominal coverage; allow slack for 30 trials.
        assert covered >= 25

    def test_ratio_interval(self):
        rng = np.random.default_rng(3)
        a = rng.normal(10.0, 1.0, 100)
        b = rng.normal(5.0, 1.0, 100)
        interval = bootstrap_mean_ratio(a, b, seed=4)
        assert interval.estimate == pytest.approx(
            a.mean() / b.mean()
        )
        assert 2.0 in interval
        assert interval.width < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([1.0])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean([1.0, 2.0], num_resamples=5)
        with pytest.raises(ValueError):
            bootstrap_mean_ratio([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            bootstrap_mean_ratio([1.0, 2.0], [1.0, -1.0])


class TestLatencyExperiment:
    def test_percentiles_ordered(self):
        context = get_context("test")
        result = latency.run(context, repeats=1)
        for strategy in result.samples:
            p50 = result.percentiles[(strategy, 50)]
            p90 = result.percentiles[(strategy, 90)]
            p99 = result.percentiles[(strategy, 99)]
            assert p50 <= p90 <= p99
            assert p99 < 100.0  # milliseconds
        assert "latency" in result.render()

    def test_repeats_validated(self):
        context = get_context("test")
        with pytest.raises(ValueError):
            latency.run(context, repeats=0)


class TestBatchAPIs:
    def test_offline_batch_matches_serial(self, small_dataset):
        gammas = small_dataset.item_topics[:3]
        seeds = [11, 22, 33]
        batch = offline_seed_lists_batch(
            small_dataset.graph,
            gammas,
            5,
            ris_num_sets=500,
            seeds=seeds,
            workers=1,
        )
        from repro.core import offline_seed_list

        for gamma, seed, result in zip(gammas, seeds, batch):
            solo = offline_seed_list(
                small_dataset.graph, gamma, 5, ris_num_sets=500, seed=seed
            )
            assert solo.nodes == result.nodes

    def test_offline_batch_parallel_identical(self, small_dataset):
        gammas = small_dataset.item_topics[:4]
        seeds = [1, 2, 3, 4]
        serial = offline_seed_lists_batch(
            small_dataset.graph, gammas, 4, ris_num_sets=300,
            seeds=seeds, workers=1,
        )
        parallel = offline_seed_lists_batch(
            small_dataset.graph, gammas, 4, ris_num_sets=300,
            seeds=seeds, workers=2,
        )
        for a, b in zip(serial, parallel):
            assert a.nodes == b.nodes

    def test_batch_validation(self, small_dataset):
        with pytest.raises(ValueError):
            offline_seed_lists_batch(
                small_dataset.graph,
                small_dataset.item_topics[:2],
                3,
                seeds=[1],
            )
        with pytest.raises(ValueError):
            offline_seed_lists_batch(
                small_dataset.graph,
                small_dataset.item_topics[:2],
                3,
                workers=0,
            )

    def test_parallel_build_matches_serial(self, small_dataset):
        config = InflexConfig(
            num_index_points=6,
            num_dirichlet_samples=300,
            seed_list_length=4,
            ris_num_sets=300,
            knn=3,
            seed=9,
        )
        serial = InflexIndex.build(
            small_dataset.graph, small_dataset.item_topics, config
        )
        parallel = InflexIndex.build(
            small_dataset.graph,
            small_dataset.item_topics,
            config,
            workers=2,
        )
        assert np.allclose(serial.index_points, parallel.index_points)
        for a, b in zip(serial.seed_lists, parallel.seed_lists):
            assert a.nodes == b.nodes

    def test_query_batch(self, small_index, small_workload):
        answers = small_index.query_batch(small_workload.items[:3], 5)
        assert len(answers) == 3
        for gamma, answer in zip(small_workload.items[:3], answers):
            solo = small_index.query(gamma, 5)
            assert solo.seeds.nodes == answer.seeds.nodes
