"""Tests for the INFLEX core: config, query types, aggregation, index."""

import numpy as np
import pytest

from repro.core import (
    InflexConfig,
    InflexIndex,
    STRATEGIES,
    TimAnswer,
    TimQuery,
    aggregate_seed_lists,
    load_index,
    offline_ic_seed_list,
    offline_seed_list,
    save_index,
)
from repro.errors import QueryError
from repro.im import SeedList
from repro.simplex import sample_uniform_simplex


class TestConfig:
    def test_defaults_valid(self):
        InflexConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_index_points": 1},
            {"num_dirichlet_samples": 10, "num_index_points": 20},
            {"seed_list_length": 0},
            {"im_engine": "bogus"},
            {"aggregator": "bogus"},
            {"max_leaves": 0},
            {"knn": 0},
            {"ad_alpha": 0.0},
            {"epsilon": -1.0},
            {"selection_threshold": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            InflexConfig(**kwargs)


class TestTimQuery:
    def test_valid(self):
        q = TimQuery(np.array([0.5, 0.5]), 3)
        assert q.num_topics == 2

    def test_invalid_gamma(self):
        with pytest.raises(QueryError):
            TimQuery(np.array([0.5, 0.2]), 3)

    def test_invalid_k(self):
        with pytest.raises(QueryError):
            TimQuery(np.array([0.5, 0.5]), 0)


class TestTimAnswer:
    def test_validation(self):
        seeds = SeedList((1, 2))
        with pytest.raises(ValueError):
            TimAnswer(
                seeds=seeds,
                strategy="inflex",
                neighbor_ids=(1,),
                neighbor_divergences=(0.1, 0.2),
            )
        with pytest.raises(ValueError):
            TimAnswer(
                seeds=seeds,
                strategy="inflex",
                neighbor_ids=(1,),
                neighbor_divergences=(0.1,),
                neighbor_weights=(0.5, 0.5),
            )


class TestAggregateSeedLists:
    def test_single_list_passthrough(self):
        result = aggregate_seed_lists([SeedList((4, 2, 9))], 2)
        assert result.nodes == (4, 2)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            aggregate_seed_lists([SeedList((1,))], 0)

    def test_unknown_aggregator(self):
        with pytest.raises(ValueError):
            aggregate_seed_lists(
                [SeedList((1,)), SeedList((2,))], 1, aggregator="nope"
            )

    def test_empty_input(self):
        with pytest.raises(ValueError):
            aggregate_seed_lists([], 1)

    def test_consensus(self):
        lists = [SeedList((1, 2, 3)), SeedList((1, 3, 2)), SeedList((1, 2, 4))]
        result = aggregate_seed_lists(lists, 3)
        assert result.nodes[0] == 1


class TestOfflineSeedLists:
    def test_engines_agree_on_easy_instance(self, small_dataset):
        graph = small_dataset.graph
        gamma = small_dataset.item_topics[0]
        ris = offline_seed_list(
            graph, gamma, 3, engine="ris", ris_num_sets=4000, seed=1
        )
        celfpp = offline_seed_list(
            graph, gamma, 3, engine="celf++", num_snapshots=150, seed=2
        )
        # Both should find the same top seed on a clear-cut instance.
        assert ris.nodes[0] == celfpp.nodes[0]

    def test_celf_variants_identical(self, small_dataset):
        graph = small_dataset.graph
        gamma = small_dataset.item_topics[1]
        kwargs = {"num_snapshots": 80, "seed": 3}
        a = offline_seed_list(graph, gamma, 3, engine="celf", **kwargs)
        b = offline_seed_list(graph, gamma, 3, engine="celf++", **kwargs)
        c = offline_seed_list(graph, gamma, 3, engine="greedy", **kwargs)
        assert a.nodes == b.nodes == c.nodes

    def test_unknown_engine(self, small_dataset):
        with pytest.raises(ValueError):
            offline_seed_list(
                small_dataset.graph,
                small_dataset.item_topics[0],
                2,
                engine="bogus",
            )

    def test_offline_ic_uses_uniform(self, small_dataset):
        result = offline_ic_seed_list(
            small_dataset.graph, 3, ris_num_sets=2000, seed=4
        )
        assert len(result) == 3


class TestInflexIndex:
    def test_build_artifacts(self, small_index, small_dataset):
        assert small_index.num_index_points == 20
        assert len(small_index.seed_lists) == 20
        assert all(len(sl) == 12 for sl in small_index.seed_lists)
        assert small_index.dirichlet is not None
        assert small_index.tree.num_points == 20
        assert np.allclose(small_index.index_points.sum(axis=1), 1.0)

    def test_build_validations(self, small_dataset):
        config = InflexConfig(num_index_points=4, num_dirichlet_samples=100)
        wrong_topics = np.ones((10, small_dataset.num_topics + 1))
        wrong_topics /= wrong_topics.sum(axis=1, keepdims=True)
        with pytest.raises(ValueError):
            InflexIndex.build(small_dataset.graph, wrong_topics, config)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_query_contract(self, small_index, small_workload, strategy):
        gamma = small_workload.items[0]
        index = small_index
        if strategy == "sketch":
            # The session index is shared read-only across modules, so
            # the bank goes on a structural copy, not the fixture.
            from repro.core import SketchConfig
            from repro.sketches import SketchBank

            index = InflexIndex(
                small_index.graph,
                small_index.index_points,
                list(small_index.seed_lists),
                small_index.config,
                dirichlet=small_index.dirichlet,
                tree=small_index.tree,
            )
            index.attach_sketches(
                SketchBank.build(
                    small_index.graph, SketchConfig(num_sets=200, seed=7)
                )
            )
        answer = index.query(gamma, 5, strategy=strategy)
        assert len(answer.seeds) == 5
        assert len(set(answer.seeds.nodes)) == 5
        assert answer.strategy == strategy
        assert answer.timing.total > 0
        if strategy == "sketch":
            # Composition answers from per-topic pools, not index lists.
            assert answer.num_neighbors_used == 0
        else:
            assert answer.num_neighbors_used >= 1
        assert all(
            0 <= v < small_index.graph.num_nodes for v in answer.seeds
        )

    def test_query_deterministic(self, small_index, small_workload):
        gamma = small_workload.items[1]
        a = small_index.query(gamma, 6)
        b = small_index.query(gamma, 6)
        assert a.seeds.nodes == b.seeds.nodes

    def test_epsilon_match_on_index_point(self, small_index):
        point = small_index.index_points[7]
        answer = small_index.query(point, 5)
        assert answer.epsilon_match
        assert answer.neighbor_ids == (7,)
        assert answer.seeds.nodes == small_index.seed_lists[7].top(5).nodes

    def test_unknown_strategy(self, small_index, small_workload):
        with pytest.raises(QueryError):
            small_index.query(small_workload.items[0], 3, strategy="nope")

    def test_topic_mismatch(self, small_index):
        with pytest.raises(QueryError):
            small_index.query(np.array([0.5, 0.5]), 3)

    def test_invalid_k(self, small_index, small_workload):
        with pytest.raises(QueryError):
            small_index.query(small_workload.items[0], 0)

    def test_k_beyond_list_length_uses_union(self, small_index, small_workload):
        # l = 12 per list, but aggregation can return up to the union of
        # the retrieved lists (use approx-knn: no selection pruning, so
        # several lists always enter the union).
        answer = small_index.query(
            small_workload.items[2], 20, strategy="approx-knn"
        )
        assert len(answer.seeds) > 12

    def test_neighbor_metadata_sorted(self, small_index, small_workload):
        answer = small_index.query(small_workload.items[3], 5)
        divs = np.asarray(answer.neighbor_divergences)
        assert np.all(np.diff(divs) >= -1e-12)
        weights = np.asarray(answer.neighbor_weights)
        assert np.all(weights >= 0) and np.all(weights <= 1)

    def test_progress_callback(self, small_dataset):
        stages = []
        config = InflexConfig(
            num_index_points=4,
            num_dirichlet_samples=200,
            seed_list_length=3,
            ris_num_sets=200,
            seed=5,
        )
        InflexIndex.build(
            small_dataset.graph,
            small_dataset.item_topics,
            config,
            progress=lambda stage, done, total: stages.append(stage),
        )
        assert "dirichlet" in stages
        assert "seed-lists" in stages

    def test_constructor_validations(self, small_dataset, small_index):
        config = small_index.config
        points = small_index.index_points
        lists = small_index.seed_lists
        with pytest.raises(ValueError):
            InflexIndex(small_dataset.graph, points, lists[:-1], config)


class TestPersistence:
    def test_round_trip(self, small_index, small_dataset, small_workload, tmp_path):
        path = tmp_path / "index.npz"
        save_index(small_index, path)
        loaded = load_index(path, small_dataset.graph)
        assert loaded.num_index_points == small_index.num_index_points
        assert np.allclose(loaded.index_points, small_index.index_points)
        for a, b in zip(loaded.seed_lists, small_index.seed_lists):
            assert a.nodes == b.nodes
        # Same answers after reload (tree rebuilt deterministically).
        gamma = small_workload.items[0]
        assert (
            loaded.query(gamma, 5).seeds.nodes
            == small_index.query(gamma, 5).seeds.nodes
        )

    def test_config_preserved(self, small_index, small_dataset, tmp_path):
        path = tmp_path / "index.npz"
        save_index(small_index, path)
        loaded = load_index(path, small_dataset.graph)
        assert loaded.config == small_index.config


class TestIndexStats:
    def test_stats_contents(self, small_index):
        stats = small_index.stats()
        assert stats["num_index_points"] == small_index.num_index_points
        assert stats["tree_leaves"] >= 1
        assert stats["tree_depth"] >= 1
        assert stats["memory_bytes"] == small_index.memory_footprint()
        assert stats["im_engine"] == "imm"
        assert len(stats["dirichlet_alpha"]) == small_index.graph.num_topics

    def test_stats_json_serializable(self, small_index):
        import json

        json.dumps(small_index.stats())

    def test_assembled_index_has_no_dirichlet(self, small_index, small_dataset):
        from repro.core import InflexIndex

        rebuilt = InflexIndex(
            small_dataset.graph,
            small_index.index_points,
            small_index.seed_lists,
            small_index.config,
        )
        assert "dirichlet_alpha" not in rebuilt.stats()
