"""Tests for the Dirichlet distribution and Minka MLE."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, InvalidDistributionError
from repro.simplex import Dirichlet, fit_dirichlet_mle


class TestDirichlet:
    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(InvalidDistributionError):
            Dirichlet(np.array([1.0, 0.0]))

    def test_rejects_short_alpha(self):
        with pytest.raises(InvalidDistributionError):
            Dirichlet(np.array([1.0]))

    def test_mean(self):
        d = Dirichlet(np.array([2.0, 6.0]))
        assert np.allclose(d.mean(), [0.25, 0.75])

    def test_sample_shape_and_support(self):
        d = Dirichlet(np.array([0.3, 0.3, 0.4]))
        samples = d.sample(100, seed=1)
        assert samples.shape == (100, 3)
        assert np.allclose(samples.sum(axis=1), 1.0)
        assert np.all(samples > 0)

    def test_sample_deterministic_with_seed(self):
        d = Dirichlet(np.array([1.0, 2.0]))
        assert np.allclose(d.sample(5, seed=3), d.sample(5, seed=3))

    def test_sample_negative_rejected(self):
        with pytest.raises(ValueError):
            Dirichlet(np.array([1.0, 1.0])).sample(-1)

    def test_log_pdf_uniform_alpha_is_constant(self):
        d = Dirichlet(np.ones(3))
        pts = d.sample(10, seed=2)
        values = d.log_pdf(pts)
        # Dirichlet(1,1,1) is uniform: density Gamma(3) = 2 everywhere.
        assert np.allclose(values, np.log(2.0), atol=1e-6)

    def test_log_pdf_dimension_mismatch(self):
        d = Dirichlet(np.ones(3))
        with pytest.raises(InvalidDistributionError):
            d.log_pdf(np.ones((2, 4)) / 4)


class TestFitDirichletMLE:
    @pytest.mark.parametrize("method", ["newton", "fixed-point"])
    def test_recovers_alpha(self, method):
        true = Dirichlet(np.array([2.0, 0.8, 4.0, 1.2]))
        samples = true.sample(6000, seed=5)
        fitted = fit_dirichlet_mle(samples, method=method)
        assert np.allclose(fitted.alpha, true.alpha, rtol=0.12)

    def test_newton_and_fixed_point_agree(self):
        true = Dirichlet(np.array([1.5, 2.5, 0.7]))
        samples = true.sample(3000, seed=6)
        a = fit_dirichlet_mle(samples, method="newton").alpha
        b = fit_dirichlet_mle(samples, method="fixed-point").alpha
        assert np.allclose(a, b, rtol=1e-3)

    def test_likelihood_at_fit_beats_perturbation(self):
        true = Dirichlet(np.array([1.0, 3.0]))
        samples = true.sample(2000, seed=7)
        fitted = fit_dirichlet_mle(samples)
        perturbed = Dirichlet(fitted.alpha * 1.5)
        assert fitted.mean_log_likelihood(samples) >= (
            perturbed.mean_log_likelihood(samples)
        )

    def test_unknown_method_rejected(self):
        samples = Dirichlet(np.ones(3)).sample(50, seed=8)
        with pytest.raises(ValueError):
            fit_dirichlet_mle(samples, method="bogus")

    def test_too_few_observations_rejected(self):
        with pytest.raises(InvalidDistributionError):
            fit_dirichlet_mle(np.array([[0.5, 0.5]]))

    def test_strict_convergence_flag(self):
        samples = Dirichlet(np.array([2.0, 2.0])).sample(500, seed=9)
        with pytest.raises(ConvergenceError):
            fit_dirichlet_mle(samples, max_iter=1, strict=True, tol=1e-14)

    def test_concentrated_catalog(self):
        # Sparse, low-concentration data (topic-model-like catalogs).
        true = Dirichlet(np.full(5, 0.3))
        samples = true.sample(5000, seed=10)
        fitted = fit_dirichlet_mle(samples)
        assert np.allclose(fitted.alpha, true.alpha, rtol=0.2)
