"""Property-based tests for the bit-packed :class:`repro.im.imm.RRIndex`.

Hypothesis drives randomized set families through both storage layouts
(``uint64`` bitmaps and sorted-uint32 CSR) and checks the invariants
the IMM engine leans on:

* pack/unpack roundtrip — ``members(i)`` returns exactly the sets that
  went in, in both layouts;
* coverage bookkeeping — ``coverage_counts``/``covered_count`` agree
  with a naive Python-set recount;
* greedy max coverage — the selection is invariant under any
  permutation of the stored sets, and the two layouts select
  identically.

Style follows ``tests/test_cascade_properties.py``: scalars are drawn
by Hypothesis, bulk structure by a numpy generator seeded from a drawn
seed, so shrinking stays effective while the data stays graph-shaped.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.im.imm import RRIndex

SETTINGS = settings(max_examples=25, deadline=None)


def _random_family(num_nodes: int, num_sets: int, seed: int):
    """Build a random RR-set family as plain Python sets plus arrays.

    Each set has at least one member (its root — real RR sets always
    contain the node they were grown from).
    """
    rng = np.random.default_rng(seed)
    members: list[np.ndarray] = []
    roots: list[int] = []
    for _ in range(num_sets):
        size = int(rng.integers(1, num_nodes + 1))
        chosen = rng.choice(num_nodes, size=size, replace=False)
        chosen = np.sort(chosen).astype(np.uint32)
        members.append(chosen)
        roots.append(int(rng.choice(chosen)))
    values = (
        np.concatenate(members)
        if members
        else np.zeros(0, dtype=np.uint32)
    )
    indptr = np.zeros(num_sets + 1, dtype=np.int64)
    np.cumsum([m.size for m in members], out=indptr[1:])
    return members, values, indptr, np.asarray(roots, dtype=np.uint32)


@given(
    num_nodes=st.integers(min_value=1, max_value=80),
    num_sets=st.integers(min_value=0, max_value=40),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    storage=st.sampled_from(["bitmap", "csr"]),
)
@SETTINGS
def test_pack_unpack_roundtrip(num_nodes, num_sets, seed, storage):
    members, values, indptr, roots = _random_family(
        num_nodes, num_sets, seed
    )
    index = RRIndex(values, indptr, roots, num_nodes, storage=storage)
    assert index.num_sets == num_sets
    assert index.storage == storage
    for set_id, expected in enumerate(members):
        unpacked = index.members(set_id)
        assert unpacked.dtype == np.uint32
        assert np.array_equal(unpacked, expected)
        assert index.contains(set_id, int(roots[set_id]))
        absent = [
            v
            for v in range(num_nodes)
            if v not in set(expected.tolist())
        ]
        if absent:
            assert not index.contains(set_id, absent[0])


@given(
    num_nodes=st.integers(min_value=1, max_value=60),
    num_sets=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    storage=st.sampled_from(["bitmap", "csr"]),
)
@SETTINGS
def test_coverage_matches_naive_recount(num_nodes, num_sets, seed, storage):
    members, values, indptr, roots = _random_family(
        num_nodes, num_sets, seed
    )
    index = RRIndex(values, indptr, roots, num_nodes, storage=storage)
    as_sets = [set(m.tolist()) for m in members]
    counts = index.coverage_counts()
    for node in range(num_nodes):
        naive = sum(1 for s in as_sets if node in s)
        assert counts[node] == naive
    rng = np.random.default_rng(seed + 1)
    seeds = rng.choice(
        num_nodes, size=min(3, num_nodes), replace=False
    ).tolist()
    naive_covered = sum(
        1 for s in as_sets if not set(seeds).isdisjoint(s)
    )
    assert index.covered_count(seeds) == naive_covered
    assert index.spread_estimate(seeds) == pytest.approx(
        num_nodes * naive_covered / num_sets
    )


@given(
    num_nodes=st.integers(min_value=2, max_value=50),
    num_sets=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    k=st.integers(min_value=1, max_value=6),
    storage=st.sampled_from(["bitmap", "csr"]),
)
@SETTINGS
def test_greedy_invariant_under_set_permutation(
    num_nodes, num_sets, seed, k, storage
):
    members, values, indptr, roots = _random_family(
        num_nodes, num_sets, seed
    )
    k = min(k, num_nodes)
    index = RRIndex(values, indptr, roots, num_nodes, storage=storage)
    rng = np.random.default_rng(seed + 2)
    order = rng.permutation(num_sets)
    shuffled_members = [members[i] for i in order]
    shuffled_values = (
        np.concatenate(shuffled_members)
        if shuffled_members
        else np.zeros(0, dtype=np.uint32)
    )
    shuffled_indptr = np.zeros(num_sets + 1, dtype=np.int64)
    np.cumsum(
        [m.size for m in shuffled_members], out=shuffled_indptr[1:]
    )
    shuffled = RRIndex(
        shuffled_values,
        shuffled_indptr,
        roots[order],
        num_nodes,
        storage=storage,
    )
    assert index.greedy_select(k) == shuffled.greedy_select(k)


@given(
    num_nodes=st.integers(min_value=2, max_value=70),
    num_sets=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    k=st.integers(min_value=1, max_value=8),
)
@SETTINGS
def test_storage_modes_are_interchangeable(num_nodes, num_sets, seed, k):
    _, values, indptr, roots = _random_family(num_nodes, num_sets, seed)
    k = min(k, num_nodes)
    bitmap = RRIndex(values, indptr, roots, num_nodes, storage="bitmap")
    csr = RRIndex(values, indptr, roots, num_nodes, storage="csr")
    assert bitmap.greedy_select(k) == csr.greedy_select(k)
    assert np.array_equal(
        bitmap.coverage_counts(), csr.coverage_counts()
    )
    for set_id in range(num_sets):
        assert np.array_equal(
            bitmap.members(set_id), csr.members(set_id)
        )


@given(
    num_nodes=st.integers(min_value=2, max_value=50),
    num_sets=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@SETTINGS
def test_greedy_gains_nonincreasing_and_seeds_distinct(
    num_nodes, num_sets, seed
):
    _, values, indptr, roots = _random_family(num_nodes, num_sets, seed)
    index = RRIndex(values, indptr, roots, num_nodes)
    k = min(num_nodes, 10)
    seeds, gains = index.greedy_select(k)
    assert len(seeds) == k
    assert len(set(seeds)) == k
    assert all(
        gains[i] >= gains[i + 1] for i in range(len(gains) - 1)
    )
    assert sum(gains) == index.covered_count(seeds)


def test_validation_rejects_malformed_input():
    with pytest.raises(ValueError, match="num_nodes"):
        RRIndex(
            np.zeros(0, np.uint32), np.zeros(1, np.int64),
            np.zeros(0, np.uint32), 0,
        )
    with pytest.raises(ValueError, match="storage"):
        RRIndex(
            np.zeros(0, np.uint32), np.zeros(1, np.int64),
            np.zeros(0, np.uint32), 4, storage="zip",
        )
    with pytest.raises(ValueError, match="roots"):
        RRIndex(
            np.array([1], np.uint32), np.array([0, 1], np.int64),
            np.zeros(0, np.uint32), 4,
        )
    with pytest.raises(ValueError, match="out of node range"):
        RRIndex(
            np.array([9], np.uint32), np.array([0, 1], np.int64),
            np.array([9], np.uint32), 4,
        )
    with pytest.raises(ValueError, match="indptr"):
        RRIndex(
            np.array([1], np.uint32), np.array([0, 2], np.int64),
            np.array([1], np.uint32), 4,
        )
    index = RRIndex(
        np.array([1], np.uint32), np.array([0, 1], np.int64),
        np.array([1], np.uint32), 4,
    )
    with pytest.raises(ValueError, match="set_id"):
        index.members(5)
    with pytest.raises(ValueError, match="set_id"):
        index.contains(-1, 0)
    with pytest.raises(ValueError, match="k"):
        index.greedy_select(-1)
    with pytest.raises(ValueError, match="k="):
        index.greedy_select(9)
    with pytest.raises(ValueError, match="seed"):
        index.covered_count([99])
