"""Tests for the per-topic composable RR sketch bank.

Covers the bank itself (layout invariants, allocation, composition),
its persistence (CRC manifest, crash atomicity, chaos hooks), the
shared-memory publish/attach path, the ``strategy="sketch"`` dispatch
and degraded-answer upgrades in :class:`InflexIndex`, the serving
stack end to end, and the streaming refresh that keeps the bank fresh
across delta batches.  The statistical/determinism contracts live in
``tests/test_sketch_properties.py``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import InflexIndex, ServingConfig, SketchConfig
from repro.core.query import TimAnswer
from repro.errors import CorruptArtifactError, QueryError
from repro.im.seed_list import SeedList
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.faults import InjectedFaultError
from repro.serving.protocol import (
    answer_to_dict,
    encode_request,
    json_body,
    read_response,
)
from repro.serving.server import QueryServer
from repro.sketches import (
    SketchBank,
    attach_sketches,
    load_sketches,
    publish_sketches,
    save_sketches,
)


@pytest.fixture(scope="module")
def bank(small_graph) -> SketchBank:
    """A bank over the 200-node, 4-topic session graph."""
    return SketchBank.build(
        small_graph, SketchConfig(num_sets=300, seed=23)
    )


@pytest.fixture()
def sketch_index(small_index) -> InflexIndex:
    """A private copy of ``small_index`` with an attached bank.

    The session index is shared read-only across modules, so the bank
    is attached to a structural copy rather than the fixture itself.
    """
    index = InflexIndex(
        small_index.graph,
        small_index.index_points,
        list(small_index.seed_lists),
        small_index.config,
        dirichlet=small_index.dirichlet,
        tree=small_index.tree,
    )
    index.attach_sketches(
        SketchBank.build(
            small_index.graph, SketchConfig(num_sets=300, seed=29)
        )
    )
    return index


class TestSketchBank:
    def test_build_layout_invariants(self, small_graph, bank):
        assert bank.num_topics == small_graph.num_topics == 4
        assert bank.num_sets == 300
        arrays = bank.arrays()
        offsets = arrays["pool_offsets"]
        indptr = arrays["indptr_matrix"]
        assert offsets.shape == (5,)
        assert indptr.shape == (4, 301)
        assert np.all(np.diff(offsets) >= 0)
        assert np.all(indptr[:, 0] == 0)
        assert np.all(np.diff(indptr, axis=1) >= 1)  # root always present
        # Pool sizes in the matrix agree with the flat offsets.
        assert np.array_equal(indptr[:, -1], np.diff(offsets))
        assert arrays["values"].max() < small_graph.num_nodes
        assert arrays["roots_matrix"].max() < small_graph.num_nodes

    def test_members_sorted_within_each_set(self, bank):
        arrays = bank.arrays()
        for z in range(bank.num_topics):
            lo = int(arrays["pool_offsets"][z])
            indptr = arrays["indptr_matrix"][z]
            for s in range(bank.num_sets):
                members = arrays["values"][
                    lo + indptr[s]:lo + indptr[s + 1]
                ]
                assert np.all(np.diff(members) > 0) or members.size <= 1

    def test_allocation_largest_remainder(self, bank):
        counts = bank.allocate([0.5, 0.3, 0.15, 0.05], 100)
        assert counts.tolist() == [50, 30, 15, 5]
        # 7/4 = 1.75 each: equal fractional parts, ties toward lower
        # topic ids get the three leftover sets.
        counts = bank.allocate([0.25, 0.25, 0.25, 0.25], 7)
        assert counts.tolist() == [2, 2, 2, 1]
        assert int(counts.sum()) == 7

    def test_allocation_bounds(self, bank):
        with pytest.raises(ValueError, match="budget"):
            bank.allocate([0.25, 0.25, 0.25, 0.25], 0)
        with pytest.raises(ValueError, match="budget"):
            bank.allocate([0.25] * 4, bank.num_sets + 1)
        with pytest.raises(ValueError, match="topics"):
            bank.allocate([0.5, 0.5], 10)

    def test_vertex_composition_is_the_pool_prefix(self, bank):
        arrays = bank.arrays()
        for z in range(bank.num_topics):
            gamma = np.zeros(bank.num_topics)
            gamma[z] = 1.0
            values, indptr, roots = bank.compose(gamma, budget=bank.num_sets)
            lo = int(arrays["pool_offsets"][z])
            hi = int(arrays["pool_offsets"][z + 1])
            assert np.array_equal(values, arrays["values"][lo:hi])
            assert np.array_equal(indptr, arrays["indptr_matrix"][z])
            assert np.array_equal(roots, arrays["roots_matrix"][z])

    def test_composition_order_invariance(self, bank):
        gamma = [0.4, 0.3, 0.2, 0.1]
        base = bank.compose_index(gamma, budget=200).greedy_select(8)
        permuted = bank.compose_index(
            gamma, budget=200, order=[3, 1, 0, 2]
        ).greedy_select(8)
        assert base == permuted

    def test_compose_rejects_non_permutation_order(self, bank):
        with pytest.raises(ValueError, match="permutation"):
            bank.compose([0.25] * 4, order=[0, 1, 2, 2])

    def test_from_collections_rejects_ragged_pools(self, bank):
        sets_a = [np.array([0, 1]), np.array([2])]
        sets_b = [np.array([3])]
        with pytest.raises(ValueError, match="equally sized"):
            SketchBank.from_collections(
                [sets_a, sets_b], 10, SketchConfig(num_sets=2)
            )

    def test_stats_shape(self, bank):
        stats = bank.stats()
        assert stats["num_topics"] == 4
        assert stats["num_sets"] == 300
        assert stats["memory_bytes"] == bank.nbytes > 0


class TestPersistence:
    def test_round_trip(self, bank, tmp_path):
        path = tmp_path / "bank.npz"
        save_sketches(bank, path)
        loaded = load_sketches(path)
        for name, array in bank.arrays().items():
            assert np.array_equal(array, loaded.arrays()[name]), name
        assert loaded.num_nodes == bank.num_nodes
        assert loaded.config == bank.config

    def test_crash_before_rename_leaves_previous_artifact(
        self, bank, small_graph, tmp_path
    ):
        path = tmp_path / "bank.npz"
        save_sketches(bank, path)
        other = SketchBank.build(
            small_graph, SketchConfig(num_sets=50, seed=99)
        )
        plan = FaultPlan([FaultSpec(site="save-sketches", mode="crash")])
        with pytest.raises(InjectedFaultError):
            save_sketches(other, path, fault_plan=plan)
        # The interrupted save must not have clobbered the good file.
        assert load_sketches(path).num_sets == bank.num_sets

    def test_bitflip_is_caught_by_the_manifest(self, bank, tmp_path):
        path = tmp_path / "bank.npz"
        save_sketches(bank, path)
        plan = FaultPlan(
            [FaultSpec(site="sketches-load", mode="bitflip")]
        )
        with pytest.raises(CorruptArtifactError, match="checksum"):
            load_sketches(path, fault_plan=plan)

    def test_truncated_file_raises_corrupt(self, bank, tmp_path):
        path = tmp_path / "bank.npz"
        save_sketches(bank, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(CorruptArtifactError):
            load_sketches(path)

    def test_non_archive_raises_corrupt(self, tmp_path):
        path = tmp_path / "bank.npz"
        path.write_bytes(b"not an npz archive at all")
        with pytest.raises(CorruptArtifactError):
            load_sketches(path)


class TestSharedMemory:
    def test_publish_attach_round_trip(self, bank):
        payload, spec = publish_sketches(bank, prefix="repro-test-sk")
        try:
            attached = attach_sketches(spec)
            for name, array in bank.arrays().items():
                assert np.array_equal(array, attached.arrays()[name]), name
            assert attached.num_nodes == bank.num_nodes
            assert attached.config == bank.config
        finally:
            payload.release()

    def test_attached_bank_answers_queries(self, bank):
        payload, spec = publish_sketches(bank, prefix="repro-test-sk2")
        try:
            attached = attach_sketches(spec)
            direct = bank.compose_index([0.4, 0.3, 0.2, 0.1]).greedy_select(5)
            shared = attached.compose_index(
                [0.4, 0.3, 0.2, 0.1]
            ).greedy_select(5)
            assert direct == shared
        finally:
            payload.release()


class TestStrategyDispatch:
    def test_sketch_strategy_answers(self, sketch_index):
        answer = sketch_index.query(
            [0.4, 0.3, 0.2, 0.1], 5, strategy="sketch"
        )
        assert answer.strategy == "sketch"
        assert answer.seeds.algorithm == "sketch"
        assert len(answer.seeds) == 5
        assert len(set(answer.seeds)) == 5
        assert not answer.degraded and answer.reason is None
        assert answer.timing.total > 0

    def test_sketch_strategy_is_deterministic(self, sketch_index):
        first = sketch_index.query([0.7, 0.1, 0.1, 0.1], 6, strategy="sketch")
        second = sketch_index.query([0.7, 0.1, 0.1, 0.1], 6, strategy="sketch")
        assert tuple(first.seeds) == tuple(second.seeds)

    def test_sketch_strategy_requires_bank(self, small_index):
        assert small_index.sketches is None
        with pytest.raises(QueryError, match="sketch bank"):
            small_index.query([0.4, 0.3, 0.2, 0.1], 5, strategy="sketch")

    def test_distance_fallback_upgrades_answer(self, sketch_index):
        # Reattach with an absurdly tight threshold: every query is
        # "far", so the default strategy degrades to composed sketches.
        bank = sketch_index.sketches
        tight = SketchBank(
            bank.arrays()["values"],
            bank.arrays()["pool_offsets"],
            bank.arrays()["indptr_matrix"],
            bank.arrays()["roots_matrix"],
            bank.num_nodes,
            SketchConfig(
                num_sets=bank.num_sets,
                fallback_divergence=1e-9,
                seed=bank.config.seed,
            ),
        )
        sketch_index.attach_sketches(tight)
        answer = sketch_index.query([0.4, 0.3, 0.2, 0.1], 5)
        assert answer.degraded
        assert answer.reason == "distance"
        assert answer.seeds.algorithm == "sketch:fallback"
        assert answer.neighbor_weights == (0.0,)

    def test_deadline_fallback_uses_sketches_when_attached(
        self, sketch_index
    ):
        answer = sketch_index.query(
            [0.4, 0.3, 0.2, 0.1], 5, deadline_ms=1e-7
        )
        assert answer.degraded
        assert answer.reason == "deadline"
        assert answer.seeds.algorithm == "sketch:fallback"

    def test_deadline_fallback_without_bank_stays_neighbor(
        self, small_index
    ):
        answer = small_index.query(
            [0.4, 0.3, 0.2, 0.1], 5, deadline_ms=1e-7
        )
        assert answer.degraded
        assert answer.reason == "deadline"
        assert answer.seeds.algorithm == "inflex:degraded"

    def test_stats_report_the_bank(self, sketch_index, small_index):
        assert "sketches" in sketch_index.stats()
        assert "sketches" not in small_index.stats()

    def test_maintenance_preserves_attachment(self, sketch_index):
        grown = sketch_index.with_added_point([0.1, 0.2, 0.3, 0.4])
        assert grown.sketches is sketch_index.sketches
        shrunk = grown.without_point(grown.num_index_points - 1)
        assert shrunk.sketches is sketch_index.sketches

    def test_attach_rejects_mismatched_bank(self, sketch_index, tiny_graph):
        wrong = SketchBank.build(tiny_graph, SketchConfig(num_sets=10))
        with pytest.raises(ValueError, match="sketch bank"):
            sketch_index.attach_sketches(wrong)

    def test_detach_restores_plain_behavior(self, sketch_index):
        sketch_index.attach_sketches(None)
        assert sketch_index.sketches is None
        with pytest.raises(QueryError, match="sketch bank"):
            sketch_index.query([0.4, 0.3, 0.2, 0.1], 5, strategy="sketch")


class TestAnswerProtocol:
    def test_answer_dict_carries_algorithm_and_reason(self):
        answer = TimAnswer(
            seeds=SeedList((1, 2), (2.0, 1.0), algorithm="sketch:fallback"),
            strategy="inflex",
            degraded=True,
            reason="distance",
        )
        payload = answer_to_dict(answer)
        assert payload["algorithm"] == "sketch:fallback"
        assert payload["reason"] == "distance"
        assert payload["degraded"] is True

    def test_reason_defaults_to_none(self):
        answer = TimAnswer(
            seeds=SeedList((1,), (1.0,), algorithm="inflex"),
            strategy="inflex",
        )
        assert answer.reason is None
        assert answer_to_dict(answer)["reason"] is None


async def _post(port, target, body):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_request("POST", target, json_body(body)))
        await writer.drain()
        status, _, payload = await read_response(reader)
        return status, json.loads(payload) if payload else {}
    finally:
        writer.close()


async def _get(port, target):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_request("GET", target))
        await writer.drain()
        status, _, payload = await read_response(reader)
        return status, json.loads(payload) if payload else {}
    finally:
        writer.close()


def _run_with_server(index, scenario, **config_kwargs):
    async def main():
        server = QueryServer(
            index, ServingConfig(port=0, **config_kwargs)
        )
        await server.start()
        try:
            return await scenario(server)
        finally:
            if not server.draining:
                await server.aclose()

    return asyncio.run(main())


class TestServingEndToEnd:
    def test_sketch_strategy_over_the_wire(self, sketch_index):
        async def scenario(server):
            single = await _post(
                server.port,
                "/query",
                {"gamma": [0.4, 0.3, 0.2, 0.1], "k": 5,
                 "strategy": "sketch"},
            )
            batch = await _post(
                server.port,
                "/query_batch",
                {"queries": [
                    {"gamma": [0.4, 0.3, 0.2, 0.1], "k": 5,
                     "strategy": "sketch"},
                    {"gamma": [0.1, 0.2, 0.3, 0.4], "k": 5,
                     "strategy": "sketch"},
                ]},
            )
            stats = await _get(server.port, "/stats")
            return single, batch, stats

        (s1, one), (s2, many), (s3, stats) = _run_with_server(
            sketch_index, scenario
        )
        assert s1 == s2 == s3 == 200
        assert one["strategy"] == "sketch"
        assert one["algorithm"] == "sketch"
        assert one["reason"] is None
        direct = sketch_index.query(
            [0.4, 0.3, 0.2, 0.1], 5, strategy="sketch"
        )
        assert one["seeds"] == list(direct.seeds)
        assert [a["strategy"] for a in many["answers"]] == ["sketch"] * 2
        assert stats["sketches"]["num_sets"] == 300

    def test_far_query_fallback_reason_reaches_the_wire(self, small_index):
        index = InflexIndex(
            small_index.graph,
            small_index.index_points,
            list(small_index.seed_lists),
            small_index.config,
            dirichlet=small_index.dirichlet,
            tree=small_index.tree,
        )
        index.attach_sketches(
            SketchBank.build(
                small_index.graph,
                SketchConfig(
                    num_sets=200, fallback_divergence=1e-9, seed=31
                ),
            )
        )

        async def scenario(server):
            answer = await _post(
                server.port,
                "/query",
                {"gamma": [0.4, 0.3, 0.2, 0.1], "k": 5},
            )
            stats = await _get(server.port, "/stats")
            return answer, stats

        (status, payload), (_, stats) = _run_with_server(index, scenario)
        assert status == 200
        assert payload["degraded"] is True
        assert payload["reason"] == "distance"
        assert payload["algorithm"] == "sketch:fallback"
        assert stats["degraded_reasons"] == {"distance": 1}

    def test_unknown_strategy_still_rejected(self, sketch_index):
        async def scenario(server):
            return await _post(
                server.port,
                "/query",
                {"gamma": [0.4, 0.3, 0.2, 0.1], "k": 5,
                 "strategy": "sorcery"},
            )

        status, payload = _run_with_server(sketch_index, scenario)
        assert status == 400
        assert "strategy" in payload["error"]


class TestStreamingRefresh:
    @pytest.fixture()
    def engine(self, small_graph):
        from repro.core import InflexConfig
        from repro.streaming import StreamingEngine

        rng = np.random.default_rng(5)
        config = InflexConfig(
            num_index_points=6,
            num_dirichlet_samples=300,
            seed_list_length=5,
            ris_num_sets=200,
            knn=3,
            leaf_size=4,
            seed=41,
        )
        index = InflexIndex.build(
            small_graph, rng.dirichlet([1.0] * 4, size=12), config
        )
        index.attach_sketches(
            SketchBank.build(
                small_graph, SketchConfig(num_sets=100, seed=43)
            )
        )
        return StreamingEngine(index, num_sets=200)

    @staticmethod
    def _touch_batch(graph, timestamp):
        from repro.streaming import DeltaBatch, EdgeDelta

        for tail in range(graph.num_nodes):
            if graph.indptr[tail + 1] > graph.indptr[tail]:
                head = int(graph.indices[graph.indptr[tail]])
                break
        return DeltaBatch(
            deltas=(
                EdgeDelta(
                    op="reweight",
                    tail=tail,
                    head=head,
                    probabilities=(0.5, 0.2, 0.1, 0.1),
                ),
            ),
            timestamp=timestamp,
        )

    def test_bank_refreshes_and_matches_scratch_rebuild(self, engine):
        from repro.streaming.maintainer import IncrementalSketchMaintainer

        assert engine.index.sketches is not None
        engine.apply(self._touch_batch(engine.maintainer.graph, 1.0))
        stats = engine.stats()
        assert stats["sketch_maintainer"]["batches_applied"] == 1
        fresh = IncrementalSketchMaintainer(
            engine.maintainer.graph,
            np.eye(4),
            num_sets=100,
            seed_list_length=1,
            seed=43,
        )
        scratch = SketchBank.from_collections(
            [c.sets for c in fresh.rr_collections],
            engine.maintainer.graph.num_nodes,
            engine.index.sketches.config,
        )
        live = engine.index.sketches
        for name, array in scratch.arrays().items():
            assert np.array_equal(array, live.arrays()[name]), name

    def test_sketch_queries_stay_live_across_batches(self, engine):
        before = engine.index.query(
            [0.4, 0.3, 0.2, 0.1], 4, strategy="sketch"
        )
        assert before.seeds
        graph = engine.maintainer.graph
        engine.apply(self._touch_batch(graph, 1.0))
        engine.apply(self._touch_batch(engine.maintainer.graph, 2.0))
        after = engine.index.query(
            [0.4, 0.3, 0.2, 0.1], 4, strategy="sketch"
        )
        assert len(after.seeds) == 4

    def test_refresh_metric_increments(self, engine):
        from repro import obs

        obs.enable()
        engine.apply(self._touch_batch(engine.maintainer.graph, 1.0))
        snapshot = obs.get_registry().snapshot()
        refreshes = snapshot["repro_sketch_refreshes_total"]["series"]
        assert sum(entry["value"] for entry in refreshes) >= 1

    def test_plain_engine_has_no_sketch_maintainer(self, small_index):
        from repro.streaming import StreamingEngine

        engine = StreamingEngine(small_index, num_sets=100)
        assert engine.index.sketches is None
        assert "sketch_maintainer" not in engine.stats()


class TestObservability:
    def test_sketch_query_records_metrics(self, sketch_index):
        from repro import obs

        obs.enable()
        # Re-attach so the pool gauge is set while obs is enabled.
        sketch_index.attach_sketches(sketch_index.sketches)
        sketch_index.query([0.4, 0.3, 0.2, 0.1], 5, strategy="sketch")
        snapshot = obs.get_registry().snapshot()
        composes = snapshot["repro_sketch_composes_total"]["series"]
        assert sum(entry["value"] for entry in composes) == 1
        seconds = snapshot["repro_sketch_compose_seconds"]["series"]
        assert sum(entry["value"]["count"] for entry in seconds) == 1
        pool = snapshot["repro_sketch_pool_sets"]["series"]
        assert any(entry["value"] == 4 * 300 for entry in pool)

    def test_fallback_reason_labels(self, sketch_index):
        from repro import obs

        obs.enable()
        sketch_index.query([0.4, 0.3, 0.2, 0.1], 5, deadline_ms=1e-7)
        snapshot = obs.get_registry().snapshot()
        series = snapshot["repro_sketch_fallbacks_total"]["series"]
        by_reason = {
            entry["labels"]["reason"]: entry["value"] for entry in series
        }
        assert by_reason.get("deadline") == 1

    def test_spans_emitted(self, sketch_index):
        from repro import obs

        obs.enable()
        obs.get_tracer().clear()
        sketch_index.query([0.4, 0.3, 0.2, 0.1], 5, strategy="sketch")
        names = {span.name for span in obs.get_tracer().spans()}
        assert "sketch.compose" in names
        assert "sketch.select" in names


class TestCli:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        from repro.cli import main

        data = tmp_path_factory.mktemp("sk-cli-data")
        assert main(
            ["generate", "--out", str(data), "--nodes", "100",
             "--topics", "3", "--items", "20", "--seed", "3"]
        ) == 0
        out = tmp_path_factory.mktemp("sk-cli-index") / "index.npz"
        assert main(
            ["build", "--data", str(data), "--out", str(out),
             "--index-points", "6", "--dirichlet-samples", "300",
             "--seed-list-length", "5", "--ris-sets", "300",
             "--sketches", "--sketch-sets", "120", "--seed", "5"]
        ) == 0
        return data, out

    def test_build_writes_colocated_bank(self, built):
        _, out = built
        bank_path = out.with_name("index.sketches.npz")
        assert bank_path.exists()
        assert load_sketches(bank_path).num_sets == 120

    def test_query_uses_sketch_strategy(self, built, capsys):
        from repro.cli import main

        data, out = built
        assert main(
            ["query", "--data", str(data), "--index", str(out),
             "--gamma", "0.7,0.2,0.1", "--k", "4",
             "--strategy", "sketch"]
        ) == 0
        printed = capsys.readouterr().out
        assert "strategy: sketch" in printed

    def test_query_reports_fallback_reason(self, built, capsys):
        from repro.cli import main

        data, out = built
        assert main(
            ["query", "--data", str(data), "--index", str(out),
             "--gamma", "0.98,0.01,0.01", "--k", "4",
             "--deadline-ms", "0.0000001"]
        ) == 0
        printed = capsys.readouterr().out
        assert "DEGRADED: deadline" in printed
        assert "sketch:fallback" in printed
