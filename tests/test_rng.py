"""Tests for the RNG plumbing."""

import numpy as np
import pytest

from repro.rng import resolve_rng, spawn_rngs


def test_resolve_rng_from_int_is_deterministic():
    a = resolve_rng(42).random(5)
    b = resolve_rng(42).random(5)
    assert np.allclose(a, b)


def test_resolve_rng_passthrough_generator():
    gen = np.random.default_rng(1)
    assert resolve_rng(gen) is gen


def test_resolve_rng_none_gives_generator():
    assert isinstance(resolve_rng(None), np.random.Generator)


def test_spawn_rngs_independent_streams():
    children = spawn_rngs(7, 3)
    draws = [child.random(4) for child in children]
    assert not np.allclose(draws[0], draws[1])
    assert not np.allclose(draws[1], draws[2])


def test_spawn_rngs_deterministic():
    a = [g.random(3) for g in spawn_rngs(5, 2)]
    b = [g.random(3) for g in spawn_rngs(5, 2)]
    for x, y in zip(a, b):
        assert np.allclose(x, y)


def test_spawn_rngs_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_from_generator():
    gen = np.random.default_rng(3)
    children = spawn_rngs(gen, 2)
    assert len(children) == 2
