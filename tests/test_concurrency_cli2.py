"""Concurrent read-only querying and the new CLI subcommands."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main


class TestConcurrentQueries:
    def test_threaded_queries_match_serial(self, small_index, small_workload):
        """The index is read-only at query time; concurrent queries must
        give exactly the serial answers."""
        gammas = list(small_workload.items)
        expected = [
            small_index.query(gamma, 5).seeds.nodes for gamma in gammas
        ]
        with ThreadPoolExecutor(max_workers=4) as pool:
            actual = list(
                pool.map(
                    lambda gamma: small_index.query(gamma, 5).seeds.nodes,
                    gammas,
                )
            )
        assert actual == expected

    def test_threaded_mixed_strategies(self, small_index, small_workload):
        strategies = ["inflex", "approx-knn", "exact-knn"] * 3
        gammas = [small_workload.items[i % 5] for i in range(9)]

        def work(pair):
            gamma, strategy = pair
            return small_index.query(gamma, 4, strategy=strategy).seeds.nodes

        with ThreadPoolExecutor(max_workers=3) as pool:
            results = list(pool.map(work, zip(gammas, strategies)))
        for (gamma, strategy), nodes in zip(
            zip(gammas, strategies), results
        ):
            assert (
                small_index.query(gamma, 4, strategy=strategy).seeds.nodes
                == nodes
            )


class TestNewCLICommands:
    @pytest.fixture(scope="class")
    def data_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli2-data")
        assert (
            main(
                [
                    "generate",
                    "--out",
                    str(path),
                    "--nodes",
                    "100",
                    "--topics",
                    "3",
                    "--items",
                    "30",
                ]
            )
            == 0
        )
        return path

    def test_summarize(self, data_dir, capsys):
        assert main(["summarize", "--data", str(data_dir)]) == 0
        out = capsys.readouterr().out
        assert "Graph summary" in out
        assert "branching factor" in out

    def test_run_all_subset(self, tmp_path, capsys):
        code = main(
            [
                "run-all",
                "--out",
                str(tmp_path / "results"),
                "--scale",
                "test",
                "--only",
                "fig4_distance_correlation",
            ]
        )
        assert code == 0
        assert (tmp_path / "results" / "INDEX.txt").exists()
        assert "results written" in capsys.readouterr().out
