"""Tests for the query cache, catalog I/O, and engine equivalence."""

import numpy as np
import pytest

from repro.core import CachedIndex
from repro.datasets import (
    load_catalog_csv,
    load_catalog_jsonl,
    save_catalog_csv,
    save_catalog_jsonl,
)
from repro.errors import InvalidDistributionError
from repro.experiments import engine_equivalence, get_context


class TestCachedIndex:
    def test_hit_on_repeat(self, small_index, small_workload):
        cached = CachedIndex(small_index)
        gamma = small_workload.items[0]
        first = cached.query(gamma, 5)
        second = cached.query(gamma, 5)
        assert second is first
        assert cached.hits == 1 and cached.misses == 1
        assert cached.hit_rate == pytest.approx(0.5)

    def test_rounding_collapses_near_queries(self, small_index, small_workload):
        cached = CachedIndex(small_index, decimals=2)
        gamma = small_workload.items[1]
        jittered = gamma + 1e-5
        jittered /= jittered.sum()
        cached.query(gamma, 5)
        cached.query(jittered, 5)
        assert cached.hits == 1

    def test_distinct_k_and_strategy_not_shared(self, small_index, small_workload):
        cached = CachedIndex(small_index)
        gamma = small_workload.items[2]
        cached.query(gamma, 5)
        cached.query(gamma, 6)
        cached.query(gamma, 5, strategy="approx-knn")
        assert cached.misses == 3

    def test_lru_eviction(self, small_index, small_workload):
        cached = CachedIndex(small_index, max_entries=2)
        for gamma in small_workload.items[:3]:
            cached.query(gamma, 4)
        assert len(cached) == 2
        # Oldest entry evicted: querying it again misses.
        cached.query(small_workload.items[0], 4)
        assert cached.misses == 4

    def test_clear(self, small_index, small_workload):
        cached = CachedIndex(small_index)
        cached.query(small_workload.items[0], 4)
        cached.clear()
        assert len(cached) == 0
        assert cached.hits == 0 and cached.misses == 0

    def test_matches_uncached_answers(self, small_index, small_workload):
        cached = CachedIndex(small_index)
        gamma = small_workload.items[3]
        assert (
            cached.query(gamma, 5).seeds.nodes
            == small_index.query(gamma, 5).seeds.nodes
        )

    def test_validation(self, small_index):
        with pytest.raises(ValueError):
            CachedIndex(small_index, max_entries=0)
        with pytest.raises(ValueError):
            CachedIndex(small_index, decimals=0)


class TestCatalogIO:
    @pytest.fixture
    def catalog(self, small_dataset):
        return small_dataset.item_topics[:10]

    def test_csv_round_trip(self, catalog, tmp_path):
        path = tmp_path / "catalog.csv"
        save_catalog_csv(catalog, path)
        loaded = load_catalog_csv(path)
        assert np.allclose(loaded, catalog, atol=1e-9)

    def test_csv_without_header(self, catalog, tmp_path):
        path = tmp_path / "catalog.csv"
        save_catalog_csv(catalog, path, header=False)
        loaded = load_catalog_csv(path)
        assert loaded.shape == catalog.shape

    def test_csv_normalizes_drift(self, tmp_path):
        path = tmp_path / "drift.csv"
        path.write_text("0.5001,0.5001\n0.3,0.7\n")
        loaded = load_catalog_csv(path)
        assert np.allclose(loaded.sum(axis=1), 1.0)

    def test_csv_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("topic_0,topic_1\n")
        with pytest.raises(InvalidDistributionError):
            load_catalog_csv(path)

    def test_jsonl_round_trip(self, catalog, tmp_path):
        path = tmp_path / "catalog.jsonl"
        ids = [f"movie-{i}" for i in range(catalog.shape[0])]
        save_catalog_jsonl(catalog, path, item_ids=ids)
        loaded_ids, loaded = load_catalog_jsonl(path)
        assert loaded_ids == ids
        assert np.allclose(loaded, catalog, atol=1e-9)

    def test_jsonl_missing_topics_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"item_id": 1}\n')
        with pytest.raises(InvalidDistributionError):
            load_catalog_jsonl(path)

    def test_jsonl_id_count_validated(self, catalog, tmp_path):
        with pytest.raises(ValueError):
            save_catalog_jsonl(
                catalog, tmp_path / "x.jsonl", item_ids=[1]
            )


class TestEngineEquivalence:
    def test_engines_agree(self):
        context = get_context("test")
        result = engine_equivalence.run(
            context, num_items=3, k=6, num_snapshots=120
        )
        # The DESIGN.md substitution claim: rankings close, spreads
        # indistinguishable within a few percent.
        assert result.mean_distance < 0.35
        assert result.spread_ratio == pytest.approx(1.0, abs=0.1)
        assert "Engine equivalence" in result.render()

    def test_validation(self):
        context = get_context("test")
        with pytest.raises(ValueError):
            engine_equivalence.run(context, num_items=0)
