"""Tests for the run-everything experiment runner."""

import json

import pytest

from repro.experiments import get_context
from repro.experiments.runner import EXPERIMENTS, run_all


@pytest.fixture(scope="module")
def context():
    return get_context("test")


class TestRunAll:
    def test_subset_writes_artifacts(self, context, tmp_path):
        results = run_all(
            context,
            tmp_path,
            only=("fig4_distance_correlation", "workload_split"),
        )
        assert set(results) == {
            "fig4_distance_correlation",
            "workload_split",
        }
        assert (tmp_path / "fig4_distance_correlation.txt").exists()
        data = json.loads(
            (tmp_path / "fig4_distance_correlation.json").read_text()
        )
        assert "pearson" in data
        index = (tmp_path / "INDEX.txt").read_text()
        assert "workload_split" in index

    def test_progress_callback(self, context, tmp_path):
        seen = []
        run_all(
            context,
            tmp_path,
            only=("fig4_distance_correlation",),
            progress=lambda name, done, total: seen.append(
                (name, done, total)
            ),
        )
        assert seen == [("fig4_distance_correlation", 1, 1)]

    def test_unknown_name_rejected(self, context, tmp_path):
        with pytest.raises(KeyError):
            run_all(context, tmp_path, only=("bogus",))

    def test_registry_complete(self):
        # Every paper table/figure plus the text analyses are present.
        expected = {
            "fig3_index_selection",
            "fig4_distance_correlation",
            "fig5_retrieval_recall",
            "table1_aggregation",
            "fig6_accuracy",
            "fig7_runtime",
            "fig8_spread",
            "table3_spread_by_k",
            "fig9_tradeoff",
            "significance",
            "workload_split",
            "latency",
        }
        assert expected <= set(EXPERIMENTS)
