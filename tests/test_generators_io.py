"""Tests for graph generators and graph I/O."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graph import (
    community_topic_graph,
    erdos_renyi_topic_graph,
    interest_topic_graph,
    load_arc_list,
    load_graph,
    power_law_topic_graph,
    save_arc_list,
    save_graph,
)

GENERATORS = [
    lambda seed: interest_topic_graph(150, 4, seed=seed),
    lambda seed: community_topic_graph(150, 4, seed=seed),
    lambda seed: power_law_topic_graph(150, 4, seed=seed),
    lambda seed: erdos_renyi_topic_graph(
        150, 4, arc_probability=0.05, seed=seed
    ),
]


@pytest.mark.parametrize("factory", GENERATORS)
class TestGeneratorContracts:
    def test_valid_graph(self, factory):
        g = factory(1)
        assert g.num_nodes == 150
        assert g.num_topics == 4
        assert g.num_arcs > 0
        assert g.probabilities.min() >= 0.0
        assert g.probabilities.max() <= 0.8

    def test_deterministic(self, factory):
        a = factory(7)
        b = factory(7)
        assert np.array_equal(a.indices, b.indices)
        assert np.allclose(a.probabilities, b.probabilities)

    def test_different_seeds_differ(self, factory):
        a = factory(1)
        b = factory(2)
        assert a.num_arcs != b.num_arcs or not np.array_equal(
            a.indices, b.indices
        )

    def test_no_self_loops(self, factory):
        g = factory(3)
        arcs = g.arcs()
        assert np.all(arcs[:, 0] != arcs[:, 1])

    def test_no_duplicate_arcs(self, factory):
        g = factory(4)
        arcs = g.arcs()
        codes = arcs[:, 0] * g.num_nodes + arcs[:, 1]
        assert np.unique(codes).size == codes.size


class TestInterestGraphSpecifics:
    def test_interest_structure(self):
        g = interest_topic_graph(
            200, 5, topics_per_node=1, off_topic_ratio=0.02, seed=5
        )
        # Every arc should have exactly one strong topic when
        # topics_per_node=1 (strong = clearly above the off-topic tier).
        probs = g.probabilities
        nonzero = probs[probs.sum(axis=1) > 0]
        strong_counts = (
            nonzero > 0.5 * nonzero.max(axis=1, keepdims=True)
        ).sum(axis=1)
        assert np.all(strong_counts == 1)

    def test_degree_heavy_tail(self):
        g = interest_topic_graph(500, 4, seed=6)
        degrees = g.out_degree()
        assert degrees.max() > 5 * degrees.mean()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            interest_topic_graph(1, 3)
        with pytest.raises(ValueError):
            interest_topic_graph(10, 3, topics_per_node=5)
        with pytest.raises(ValueError):
            interest_topic_graph(10, 3, off_topic_ratio=1.5)
        with pytest.raises(ValueError):
            interest_topic_graph(10, 3, degree_sigma=-1.0)


class TestCommunityGraphSpecifics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            community_topic_graph(10, 3, intra_community_fraction=1.4)
        with pytest.raises(ValueError):
            community_topic_graph(10, 3, topic_focus=1.0)
        with pytest.raises(ValueError):
            community_topic_graph(1, 3)


class TestErdosRenyiSpecifics:
    def test_arc_probability_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_topic_graph(10, 2, arc_probability=2.0)

    def test_density_tracks_parameter(self):
        g = erdos_renyi_topic_graph(200, 2, arc_probability=0.1, seed=8)
        expected = 0.1 * 200 * 199
        assert abs(g.num_arcs - expected) < 0.2 * expected


class TestGraphIO:
    def test_npz_round_trip(self, tmp_path, small_graph):
        path = tmp_path / "graph.npz"
        save_graph(small_graph, path)
        loaded = load_graph(path)
        assert loaded.num_nodes == small_graph.num_nodes
        assert np.array_equal(loaded.indices, small_graph.indices)
        assert np.allclose(loaded.probabilities, small_graph.probabilities)

    def test_arc_list_round_trip(self, tmp_path, tiny_graph):
        path = tmp_path / "graph.txt"
        save_arc_list(tiny_graph, path)
        loaded = load_arc_list(path)
        assert loaded.num_nodes == tiny_graph.num_nodes
        assert np.array_equal(loaded.indices, tiny_graph.indices)
        assert np.allclose(
            loaded.probabilities, tiny_graph.probabilities, atol=1e-9
        )

    def test_arc_list_field_count_validated(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# nodes=2 topics=2\n0 1 0.5\n")
        with pytest.raises(InvalidGraphError):
            load_arc_list(path)

    def test_empty_arc_list_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nodes=3 topics=2\n")
        with pytest.raises(InvalidGraphError):
            load_arc_list(path)
