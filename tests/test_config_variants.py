"""End-to-end tests of alternative InflexConfig variants.

The default pipeline is weighted Copeland + Local Kemenization; these
tests drive the other supported combinations through a real index so
no configuration path rots.
"""

import numpy as np
import pytest

from repro.core import InflexConfig, InflexIndex, PAPER_CONFIG


@pytest.fixture(scope="module")
def base_kwargs():
    return dict(
        num_index_points=16,
        num_dirichlet_samples=800,
        seed_list_length=8,
        ris_num_sets=600,
        knn=5,
        leaf_size=6,
        seed=91,
    )


@pytest.fixture(scope="module")
def artifacts(small_dataset):
    return small_dataset.graph, small_dataset.item_topics


def _build(artifacts, **kwargs) -> InflexIndex:
    graph, catalog = artifacts
    return InflexIndex.build(graph, catalog, InflexConfig(**kwargs))


class TestAggregatorVariants:
    @pytest.mark.parametrize("aggregator", ["copeland", "borda", "mc4"])
    def test_query_works(self, artifacts, base_kwargs, aggregator):
        index = _build(artifacts, aggregator=aggregator, **base_kwargs)
        gamma = artifacts[1][0]
        answer = index.query(gamma, 6)
        assert len(answer.seeds) == 6
        assert len(set(answer.seeds.nodes)) == 6

    def test_aggregators_broadly_agree(self, artifacts, base_kwargs):
        gamma = artifacts[1][1]
        answers = {}
        for aggregator in ("copeland", "borda", "mc4"):
            index = _build(artifacts, aggregator=aggregator, **base_kwargs)
            answers[aggregator] = set(index.query(gamma, 6).seeds.nodes)
        # Same retrieval, different consensus rules: substantial overlap.
        assert len(answers["copeland"] & answers["borda"]) >= 3
        assert len(answers["copeland"] & answers["mc4"]) >= 3


class TestWeightingVariants:
    def test_unweighted(self, artifacts, base_kwargs):
        index = _build(artifacts, weighted=False, **base_kwargs)
        gamma = artifacts[1][2]
        answer = index.query(gamma, 5)
        assert len(answer.seeds) == 5
        # Weights are still reported (for inspection) even if unused.
        assert all(0 <= w <= 1 for w in answer.neighbor_weights)

    def test_no_local_kemenization(self, artifacts, base_kwargs):
        index = _build(
            artifacts, local_kemenization=False, **base_kwargs
        )
        gamma = artifacts[1][3]
        answer = index.query(gamma, 5)
        assert len(answer.seeds) == 5

    def test_celf_engine_build(self, artifacts):
        graph, catalog = artifacts
        config = InflexConfig(
            num_index_points=4,
            num_dirichlet_samples=200,
            seed_list_length=3,
            im_engine="celf",
            num_snapshots=25,
            knn=3,
            seed=92,
        )
        index = InflexIndex.build(graph, catalog, config)
        assert all(
            seed_list.algorithm == "celf"
            for seed_list in index.seed_lists
        )
        answer = index.query(catalog[4], 3)
        assert len(answer.seeds) == 3


class TestPaperConfig:
    def test_paper_config_valid(self):
        assert PAPER_CONFIG.num_index_points == 1000
        assert PAPER_CONFIG.seed_list_length == 50
        assert PAPER_CONFIG.max_leaves == 5
        assert PAPER_CONFIG.knn == 10

    def test_epsilon_zero_allowed(self):
        InflexConfig(epsilon=0.0)

    def test_frozen(self):
        config = InflexConfig()
        with pytest.raises(Exception):
            config.knn = 99  # type: ignore[misc]
