"""Tests for the statistics package: AD test, t-test, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import (
    anderson_darling_statistic,
    anderson_darling_test,
    corrected_statistic,
    nrmse,
    paired_t_test,
    pearson_correlation,
    project_to_principal_axis,
    rmse,
    spearman_correlation,
)


class TestAndersonDarling:
    def test_accepts_gaussian(self):
        rng = np.random.default_rng(1)
        accepted = 0
        for i in range(20):
            sample = rng.normal(3.0, 2.0, size=200)
            if anderson_darling_test(sample, alpha=0.05).is_normal:
                accepted += 1
        # At alpha=0.05 roughly 95% of normal samples should pass.
        assert accepted >= 16

    def test_rejects_bimodal(self):
        rng = np.random.default_rng(2)
        sample = np.concatenate(
            [rng.normal(-4, 0.5, 150), rng.normal(4, 0.5, 150)]
        )
        assert anderson_darling_test(sample, alpha=0.05).reject_normality

    def test_rejects_heavy_uniform(self):
        rng = np.random.default_rng(3)
        sample = rng.uniform(0, 1, 500)
        assert anderson_darling_test(sample, alpha=0.05).reject_normality

    def test_matches_scipy_statistic(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(4)
        sample = rng.normal(0, 1, 100)
        ours = anderson_darling_statistic(sample)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FutureWarning)
            theirs = scipy_stats.anderson(sample, dist="norm").statistic
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_small_sample_rejected(self):
        with pytest.raises(ValueError):
            anderson_darling_statistic([1.0, 2.0])

    def test_constant_sample_rejected(self):
        with pytest.raises(ValueError):
            anderson_darling_statistic([1.0] * 10)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            anderson_darling_test([1.0, 2.0, 3.0], alpha=1.5)

    def test_correction_grows_statistic(self):
        assert corrected_statistic(1.0, 10) > 1.0

    def test_p_value_monotone_in_alpha(self):
        rng = np.random.default_rng(5)
        sample = rng.normal(0, 1, 80)
        strict = anderson_darling_test(sample, alpha=0.5)
        lax = anderson_darling_test(sample, alpha=0.001)
        # Same p-value; rejection depends on alpha.
        assert strict.p_value == lax.p_value
        if strict.reject_normality:
            assert strict.p_value < 0.5


class TestPrincipalAxisProjection:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(6)
        direction = np.array([1.0, 2.0, -1.0])
        direction /= np.linalg.norm(direction)
        t = rng.normal(0, 3.0, 100)
        points = np.outer(t, direction) + rng.normal(0, 0.01, (100, 3))
        projected = project_to_principal_axis(points)
        # Projection variance should match the generating coordinate.
        assert abs(np.corrcoef(projected, t)[0, 1]) > 0.999

    def test_degenerate_cloud(self):
        points = np.ones((5, 3))
        assert np.allclose(project_to_principal_axis(points), 0.0)


class TestPairedTTest:
    def test_detects_difference(self):
        rng = np.random.default_rng(7)
        a = rng.normal(0.5, 1.0, 200)
        b = a - 0.5 + rng.normal(0, 0.1, 200)
        result = paired_t_test(a, b)
        assert result.significant(0.01)
        assert result.mean_difference > 0

    def test_no_difference(self):
        rng = np.random.default_rng(8)
        a = rng.normal(0, 1, 100)
        b = a + rng.normal(0, 0.5, 100)
        result = paired_t_test(a, b)
        # No systematic shift: p-value should not be tiny.
        assert result.p_value > 0.001

    def test_identical_samples(self):
        a = np.array([1.0, 2.0, 3.0])
        result = paired_t_test(a, a)
        assert result.p_value == 1.0
        assert result.statistic == 0.0

    def test_constant_nonzero_difference(self):
        a = np.array([1.0, 2.0, 3.0])
        result = paired_t_test(a, a - 1.0)
        assert result.p_value == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0], [2.0])

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(9)
        a = rng.normal(0, 1, 50)
        b = rng.normal(0.2, 1, 50)
        ours = paired_t_test(a, b)
        theirs = scipy_stats.ttest_rel(a, b)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)


class TestMetrics:
    def test_rmse_zero_on_equal(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_rmse_known(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_nrmse_normalization(self):
        assert nrmse([9.0, 11.0], [10.0, 10.0]) == pytest.approx(0.1)

    def test_nrmse_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            nrmse([1.0, -1.0], [1.0, -1.0])

    def test_pearson_perfect(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0, 1.0], [1.0, 2.0])

    def test_spearman_monotone(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.exp(x)  # monotone but nonlinear
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_spearman_with_ties(self):
        x = np.array([1.0, 1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100),
            min_size=3,
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_property_rmse_nonnegative(self, values):
        arr = np.asarray(values)
        other = arr + 1.0
        assert rmse(arr, other) == pytest.approx(1.0)
