"""Tests for the campaign planner (`repro.campaign`).

Covers the k-submodular allocators against exhaustive enumeration on
tiny instances, the budget/partition invariants, worker-count
determinism and item-permutation invariance (hypothesis-driven), the
oracle LRU cache, the two-stage deadline degradation contract, config
validation, the ``/campaign`` wire-format parser, and the serving
route end to end (including the deadline-degraded fallback).
"""

from __future__ import annotations

import asyncio
import itertools
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignAllocation, CampaignItem, CampaignPlanner
from repro.core import CampaignConfig, ServingConfig
from repro.im import sample_rr_index
from repro.resilience import Deadline
from repro.serving import QueryServer
from repro.serving.protocol import (
    ProtocolError,
    encode_request,
    json_body,
    parse_campaign_payload,
    read_response,
)

TWO_ITEMS = [np.array([0.9, 0.1]), np.array([0.2, 0.8])]


@pytest.fixture(scope="module")
def small_planner(small_graph):
    """One planner over the 200-node graph, shared within the module."""
    with CampaignPlanner(
        small_graph, CampaignConfig(num_sets=600, seed=7), workers=1
    ) as planner:
        yield planner


def _mixes(num: int, num_topics: int = 4, seed: int = 0):
    rng = np.random.default_rng(seed)
    return list(rng.dirichlet(np.full(num_topics, 0.8), size=num))


# ----------------------------------------------------------------------
# Allocator correctness on tiny instances
# ----------------------------------------------------------------------
class TestAgainstExhaustive:
    @pytest.mark.parametrize("algorithm", ["lazy", "threshold"])
    def test_matches_exhaustive_optimum(self, tiny_graph, algorithm):
        # Enumerate every disjoint (S_1, S_2) with |S_1| + |S_2| = k on
        # independently sampled oracles; both greedy allocators must
        # recover the same argmax on this 6-node instance.
        k = 2
        with CampaignPlanner(
            tiny_graph, CampaignConfig(num_sets=4000, seed=3), workers=1
        ) as planner:
            alloc = planner.allocate(TWO_ITEMS, k, algorithm=algorithm)
        oracles = [
            sample_rr_index(tiny_graph, g, 4000, seed=11)
            for g in TWO_ITEMS
        ]
        best, best_sets = -1.0, None
        nodes = range(tiny_graph.num_nodes)
        for size in range(k + 1):
            for s1 in itertools.combinations(nodes, size):
                rest = [n for n in nodes if n not in s1]
                for s2 in itertools.combinations(rest, k - size):
                    objective = oracles[0].spread_of(s1) + oracles[
                        1
                    ].spread_of(s2)
                    if objective > best:
                        best, best_sets = objective, (set(s1), set(s2))
        assert tuple(set(a) for a in alloc.assignments) == best_sets
        # The planner's own estimate agrees with the independently
        # sampled objective up to RR sampling noise.
        assert alloc.total_spread == pytest.approx(best, rel=0.05)

    def test_joint_beats_or_ties_independent(self, small_planner):
        gammas = _mixes(4, seed=5)
        joint = small_planner.allocate(gammas, 12, algorithm="lazy")
        indep = small_planner.allocate_independent(gammas, 12)
        assert joint.total_spread >= indep.total_spread - 1e-9
        assert indep.algorithm == "independent"
        assert not indep.degraded


# ----------------------------------------------------------------------
# Invariants: budget, partition, padding, duplicates
# ----------------------------------------------------------------------
class TestInvariants:
    @pytest.mark.parametrize("algorithm", ["lazy", "threshold"])
    def test_budget_and_partition(self, small_planner, algorithm):
        gammas = _mixes(3, seed=1)
        alloc = small_planner.allocate(gammas, 10, algorithm=algorithm)
        assert alloc.num_seeds == 10
        flat = [n for nodes in alloc.assignments for n in nodes]
        assert len(flat) == len(set(flat)), "nodes must seed one item"
        assert all(
            0 <= n < small_planner.graph.num_nodes for n in flat
        )
        assert len(alloc.assignments) == len(gammas)
        assert all(
            len(nodes) == len(gains)
            for nodes, gains in zip(alloc.assignments, alloc.gains)
        )

    def test_budget_beyond_frontier_pads_with_zero_gains(self, tiny_graph):
        with CampaignPlanner(
            tiny_graph, CampaignConfig(num_sets=200, seed=0), workers=1
        ) as planner:
            alloc = planner.allocate(TWO_ITEMS, tiny_graph.num_nodes)
        assert alloc.num_seeds == tiny_graph.num_nodes
        flat = sorted(n for nodes in alloc.assignments for n in nodes)
        assert flat == list(range(tiny_graph.num_nodes))

    def test_duplicate_items_collapse_to_first_occurrence(
        self, small_planner
    ):
        gamma = _mixes(1, seed=9)[0]
        alloc = small_planner.allocate([gamma, gamma.copy()], 6)
        assert alloc.assignments[1] == ()
        assert len(alloc.assignments[0]) == 6
        assert alloc.oracle_sets == (600, 600)

    def test_zero_budget(self, small_planner):
        alloc = small_planner.allocate(_mixes(2), 0)
        assert alloc.num_seeds == 0
        assert alloc.total_spread == 0.0

    def test_validation_errors(self, small_planner):
        with pytest.raises(ValueError, match="at least one item"):
            small_planner.allocate([], 3)
        with pytest.raises(ValueError, match="exceeds"):
            small_planner.allocate(_mixes(1), 10_000)
        with pytest.raises(ValueError, match="algorithm"):
            small_planner.allocate(_mixes(1), 3, algorithm="brute")
        with pytest.raises(ValueError, match="epsilon"):
            small_planner.allocate(
                _mixes(1), 3, algorithm="threshold", epsilon=1.5
            )
        with pytest.raises(ValueError, match="topics"):
            small_planner.allocate([np.array([0.5, 0.5])], 3)
        with pytest.raises(ValueError, match="max_items"):
            small_planner.allocate(
                _mixes(CampaignConfig().max_items + 1), 3
            )


# ----------------------------------------------------------------------
# Determinism: worker count and item permutation
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_worker_count_invariance(self, small_graph):
        gammas = _mixes(3, seed=21)
        results = []
        for workers in (1, 4):
            with CampaignPlanner(
                small_graph,
                CampaignConfig(num_sets=500, seed=13),
                workers=workers,
            ) as planner:
                results.append(planner.allocate(gammas, 8))
        assert results[0].assignments == results[1].assignments
        assert results[0].gains == results[1].gains
        assert results[0].total_spread == results[1].total_spread

    def test_repeat_allocation_is_bit_identical(self, small_planner):
        gammas = _mixes(3, seed=2)
        first = small_planner.allocate(gammas, 7)
        second = small_planner.allocate(gammas, 7)
        assert first == second

    @settings(max_examples=15, deadline=None)
    @given(perm=st.permutations(list(range(4))))
    def test_permutation_invariance(self, small_planner, perm):
        gammas = _mixes(4, seed=33)
        base = small_planner.allocate(gammas, 9)
        shuffled = small_planner.allocate([gammas[i] for i in perm], 9)
        for new_pos, old_pos in enumerate(perm):
            assert shuffled.assignments[new_pos] == (
                base.assignments[old_pos]
            )
        assert shuffled.total_spread == base.total_spread

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(min_value=0, max_value=20))
    def test_spread_monotone_in_budget(self, small_planner, k):
        gammas = _mixes(2, seed=4)
        smaller = small_planner.allocate(gammas, k)
        larger = small_planner.allocate(gammas, k + 3)
        assert larger.total_spread >= smaller.total_spread - 1e-9


# ----------------------------------------------------------------------
# Oracle cache
# ----------------------------------------------------------------------
class TestOracleCache:
    def test_repeat_items_hit_the_cache(self, small_graph):
        gammas = _mixes(3, seed=6)
        with CampaignPlanner(
            small_graph, CampaignConfig(num_sets=300, seed=0), workers=1
        ) as planner:
            planner.allocate(gammas, 5)
            assert planner.cached_oracles == 3
            planner.allocate(gammas, 5)
            assert planner.cached_oracles == 3

    def test_lru_eviction_respects_capacity(self, small_graph):
        with CampaignPlanner(
            small_graph,
            CampaignConfig(num_sets=300, oracle_cache_entries=2, seed=0),
            workers=1,
        ) as planner:
            planner.allocate(_mixes(3, seed=6), 5)
            assert planner.cached_oracles == 2


# ----------------------------------------------------------------------
# Deadlines: two-stage degradation
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_before_sampling_degrades_everything(
        self, small_planner
    ):
        alloc = small_planner.allocate(
            _mixes(2, seed=40), 6, deadline=Deadline.from_ms(0.0)
        )
        assert alloc.degraded
        assert alloc.algorithm == "independent"
        assert alloc.num_seeds == 6
        degraded_sets = small_planner.config.degraded_num_sets
        assert all(s == degraded_sets for s in alloc.oracle_sets)

    @pytest.mark.parametrize("algorithm", ["lazy", "threshold"])
    def test_mid_greedy_expiry_falls_back_to_independent(
        self, small_planner, algorithm
    ):
        # An injectable clock: sampling happens inside the first
        # expired() window, then time jumps past the deadline while
        # the greedy loop runs.
        ticks = iter([0.0] * 3 + [100.0] * 1000)
        deadline = Deadline(1.0, clock=lambda: next(ticks))
        alloc = small_planner.allocate(
            _mixes(2, seed=41), 6, algorithm=algorithm, deadline=deadline
        )
        assert alloc.degraded
        assert alloc.algorithm == "independent"
        assert alloc.num_seeds == 6
        # Full-budget oracles were already sampled before expiry.
        assert all(s == 600 for s in alloc.oracle_sets)


# ----------------------------------------------------------------------
# Config and dataclass surfaces
# ----------------------------------------------------------------------
class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CampaignConfig(num_sets=1)
        with pytest.raises(ValueError):
            CampaignConfig(algorithm="exhaustive")
        with pytest.raises(ValueError):
            CampaignConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            CampaignConfig(max_items=0)
        with pytest.raises(ValueError):
            CampaignConfig(oracle_cache_entries=0)
        with pytest.raises(ValueError):
            CampaignConfig(degraded_num_sets=1)

    def test_campaign_item_normalizes(self):
        item = CampaignItem("promo", (2.0, 1.0, 1.0))
        assert sum(item.gamma) == pytest.approx(1.0)

    def test_allocation_to_dict_round_trips_json(self, small_planner):
        alloc = small_planner.allocate(_mixes(2, seed=8), 4)
        assert isinstance(alloc, CampaignAllocation)
        payload = json.loads(json.dumps(alloc.to_dict()))
        assert payload["num_seeds"] == 4
        assert payload["algorithm"] == "lazy"


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestParseCampaignPayload:
    def test_parses_and_normalizes(self):
        items, k, algorithm, epsilon, deadline_ms = parse_campaign_payload(
            {
                "items": [[2.0, 1.0, 1.0], [1.0, 1.0, 2.0]],
                "k": 5,
                "algorithm": "threshold",
                "epsilon": 0.1,
                "deadline_ms": 50,
            }
        )
        assert len(items) == 2
        assert all(abs(sum(row) - 1.0) < 1e-9 for row in items)
        assert (k, algorithm, epsilon, deadline_ms) == (
            5,
            "threshold",
            0.1,
            50.0,
        )

    def test_defaults_apply(self):
        _, k, algorithm, epsilon, deadline_ms = parse_campaign_payload(
            {"items": [[0.5, 0.5]], "k": 3},
            default_algorithm="lazy",
            default_deadline_ms=200.0,
        )
        assert (k, algorithm, epsilon, deadline_ms) == (
            3,
            "lazy",
            None,
            200.0,
        )

    @pytest.mark.parametrize(
        "payload",
        [
            {"k": 3},
            {"items": [], "k": 3},
            {"items": [[0.5, "x"]], "k": 3},
            {"items": [[0.0, 0.0]], "k": 3},
            {"items": [[-0.5, 1.5]], "k": 3},
            {"items": [[0.5, 0.5]]},
            {"items": [[0.5, 0.5]], "k": 0},
            {"items": [[0.5, 0.5]], "k": True},
            {"items": [[0.5, 0.5]], "k": 3, "algorithm": "brute"},
            {"items": [[0.5, 0.5]], "k": 3, "epsilon": 2.0},
            {"items": [[0.5, 0.5]], "k": 3, "deadline_ms": -1},
        ],
    )
    def test_rejects_malformed(self, payload):
        with pytest.raises(ProtocolError):
            parse_campaign_payload(payload)

    def test_max_items_cap(self):
        with pytest.raises(ProtocolError, match="at most"):
            parse_campaign_payload(
                {"items": [[0.5, 0.5]] * 3, "k": 2}, max_items=2
            )


# ----------------------------------------------------------------------
# Serving route end to end
# ----------------------------------------------------------------------
async def _post_campaign(host, port, body):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            encode_request("POST", "/campaign", json_body(body))
        )
        await writer.drain()
        status, headers, payload = await read_response(reader)
        return status, json.loads(payload) if payload else {}
    finally:
        writer.close()


def _run_with_server(index, scenario):
    async def main():
        server = QueryServer(
            index,
            ServingConfig(port=0),
            campaign=CampaignConfig(num_sets=300, seed=5),
        )
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.aclose()

    return asyncio.run(main())


class TestCampaignRoute:
    def test_allocates_over_http(self, small_index):
        items = [[round(float(v), 6) for v in row] for row in _mixes(3)]

        async def scenario(server):
            return await _post_campaign(
                "127.0.0.1",
                server.port,
                {"items": items, "k": 6, "algorithm": "lazy"},
            )

        status, payload = _run_with_server(small_index, scenario)
        assert status == 200
        assert payload["num_seeds"] == 6
        assert payload["algorithm"] == "lazy"
        assert not payload["degraded"]
        assert len(payload["assignments"]) == 3
        flat = [n for nodes in payload["assignments"] for n in nodes]
        assert len(flat) == len(set(flat)) == 6
        assert payload["total_spread"] > 0

    def test_deadline_expiry_degrades_over_http(self, small_index):
        items = [[round(float(v), 6) for v in row] for row in _mixes(2)]

        async def scenario(server):
            return await _post_campaign(
                "127.0.0.1",
                server.port,
                {"items": items, "k": 4, "deadline_ms": 1e-6},
            )

        status, payload = _run_with_server(small_index, scenario)
        assert status == 200
        assert payload["degraded"]
        assert payload["algorithm"] == "independent"
        assert payload["num_seeds"] == 4

    def test_rejects_malformed_and_wrong_method(self, small_index):
        async def scenario(server):
            bad = await _post_campaign(
                "127.0.0.1", server.port, {"items": [], "k": 3}
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(encode_request("GET", "/campaign", b""))
                await writer.drain()
                status, _, _ = await read_response(reader)
            finally:
                writer.close()
            return bad, status

        (bad_status, bad_payload), get_status = _run_with_server(
            small_index, scenario
        )
        assert bad_status == 400
        assert "items" in bad_payload["error"]
        assert get_status == 405

    def test_stats_surface_campaign_state(self, small_index):
        items = [[round(float(v), 6) for v in row] for row in _mixes(2)]

        async def scenario(server):
            await _post_campaign(
                "127.0.0.1", server.port, {"items": items, "k": 3}
            )
            return server.stats()

        stats = _run_with_server(small_index, scenario)
        assert stats["campaign"]["cached_oracles"] == 2
        assert stats["campaign"]["algorithm"] == "lazy"
