"""Documentation integrity: referenced files exist, examples listed in
the README are real, and the experiment index in DESIGN.md names real
bench files."""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_readme_example_files_exist():
    readme = (REPO / "README.md").read_text()
    for match in re.finditer(r"`examples/([a-z_]+\.py)`", readme):
        assert (REPO / "examples" / match.group(1)).exists(), match.group(1)


def test_design_bench_targets_exist():
    design = (REPO / "DESIGN.md").read_text()
    for match in re.finditer(r"benchmarks/(bench_[a-z0-9_]+\.py)", design):
        assert (REPO / "benchmarks" / match.group(1)).exists(), match.group(1)


def test_docs_directory_files_referenced_by_readme():
    readme = (REPO / "README.md").read_text()
    for doc in (REPO / "docs").glob("*.md"):
        assert doc.name in readme or doc.name == "API.md" or (
            f"docs/{doc.name}" in readme
        ), f"docs/{doc.name} not mentioned in README"


def test_paper_map_symbols_exist():
    """Every backtick-quoted repro.* dotted path in PAPER_MAP resolves."""
    import importlib

    text = (REPO / "docs" / "PAPER_MAP.md").read_text()
    for match in re.finditer(r"`(repro(?:\.[a-z_0-9]+)+)`", text):
        path = match.group(1)
        parts = path.split(".")
        # Try as module, then as module.attribute.
        try:
            importlib.import_module(path)
            continue
        except ModuleNotFoundError:
            pass
        module = importlib.import_module(".".join(parts[:-1]))
        assert hasattr(module, parts[-1]), path


def test_metric_catalog_matches_registrations():
    """docs/OBSERVABILITY.md's catalog is exactly the registered set.

    Both directions: every table row names a registered metric with the
    right type and label set, and every registration appears in the
    table.  Importing :mod:`repro.obs.instruments` performs all
    registrations at module load.
    """
    from repro import obs
    import repro.obs.instruments  # noqa: F401 - registration side effect

    registered = obs.get_registry().describe()
    text = (REPO / "docs" / "OBSERVABILITY.md").read_text()
    documented = {}
    for match in re.finditer(
        r"^\| `(repro_[a-z0-9_]+)` \| (counter|gauge|histogram) "
        r"\| ([^|]+) \|",
        text,
        re.MULTILINE,
    ):
        name, kind, labels_cell = match.groups()
        labels_cell = labels_cell.strip()
        labels = tuple(
            re.findall(r"`([a-z_]+)`", labels_cell)
        ) if labels_cell != "—" else ()
        documented[name] = {"kind": kind, "labels": labels}

    missing_from_docs = sorted(set(registered) - set(documented))
    assert not missing_from_docs, (
        f"registered but undocumented: {missing_from_docs}"
    )
    stale_in_docs = sorted(set(documented) - set(registered))
    assert not stale_in_docs, (
        f"documented but not registered: {stale_in_docs}"
    )
    for name, entry in documented.items():
        assert entry["kind"] == registered[name]["kind"], name
        assert entry["labels"] == registered[name]["labels"], name


def test_required_top_level_files_present():
    for name in (
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "CHANGELOG.md",
        "CONTRIBUTING.md",
        "LICENSE",
        "pyproject.toml",
    ):
        assert (REPO / name).exists(), name
