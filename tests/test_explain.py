"""Tests for answer provenance explanations."""

import numpy as np
import pytest

from repro.core import explain_answer


class TestExplainAnswer:
    @pytest.fixture(scope="class")
    def explanation(self, small_index, small_workload):
        answer = small_index.query(small_workload.items[0], 6)
        return answer, explain_answer(small_index, answer)

    def test_covers_every_seed(self, explanation):
        answer, result = explanation
        assert [e.node for e in result.seeds] == list(answer.seeds)
        assert [e.final_rank for e in result.seeds] == list(
            range(len(answer.seeds))
        )

    def test_support_bounds(self, explanation):
        answer, result = explanation
        for e in result.seeds:
            assert 0 <= e.supporting_lists <= answer.num_neighbors_used
            assert 0.0 <= e.support_weight <= 1.0 + 1e-9
            if e.supporting_lists:
                assert np.isfinite(e.mean_rank_in_lists)

    def test_top_seed_well_supported(self, explanation):
        _, result = explanation
        top = result.seeds[0]
        # The consensus winner must appear in at least one list, and a
        # strongly weighted one at that.
        assert top.supporting_lists >= 1
        assert top.support_weight > 0.0

    def test_for_node_lookup(self, explanation):
        answer, result = explanation
        node = answer.seeds[2]
        assert result.for_node(node).final_rank == 2
        with pytest.raises(KeyError):
            result.for_node(10**9)

    def test_render(self, explanation):
        _, result = explanation
        text = result.render()
        assert "provenance" in text
        assert "lists vouching" in text

    def test_epsilon_match_explanation(self, small_index):
        point = small_index.index_points[4]
        answer = small_index.query(point, 5)
        assert answer.epsilon_match
        result = explain_answer(small_index, answer)
        # All seeds come from the single matched list.
        for e in result.seeds:
            assert e.supporting_lists == 1
            assert e.support_weight == pytest.approx(1.0)
