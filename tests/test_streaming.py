"""Tests for the evolving-graph streaming subsystem (`repro.streaming`).

Covers the pieces in isolation — delta validation, CRC-safe log
persistence, edge-state transitions, the incremental maintainer's
invalidation accounting, the subscription registry — and integrated:
the :class:`StreamingEngine` driving index hot-swaps, fault injection
leaving committed state untouched, the synthetic workload generator,
streaming metrics, and the ``/deltas`` + ``/subscriptions`` server
routes end-to-end on a real asyncio server.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro import obs
from repro.core import InflexConfig, InflexIndex, ServingConfig
from repro.datasets import generate_delta_workload, generate_flixster_like
from repro.errors import CorruptArtifactError, StreamError
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
)
from repro.serving import QueryServer
from repro.serving.protocol import (
    encode_request,
    json_body,
    read_response,
)
from repro.streaming import (
    DeltaBatch,
    DeltaLog,
    EdgeDelta,
    EdgeState,
    IncrementalSketchMaintainer,
    StreamingEngine,
    SubscriptionRegistry,
)

PROBS3 = (0.3, 0.2, 0.1)


@pytest.fixture(scope="module")
def stream_dataset():
    return generate_flixster_like(
        num_nodes=120, num_topics=3, num_items=30, seed=23
    )


@pytest.fixture(scope="module")
def stream_index(stream_dataset) -> InflexIndex:
    config = InflexConfig(
        num_index_points=4,
        num_dirichlet_samples=600,
        seed_list_length=6,
        ris_num_sets=300,
        seed=29,
    )
    return InflexIndex.build(
        stream_dataset.graph, stream_dataset.item_topics, config
    )


def _maintainer(graph, *, num_points=3, num_sets=80, seed=31, **kwargs):
    rng = np.random.default_rng(seed)
    points = rng.dirichlet(np.full(graph.num_topics, 0.8), size=num_points)
    return IncrementalSketchMaintainer(
        graph, points, num_sets=num_sets, seed_list_length=5,
        seed=seed, **kwargs,
    )


# ----------------------------------------------------------------------
# Deltas, batches, and the append-only log
# ----------------------------------------------------------------------
class TestEdgeDelta:
    def test_round_trips_through_dict(self):
        delta = EdgeDelta("reweight", 3, 7, PROBS3)
        assert EdgeDelta.from_dict(delta.to_dict()) == delta

    @pytest.mark.parametrize(
        "op,tail,head,probs",
        [
            ("frobnicate", 0, 1, PROBS3),  # unknown op
            ("add", 0, 1, None),  # add needs probabilities
            ("add", 0, 1, (1.5, 0.2, 0.1)),  # out of [0, 1]
            ("add", 0, 1, ()),  # empty probabilities
            ("remove", 0, 1, PROBS3),  # remove must not carry probs
            ("add", -1, 1, PROBS3),  # negative endpoint
        ],
    )
    def test_invalid_deltas_rejected(self, op, tail, head, probs):
        with pytest.raises(StreamError):
            EdgeDelta(op, tail, head, probs)

    def test_from_dict_rejects_unknown_fields(self):
        payload = EdgeDelta("remove", 1, 2).to_dict()
        payload["bogus"] = True
        with pytest.raises(StreamError):
            EdgeDelta.from_dict(payload)


class TestDeltaBatch:
    def test_coerces_dict_deltas_and_reports_heads(self):
        batch = DeltaBatch(
            deltas=(
                EdgeDelta("add", 0, 5, PROBS3).to_dict(),
                EdgeDelta("remove", 2, 9),
            ),
            timestamp=1.5,
        )
        assert len(batch) == 2
        assert all(isinstance(d, EdgeDelta) for d in batch.deltas)
        assert batch.touched_heads() == {5, 9}

    def test_nonfinite_timestamp_rejected(self):
        with pytest.raises(StreamError):
            DeltaBatch(deltas=(), timestamp=float("nan"))


class TestDeltaLog:
    def _log(self):
        log = DeltaLog()
        log.append(
            DeltaBatch(deltas=(EdgeDelta("add", 0, 1, PROBS3),), timestamp=0.0)
        )
        log.append(
            DeltaBatch(deltas=(EdgeDelta("remove", 0, 1),), timestamp=1.0)
        )
        return log

    def test_rejects_backwards_timestamps(self):
        log = self._log()
        with pytest.raises(StreamError):
            log.append(DeltaBatch(deltas=(), timestamp=0.5))

    def test_save_load_round_trip(self, tmp_path):
        log = self._log()
        path = tmp_path / "stream.jsonl"
        log.save(path)
        loaded = DeltaLog.load(path)
        assert len(loaded) == len(log)
        assert [b.to_dict() for b in loaded] == [b.to_dict() for b in log]

    def test_corrupted_record_detected(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        self._log().save(path)
        lines = path.read_text().splitlines()
        # Flip the op inside the payload of the last record; its
        # stored CRC no longer matches.
        lines[-1] = lines[-1].replace('"remove"', '"add"')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CorruptArtifactError):
            DeltaLog.load(path)

    def test_truncated_record_detected(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        self._log().save(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])
        with pytest.raises(CorruptArtifactError):
            DeltaLog.load(path)

    def test_newer_format_version_rejected(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        self._log().save(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            DeltaLog.load(path)


class TestEdgeState:
    def _state(self):
        rng = np.random.default_rng(3)
        from repro.graph import TopicGraph

        pairs = np.asarray([(0, 1), (1, 2), (2, 0)])
        probs = rng.uniform(0.1, 0.5, size=(3, 3))
        return EdgeState.from_graph(TopicGraph.from_arcs(4, pairs, probs))

    def test_add_existing_arc_rejected(self):
        state = self._state()
        with pytest.raises(StreamError):
            state.apply_delta(EdgeDelta("add", 0, 1, PROBS3))

    def test_remove_missing_arc_rejected(self):
        state = self._state()
        with pytest.raises(StreamError):
            state.apply_delta(EdgeDelta("remove", 3, 0))

    def test_topic_count_mismatch_rejected(self):
        state = self._state()
        with pytest.raises(StreamError):
            state.apply_delta(EdgeDelta("add", 3, 0, (0.1, 0.2)))

    def test_graph_round_trip_preserves_arcs(self):
        state = self._state()
        state.apply_delta(EdgeDelta("add", 3, 0, PROBS3))
        state.apply_delta(EdgeDelta("remove", 0, 1))
        rebuilt = EdgeState.from_graph(state.to_graph())
        assert set(rebuilt.edges) == set(state.edges)
        for arc, probs in state.edges.items():
            np.testing.assert_allclose(rebuilt.edges[arc], probs)

    def test_decay_factor_bounds(self):
        state = self._state()
        with pytest.raises(ValueError):
            state.decay(1.5)
        with pytest.raises(ValueError):
            state.decay(-0.1)
        state.decay(0.0)  # decay-to-zero is legitimate
        assert all(np.all(p == 0.0) for p in state.edges.values())


# ----------------------------------------------------------------------
# Incremental maintainer
# ----------------------------------------------------------------------
class TestIncrementalSketchMaintainer:
    def test_invalidation_accounting_is_conservative(self, stream_dataset):
        maintainer = _maintainer(stream_dataset.graph)
        total = maintainer.num_points * 80
        batch = DeltaBatch(
            deltas=(EdgeDelta("add", 0, 1, PROBS3),)
            if (0, 1) not in EdgeState.from_graph(stream_dataset.graph).edges
            else (EdgeDelta("remove", 0, 1),),
            timestamp=0.0,
        )
        report = maintainer.apply_batch(batch)
        assert report.rr_sets_resampled + report.rr_sets_retained == total
        # A single-arc delta never invalidates everything: only sets
        # containing the arc's head are resampled.
        assert report.rr_sets_resampled < total
        assert maintainer.batches_applied == 1

    def test_backwards_timestamp_rejected(self, stream_dataset):
        maintainer = _maintainer(stream_dataset.graph)
        maintainer.apply_batch(DeltaBatch(deltas=(), timestamp=5.0))
        with pytest.raises(StreamError):
            maintainer.apply_batch(DeltaBatch(deltas=(), timestamp=1.0))

    def test_parallel_refresh_matches_serial(self, stream_dataset):
        log = generate_delta_workload(
            stream_dataset.graph, num_batches=3, batch_size=4, seed=41
        )
        serial = _maintainer(stream_dataset.graph, workers=1)
        threaded = _maintainer(stream_dataset.graph, workers=4)
        for batch in log:
            serial.apply_batch(batch)
            threaded.apply_batch(batch)
        for a, b in zip(serial.rr_collections, threaded.rr_collections):
            for rr_a, rr_b in zip(a.sets, b.sets):
                assert np.array_equal(rr_a, rr_b)
        assert [s.nodes for s in serial.seed_lists] == [
            s.nodes for s in threaded.seed_lists
        ]

    @pytest.mark.parametrize("site", ["delta-apply", "resample"])
    def test_injected_fault_leaves_state_untouched(
        self, stream_dataset, site
    ):
        maintainer = _maintainer(stream_dataset.graph)
        before_sets = [
            [rr.copy() for rr in coll.sets]
            for coll in maintainer.rr_collections
        ]
        before_seeds = [sl.nodes for sl in maintainer.seed_lists]
        before_graph = maintainer.graph
        plan = FaultPlan([FaultSpec(site=site, mode="error")])
        batch = DeltaBatch(
            deltas=(EdgeDelta("reweight", *next(
                iter(EdgeState.from_graph(stream_dataset.graph).edges)
            ), PROBS3),),
            timestamp=1.0,
        )
        with pytest.raises(InjectedFaultError):
            maintainer.apply_batch(batch, fault_plan=plan)
        # Apply is transactional: nothing committed.
        assert maintainer.batches_applied == 0
        assert maintainer.time == 0.0
        assert maintainer.graph is before_graph
        for coll, before in zip(maintainer.rr_collections, before_sets):
            for rr, rr_before in zip(coll.sets, before):
                assert np.array_equal(rr, rr_before)
        assert [s.nodes for s in maintainer.seed_lists] == before_seeds
        # The same batch succeeds once the fault clears, identically to
        # a maintainer that never saw the fault.
        report = maintainer.apply_batch(batch)
        assert report.num_deltas == 1

    def test_stats_shape(self, stream_dataset):
        maintainer = _maintainer(stream_dataset.graph)
        stats = maintainer.stats()
        assert stats["num_points"] == 3
        assert stats["num_sets"] == 80
        assert stats["batches_applied"] == 0
        assert stats["retain_fraction"] == 1.0  # vacuous before any batch


# ----------------------------------------------------------------------
# Workload generator
# ----------------------------------------------------------------------
class TestDeltaWorkload:
    def test_stream_is_replayable_and_seeded(self, stream_dataset):
        log_a = generate_delta_workload(
            stream_dataset.graph, num_batches=5, batch_size=6, seed=43
        )
        log_b = generate_delta_workload(
            stream_dataset.graph, num_batches=5, batch_size=6, seed=43
        )
        assert [b.to_dict() for b in log_a] == [b.to_dict() for b in log_b]
        # Replaying through EdgeState raises on any structural error.
        state = EdgeState.from_graph(stream_dataset.graph)
        for batch in log_a:
            for delta in batch.deltas:
                state.apply_delta(delta)

    def test_fraction_validation(self, stream_dataset):
        with pytest.raises(ValueError):
            generate_delta_workload(
                stream_dataset.graph, add_fraction=0.8, remove_fraction=0.5
            )


# ----------------------------------------------------------------------
# Subscriptions
# ----------------------------------------------------------------------
class TestSubscriptionRegistry:
    def test_register_baseline_and_notify(self, stream_index):
        registry = SubscriptionRegistry()
        gamma = np.full(3, 1 / 3)
        sub, baseline = registry.register(stream_index, gamma, 5)
        assert baseline.changed
        assert baseline.subscription_id == sub.subscription_id
        assert registry.current_answer(sub.subscription_id) == baseline.seeds
        # Changed points disjoint from the subscription's neighbors:
        # no re-evaluation happens.
        untouched = tuple(
            pid
            for pid in range(stream_index.num_index_points)
            if pid not in sub.neighbor_ids
        )
        updates = registry.notify(0, untouched, stream_index)
        assert updates == ()
        # Overlapping changed points force a re-evaluation.
        updates = registry.notify(1, sub.neighbor_ids[:1], stream_index)
        assert len(updates) == 1
        assert updates[0].batch_id == 1

    def test_poll_drains_and_unknown_id_raises(self, stream_index):
        registry = SubscriptionRegistry()
        sub, _ = registry.register(stream_index, np.full(3, 1 / 3), 5)
        registry.notify(0, sub.neighbor_ids[:1], stream_index)
        drained = registry.poll(sub.subscription_id)
        assert len(drained) == 1
        assert registry.poll(sub.subscription_id) == ()
        with pytest.raises(StreamError):
            registry.poll(999)

    def test_pending_queue_is_bounded(self, stream_index):
        registry = SubscriptionRegistry(max_pending=2)
        sub, _ = registry.register(stream_index, np.full(3, 1 / 3), 5)
        for batch_id in range(5):
            registry.notify(batch_id, sub.neighbor_ids[:1], stream_index)
        drained = registry.poll(sub.subscription_id)
        assert len(drained) == 2
        assert drained[-1].batch_id == 4  # newest kept

    def test_unregister(self, stream_index):
        registry = SubscriptionRegistry()
        sub, _ = registry.register(stream_index, np.full(3, 1 / 3), 5)
        assert registry.unregister(sub.subscription_id)
        assert not registry.unregister(sub.subscription_id)
        assert len(registry) == 0


# ----------------------------------------------------------------------
# Engine: maintainer + index hot-swap + subscriptions
# ----------------------------------------------------------------------
class TestStreamingEngine:
    def test_apply_updates_index_and_subscribers(
        self, stream_dataset, stream_index
    ):
        engine = StreamingEngine(stream_index, num_sets=150, seed=47)
        sub, baseline = engine.subscribe(np.full(3, 1 / 3), 5)
        assert baseline.seeds
        log = generate_delta_workload(
            stream_dataset.graph, num_batches=4, batch_size=6, seed=53
        )
        saw_update = False
        for report, updates in engine.replay(log):
            assert report.rr_sets_resampled >= 0
            saw_update = saw_update or bool(updates)
        assert engine.maintainer.batches_applied == 4
        # The served index reflects the evolved graph.
        assert engine.index.graph is engine.maintainer.graph
        answer = engine.index.query(np.full(3, 1 / 3), 5)
        assert answer.seeds
        stats = engine.stats()
        assert stats["maintainer"]["batches_applied"] == 4
        assert stats["subscriptions"]["subscriptions"] == 1

    def test_metrics_flow(self, stream_dataset, stream_index):
        obs.enable()
        obs.get_registry().reset()
        try:
            engine = StreamingEngine(stream_index, num_sets=100, seed=59)
            engine.subscribe(np.full(3, 1 / 3), 5)
            log = generate_delta_workload(
                stream_dataset.graph, num_batches=2, batch_size=4, seed=61
            )
            for _ in engine.replay(log):
                pass
            snapshot = obs.get_registry().snapshot()

            def total(name):
                return sum(
                    s["value"] for s in snapshot[name]["series"]
                )

            assert total("repro_stream_batches_applied_total") == 2.0
            assert total("repro_stream_deltas_applied_total") == 8.0
            assert total("repro_stream_rr_sets_resampled_total") > 0
            assert total("repro_stream_rr_sets_retained_total") > 0
            assert snapshot["repro_stream_subscriptions"]["series"]
            spans = [
                s
                for s in obs.get_tracer().spans()
                if s.name == "stream.apply"
            ]
            assert len(spans) == 2
        finally:
            obs.disable()
            obs.get_registry().reset()
            obs.get_tracer().clear()


# ----------------------------------------------------------------------
# Server routes
# ----------------------------------------------------------------------
async def _request(host, port, method, route, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json_body(payload) if payload is not None else b""
        writer.write(encode_request(method, route, body))
        await writer.drain()
        status, headers, raw = await read_response(reader)
        return status, json.loads(raw) if raw else {}
    finally:
        writer.close()


def _run_with_streaming_server(stream_index, scenario, **config_kwargs):
    config = ServingConfig(port=0, **config_kwargs)

    async def main():
        engine = StreamingEngine(stream_index, num_sets=120, seed=67)
        server = QueryServer(stream_index, config, streaming=engine)
        await server.start()
        try:
            return await scenario(server)
        finally:
            if not server.draining:
                await server.aclose()

    return asyncio.run(main())


class TestStreamingRoutes:
    def test_delta_and_subscription_round_trip(
        self, stream_dataset, stream_index
    ):
        log = generate_delta_workload(
            stream_dataset.graph, num_batches=1, batch_size=4, seed=71
        )
        batch_payload = log.batches[0].to_dict()

        async def scenario(server):
            host, port = "127.0.0.1", server.port
            status, sub_payload = await _request(
                host,
                port,
                "POST",
                "/subscriptions",
                {"gamma": [1 / 3, 1 / 3, 1 / 3], "k": 5},
            )
            assert status == 200
            sid = sub_payload["subscription"]["subscription_id"]
            assert sub_payload["baseline"]["seeds"]
            status, listing = await _request(host, port, "GET", "/subscriptions")
            assert status == 200 and len(listing["subscriptions"]) == 1
            status, applied = await _request(
                host, port, "POST", "/deltas", batch_payload
            )
            assert status == 200
            assert applied["report"]["num_deltas"] == 4
            status, updates = await _request(
                host, port, "GET", f"/subscriptions/{sid}/updates"
            )
            assert status == 200
            # A query still answers against the swapped index.
            status, answer = await _request(
                host,
                port,
                "POST",
                "/query",
                {"gamma": [1 / 3, 1 / 3, 1 / 3], "k": 5},
            )
            assert status == 200 and answer["seeds"]
            stats = server.stats()
            return updates, stats

        updates, stats = _run_with_streaming_server(stream_index, scenario)
        assert stats["streaming"]["maintainer"]["batches_applied"] == 1
        assert isinstance(updates["updates"], list)

    def test_malformed_batch_gets_400_unknown_subscription_404(
        self, stream_index
    ):
        async def scenario(server):
            host, port = "127.0.0.1", server.port
            bad = await _request(
                host,
                port,
                "POST",
                "/deltas",
                {"deltas": [{"op": "frobnicate", "tail": 0, "head": 1}],
                 "timestamp": 0.0},
            )
            missing = await _request(
                host, port, "GET", "/subscriptions/42/updates"
            )
            return bad[0], missing[0]

        bad_status, missing_status = _run_with_streaming_server(
            stream_index, scenario
        )
        assert bad_status == 400
        assert missing_status == 404

    def test_deltas_404_without_streaming(self, stream_index):
        config = ServingConfig(port=0)

        async def main():
            server = QueryServer(stream_index, config)
            await server.start()
            try:
                return await _request(
                    "127.0.0.1",
                    server.port,
                    "POST",
                    "/deltas",
                    {"deltas": [], "timestamp": 0.0},
                )
            finally:
                await server.aclose()

        status, _ = asyncio.run(main())
        assert status == 404
