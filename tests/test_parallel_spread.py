"""Differential tests for the parallel Monte-Carlo spread engine.

The engine's contract is *bit-identical* estimates for a given
``(seed, num_simulations)`` pair regardless of worker count or chunk
layout — every test here compares exact floats, never tolerances.  The
suite also covers the pool lifecycle: reuse across calls, shared-memory
leak accounting, and the single-point worker-knob validation.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.im.celfpp import celfpp_seed_selection
from repro.im.greedy import greedy_seed_selection
from repro.propagation import (
    ParallelMonteCarloSpread,
    active_payload_count,
    estimate_spread,
    shutdown_pools,
)
from repro.propagation import parallel as parallel_mod
from repro.resilience import get_fault_plan
from repro.workers import (
    cpu_count,
    default_sim_workers,
    resolve_worker_allocation,
    resolve_workers,
)

SEED_SETS = ([0, 5, 9], [1], [2, 3, 4, 17], [])


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    """Leave no pools or segments behind for other test modules."""
    yield
    shutdown_pools()


def _estimates(graph, gamma, **kwargs):
    with ParallelMonteCarloSpread(graph, gamma, **kwargs) as estimator:
        return [
            estimator.estimate_with_error(seeds) for seeds in SEED_SETS
        ]


class TestBitIdenticalDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_sequential(self, small_graph, workers):
        gamma = np.full(4, 0.25)
        sequential = _estimates(
            small_graph, gamma, num_simulations=64, seed=42, workers=1
        )
        parallel = _estimates(
            small_graph,
            gamma,
            num_simulations=64,
            seed=42,
            workers=workers,
        )
        # Dataclass equality compares mean and std exactly — any drift
        # in stream derivation or chunk assembly fails here.
        assert parallel == sequential

    @pytest.mark.parametrize("chunks_per_worker", [1, 3, 7])
    def test_uneven_chunk_splits(self, small_graph, chunks_per_worker):
        """A prime simulation count over odd chunk sizes: the chunk
        boundaries must never touch the random streams."""
        gamma = np.full(4, 0.25)
        reference = _estimates(
            small_graph, gamma, num_simulations=37, seed=7, workers=1
        )
        chunked = _estimates(
            small_graph,
            gamma,
            num_simulations=37,
            seed=7,
            workers=3,
            chunks_per_worker=chunks_per_worker,
        )
        assert chunked == reference

    def test_estimate_many_matches_estimate_sequence(self, small_graph):
        gamma = np.full(4, 0.25)
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=40, seed=3, workers=1
        ) as one_by_one:
            expected = [
                one_by_one.estimate(seeds) for seeds in SEED_SETS
            ]
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=40, seed=3, workers=2
        ) as batched:
            assert batched.estimate_many(SEED_SETS) == expected

    def test_repeated_runs_identical(self, small_graph):
        gamma = np.full(4, 0.25)
        first = _estimates(
            small_graph, gamma, num_simulations=30, seed=11, workers=2
        )
        second = _estimates(
            small_graph, gamma, num_simulations=30, seed=11, workers=2
        )
        assert first == second

    def test_different_seeds_differ(self, small_graph):
        gamma = np.full(4, 0.25)
        a = _estimates(
            small_graph, gamma, num_simulations=30, seed=1, workers=2
        )
        b = _estimates(
            small_graph, gamma, num_simulations=30, seed=2, workers=2
        )
        assert a[0] != b[0]

    def test_estimate_spread_routes_through_parallel_engine(
        self, small_graph
    ):
        gamma = np.full(4, 0.25)
        routed = estimate_spread(
            small_graph,
            gamma,
            [0, 5, 9],
            num_simulations=48,
            seed=19,
            workers=2,
        )
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=48, seed=19, workers=1
        ) as direct:
            assert routed == direct.estimate_with_error([0, 5, 9])

    def test_env_default_routes_parallel(self, small_graph, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_WORKERS", "2")
        assert default_sim_workers() == 2
        gamma = np.full(4, 0.25)
        via_env = estimate_spread(
            small_graph, gamma, [1, 2], num_simulations=24, seed=5
        )
        explicit = estimate_spread(
            small_graph, gamma, [1, 2], num_simulations=24, seed=5,
            workers=2,
        )
        assert via_env == explicit


class TestGreedyAlgorithmsOnParallelOracle:
    def test_celfpp_batched_equals_unbatched(self, small_graph):
        """The estimate_many fast path must consume the oracle's call
        sequence exactly like the plain loop would."""
        gamma = np.full(4, 0.25)
        candidates = range(0, 40)

        class _NoBatch:
            """Hide estimate_many so CELF++ takes the loop path."""

            def __init__(self, inner):
                self._inner = inner

            def estimate(self, seeds):
                return self._inner.estimate(seeds)

        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=25, seed=13, workers=1
        ) as plain:
            unbatched = celfpp_seed_selection(
                _NoBatch(plain), small_graph.num_nodes, 3,
                candidates=candidates,
            )
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=25, seed=13, workers=2
        ) as pooled:
            batched = celfpp_seed_selection(
                pooled, small_graph.num_nodes, 3, candidates=candidates
            )
        assert batched.nodes == unbatched.nodes
        assert batched.marginal_gains == unbatched.marginal_gains

    def test_greedy_batched_equals_unbatched(self, small_graph):
        gamma = np.full(4, 0.25)
        candidates = range(0, 25)

        class _NoBatch:
            """Hide estimate_many so greedy takes the loop path."""

            def __init__(self, inner):
                self._inner = inner

            def estimate(self, seeds):
                return self._inner.estimate(seeds)

        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=20, seed=29, workers=1
        ) as plain:
            unbatched = greedy_seed_selection(
                _NoBatch(plain), small_graph.num_nodes, 3,
                candidates=candidates,
            )
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=20, seed=29, workers=2
        ) as pooled:
            batched = greedy_seed_selection(
                pooled, small_graph.num_nodes, 3, candidates=candidates
            )
        assert batched.nodes == unbatched.nodes


class TestPoolLifecycle:
    def test_pool_reused_across_calls_and_estimators(self, small_graph):
        # Pool *identity* is only stable without fault injection: an
        # injected worker crash (e.g. the CI chaos job's REPRO_FAULTS
        # plan) legitimately rebuilds the pool mid-call.
        check_identity = get_fault_plan() is None
        gamma = np.full(4, 0.25)
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=16, seed=0, workers=2
        ) as estimator:
            estimator.estimate([0])
            first_pool = parallel_mod._get_executor(2)
            estimator.estimate([1, 2])
            if check_identity:
                assert parallel_mod._get_executor(2) is first_pool
            assert estimator.calls == 2
        # A second estimator with the same width shares the pool.
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=16, seed=1, workers=2
        ) as other:
            other.estimate([3])
            if check_identity:
                assert parallel_mod._get_executor(2) is first_pool
        assert 2 in parallel_mod.pool_widths()

    def test_payload_created_once_per_estimator(self, small_graph):
        gamma = np.full(4, 0.25)
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=16, seed=0, workers=2
        ) as estimator:
            estimator.estimate([0])
            payload = estimator._payload
            assert payload is not None
            estimator.estimate([1])
            assert estimator._payload is payload

    def test_close_releases_shared_memory(self, small_graph):
        gamma = np.full(4, 0.25)
        before = active_payload_count()
        estimator = ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=16, seed=0, workers=2
        )
        estimator.estimate([0, 1])
        assert active_payload_count() == before + 1
        kind, _, detail = estimator._payload.spec
        estimator.close()
        assert active_payload_count() == before
        if kind == "shm" and Path("/dev/shm").is_dir():
            leaked = [
                name
                for name, _, _ in detail
                if (Path("/dev/shm") / name.lstrip("/")).exists()
            ]
            assert not leaked, f"leaked shared memory segments: {leaked}"

    def test_closed_estimator_rejects_dispatch(self, small_graph):
        gamma = np.full(4, 0.25)
        estimator = ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=8, seed=0, workers=2
        )
        estimator.close()
        with pytest.raises(RuntimeError):
            estimator.estimate([0])

    def test_shutdown_pools_is_idempotent_and_recoverable(
        self, small_graph
    ):
        gamma = np.full(4, 0.25)
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=8, seed=0, workers=2
        ) as estimator:
            reference = estimator.estimate([0, 1])
        shutdown_pools()
        shutdown_pools()
        assert parallel_mod.pool_widths() == ()
        assert active_payload_count() == 0
        # The next estimate lazily recreates the pool, same results.
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=8, seed=0, workers=2
        ) as estimator:
            assert estimator.estimate([0, 1]) == reference

    def test_atexit_hook_registered_after_first_pool(self, small_graph):
        gamma = np.full(4, 0.25)
        with ParallelMonteCarloSpread(
            small_graph, gamma, num_simulations=8, seed=0, workers=2
        ) as estimator:
            estimator.estimate([0])
        assert parallel_mod._ATEXIT_REGISTERED


class TestWorkerKnobValidation:
    def test_resolve_workers_accepts_int_auto_and_digits(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("4") == 4
        assert resolve_workers("auto") == cpu_count()
        assert resolve_workers(None) == 1

    @pytest.mark.parametrize("bad", [0, -2, "zero", 1.5, True, ""])
    def test_resolve_workers_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)

    def test_error_message_names_the_knob(self):
        with pytest.raises(ValueError, match="simulation_workers"):
            resolve_workers(0, name="simulation_workers")

    def test_allocation_clamps_inner_level(self):
        assert resolve_worker_allocation(4, 4, budget=8) == (4, 2)
        assert resolve_worker_allocation(4, 4, budget=2) == (4, 1)
        # A sequential outer level never clamps the simulation pool.
        assert resolve_worker_allocation(1, 6, budget=2) == (1, 6)
        assert resolve_worker_allocation(6, 1, budget=2) == (6, 1)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_WORKERS", raising=False)
        assert default_sim_workers() == 1
        monkeypatch.setenv("REPRO_SIM_WORKERS", "3")
        assert default_sim_workers() == 3
        monkeypatch.setenv("REPRO_SIM_WORKERS", "auto")
        assert default_sim_workers() == cpu_count()
        monkeypatch.setenv("REPRO_SIM_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_SIM_WORKERS"):
            default_sim_workers()

    def test_estimator_validation(self, small_graph):
        gamma = np.full(4, 0.25)
        with pytest.raises(ValueError):
            ParallelMonteCarloSpread(small_graph, gamma, num_simulations=0)
        with pytest.raises(ValueError):
            ParallelMonteCarloSpread(
                small_graph, gamma, chunks_per_worker=0
            )
        with pytest.raises(ValueError):
            ParallelMonteCarloSpread(small_graph, gamma, workers=0)
        auto = ParallelMonteCarloSpread(small_graph, gamma, workers="auto")
        assert auto.workers == cpu_count()
        auto.close()

    def test_config_validates_at_parse_time(self):
        from repro.core import InflexConfig

        with pytest.raises(ValueError, match="workers"):
            InflexConfig(workers=0)
        with pytest.raises(ValueError, match="simulation_workers"):
            InflexConfig(simulation_workers="sometimes")
        config = InflexConfig(workers="auto", simulation_workers=2)
        assert config.effective_workers == cpu_count()
        assert config.effective_simulation_workers == 2
        outer, inner = config.worker_allocation()
        assert outer >= 1 and inner >= 1


class TestOfflineMcEngines:
    def test_celfpp_mc_engine_parallel_matches_sequential(
        self, tiny_graph
    ):
        from repro.core.offline import offline_seed_list

        gamma = [0.6, 0.4]
        sequential = offline_seed_list(
            tiny_graph, gamma, 3, engine="celf++-mc",
            num_simulations=30, sim_workers=1, seed=17,
        )
        pooled = offline_seed_list(
            tiny_graph, gamma, 3, engine="celf++-mc",
            num_simulations=30, sim_workers=2, seed=17,
        )
        assert sequential.nodes == pooled.nodes
        assert sequential.marginal_gains == pooled.marginal_gains

    def test_greedy_mc_engine_parallel_matches_sequential(
        self, tiny_graph
    ):
        from repro.core.offline import offline_seed_list

        gamma = [0.6, 0.4]
        sequential = offline_seed_list(
            tiny_graph, gamma, 2, engine="greedy-mc",
            num_simulations=30, sim_workers=1, seed=23,
        )
        pooled = offline_seed_list(
            tiny_graph, gamma, 2, engine="greedy-mc",
            num_simulations=30, sim_workers=2, seed=23,
        )
        assert sequential.nodes == pooled.nodes


class TestObservability:
    def test_parallel_dispatch_records_metrics(self, small_graph):
        from repro import obs

        obs.enable()
        try:
            registry = obs.get_registry()
            registry.reset()
            gamma = np.full(4, 0.25)
            with ParallelMonteCarloSpread(
                small_graph, gamma, num_simulations=32, seed=0, workers=2
            ) as estimator:
                estimator.estimate([0, 1, 2])
            snapshot = registry.snapshot()
            chunks = snapshot["repro_sim_chunks_dispatched_total"]
            assert chunks["series"][0]["value"] >= 1
            per_worker = snapshot["repro_sim_worker_simulations_total"]
            total = sum(
                entry["value"] for entry in per_worker["series"]
            )
            assert total == 32
            sims = snapshot["repro_mc_simulations_total"]
            assert sims["series"][0]["value"] >= 32
        finally:
            obs.get_registry().reset()
            obs.disable()
