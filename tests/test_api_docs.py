"""Documentation health: every public symbol carries a docstring, and
the generated API reference stays in sync with the code."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_generator():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import gen_api_docs
    finally:
        sys.path.pop(0)
    return gen_api_docs


def test_every_public_symbol_documented():
    gen_api_docs = _load_generator()
    undocumented = []
    for name, module in gen_api_docs.iter_public_modules():
        for kind, symbol, doc in gen_api_docs.collect(module):
            if doc == "(no docstring)" and symbol != "build_parser":
                undocumented.append(f"{name}.{symbol}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_api_reference_regenerates():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "gen_api_docs.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    api = (REPO_ROOT / "docs" / "API.md").read_text()
    # Spot-check central symbols appear.
    for symbol in (
        "InflexIndex",
        "inflex_search",
        "kendall_tau_top",
        "TICLearner",
        "celfpp_seed_selection",
    ):
        assert symbol in api
