"""Tests for Bregman K-means++ and G-means."""

import numpy as np
import pytest

from repro.clustering import (
    bregman_kmeans,
    cluster_is_gaussian,
    gmeans,
    kmeanspp_seeding,
    learn_branching_factor,
)
from repro.divergence import KLDivergence, SquaredEuclidean
from repro.simplex import sample_uniform_simplex


def _three_blobs(seed=0, spread=0.02, per_blob=40):
    rng = np.random.default_rng(seed)
    centers = np.array(
        [[0.8, 0.1, 0.1], [0.1, 0.8, 0.1], [0.1, 0.1, 0.8]]
    )
    points = []
    labels = []
    for i, center in enumerate(centers):
        blob = center + rng.normal(0, spread, (per_blob, 3))
        blob = np.clip(blob, 1e-4, None)
        blob /= blob.sum(axis=1, keepdims=True)
        points.append(blob)
        labels.extend([i] * per_blob)
    return np.vstack(points), np.asarray(labels)


class TestSeeding:
    def test_returns_distinct_indices(self):
        pts = sample_uniform_simplex(50, 4, seed=1)
        idx = kmeanspp_seeding(pts, 5, KLDivergence(), seed=2)
        assert len(set(idx.tolist())) == 5

    def test_k_bounds(self):
        pts = sample_uniform_simplex(5, 3, seed=3)
        with pytest.raises(ValueError):
            kmeanspp_seeding(pts, 6, KLDivergence())
        with pytest.raises(ValueError):
            kmeanspp_seeding(pts, 0, KLDivergence())

    def test_duplicate_points_handled(self):
        pts = np.tile(np.array([[0.5, 0.5]]), (10, 1))
        idx = kmeanspp_seeding(pts, 3, SquaredEuclidean(), seed=4)
        assert len(set(idx.tolist())) == 3


class TestBregmanKMeans:
    @pytest.mark.parametrize(
        "divergence", [KLDivergence(), SquaredEuclidean()]
    )
    def test_recovers_blobs(self, divergence):
        pts, truth = _three_blobs(seed=5)
        result = bregman_kmeans(pts, 3, divergence, seed=6, n_init=3)
        # Each true blob should map to a single predicted cluster.
        for blob in range(3):
            labels = result.labels[truth == blob]
            assert len(set(labels.tolist())) == 1

    def test_inertia_decreases_with_k(self):
        pts = sample_uniform_simplex(120, 4, seed=7)
        div = KLDivergence()
        inertia = [
            bregman_kmeans(pts, k, div, seed=8, n_init=2).inertia
            for k in (2, 4, 8, 16)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(inertia, inertia[1:]))

    def test_labels_match_nearest_centroid(self):
        pts = sample_uniform_simplex(60, 3, seed=9)
        div = KLDivergence()
        result = bregman_kmeans(pts, 4, div, seed=10)
        for i, point in enumerate(pts):
            divs = [
                div.divergence(point, centroid)
                for centroid in result.centroids
            ]
            assert result.labels[i] == int(np.argmin(divs))

    def test_k_equals_n(self):
        pts = sample_uniform_simplex(6, 3, seed=11)
        result = bregman_kmeans(pts, 6, KLDivergence(), seed=12)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_deterministic_with_seed(self):
        pts = sample_uniform_simplex(40, 3, seed=13)
        a = bregman_kmeans(pts, 3, KLDivergence(), seed=14)
        b = bregman_kmeans(pts, 3, KLDivergence(), seed=14)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            bregman_kmeans(np.empty((0, 3)), 2, KLDivergence())
        with pytest.raises(ValueError):
            bregman_kmeans(
                sample_uniform_simplex(5, 3, seed=1),
                2,
                KLDivergence(),
                n_init=0,
            )


class TestGMeans:
    def test_single_gaussian_stays_one_cluster(self):
        rng = np.random.default_rng(15)
        pts = rng.normal(0, 1, (200, 2))
        result = gmeans(pts, SquaredEuclidean(), seed=16)
        assert result.num_clusters == 1

    def test_separated_blobs_split(self):
        pts, _ = _three_blobs(seed=17, per_blob=60)
        result = gmeans(
            pts, SquaredEuclidean(), alpha=0.001, seed=18, max_clusters=8
        )
        assert result.num_clusters >= 2

    def test_max_clusters_respected(self):
        pts, _ = _three_blobs(seed=19)
        result = gmeans(
            pts, SquaredEuclidean(), alpha=0.1, seed=20, max_clusters=2
        )
        assert result.num_clusters <= 2

    def test_cluster_is_gaussian_on_gaussian(self):
        rng = np.random.default_rng(21)
        pts = rng.normal(5, 1, (300, 3))
        assert cluster_is_gaussian(
            pts, SquaredEuclidean(), alpha=0.0001, seed=22
        )

    def test_cluster_is_gaussian_on_two_blobs(self):
        rng = np.random.default_rng(23)
        pts = np.vstack(
            [rng.normal(-5, 0.3, (150, 2)), rng.normal(5, 0.3, (150, 2))]
        )
        assert not cluster_is_gaussian(
            pts, SquaredEuclidean(), alpha=0.0001, seed=24
        )

    def test_tiny_cluster_treated_gaussian(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        assert cluster_is_gaussian(pts, SquaredEuclidean(), alpha=0.05)


class TestLearnBranchingFactor:
    def test_returns_at_least_two(self):
        pts = sample_uniform_simplex(100, 3, seed=25)
        result = learn_branching_factor(pts, KLDivergence(), seed=26)
        assert result.num_clusters >= 2

    def test_rejects_singleton(self):
        with pytest.raises(ValueError):
            learn_branching_factor(
                np.array([[0.5, 0.5]]), KLDivergence(), seed=27
            )

    def test_covers_all_points(self):
        pts = sample_uniform_simplex(80, 4, seed=28)
        result = learn_branching_factor(pts, KLDivergence(), seed=29)
        assert result.labels.shape == (80,)
        assert set(result.labels.tolist()) == set(
            range(result.num_clusters)
        )
