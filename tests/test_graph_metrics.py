"""Tests for graph diagnostics and failure-injection of persistence."""

import numpy as np
import pytest

from repro.errors import InvalidGraphError
from repro.graph import (
    TopicGraph,
    interest_topic_graph,
    load_graph,
    per_topic_strength,
    save_graph,
    summarize_graph,
)
from repro.graph.metrics import _gini


class TestGini:
    def test_equal_values_zero(self):
        assert _gini(np.full(10, 3.0)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert _gini(values) > 0.95

    def test_empty(self):
        assert _gini(np.array([])) == 0.0


class TestSummarizeGraph:
    def test_basic_fields(self, small_graph):
        summary = summarize_graph(small_graph)
        assert summary.num_nodes == small_graph.num_nodes
        assert summary.num_arcs == small_graph.num_arcs
        assert summary.mean_out_degree == pytest.approx(
            small_graph.num_arcs / small_graph.num_nodes
        )
        assert 0.0 <= summary.degree_gini <= 1.0
        assert 0.0 <= summary.reciprocity <= 1.0
        assert "Graph summary" in summary.render()

    def test_interest_graph_signatures(self):
        g = interest_topic_graph(
            400, 5, topics_per_node=1, base_strength=0.2, seed=1
        )
        summary = summarize_graph(g)
        # The dataset's statistical signatures (DESIGN.md §2):
        # influencer hierarchy, topic-localized influence, subcritical
        # uniform-item propagation.
        assert summary.degree_gini > 0.3
        assert summary.topic_concentration > 2.0 / 5.0
        assert summary.branching_factor < 1.0

    def test_empty_graph(self):
        g = TopicGraph.from_arcs(3, np.empty((0, 2)), np.empty((0, 2)))
        summary = summarize_graph(g)
        assert summary.num_arcs == 0
        assert summary.branching_factor == 0.0

    def test_reciprocity_of_symmetric_graph(self):
        arcs = [(0, 1), (1, 0), (1, 2)]
        probs = np.full((3, 1), 0.5)
        g = TopicGraph.from_arcs(3, np.asarray(arcs), probs)
        assert summarize_graph(g).reciprocity == pytest.approx(2 / 3)


class TestPerTopicStrength:
    def test_sums_probabilities(self, tiny_graph):
        strength = per_topic_strength(tiny_graph)
        assert np.allclose(strength, tiny_graph.probabilities.sum(axis=0))

    def test_single_topic_concentration(self):
        g = interest_topic_graph(
            200, 4, topics_per_node=1, off_topic_ratio=0.0, seed=2
        )
        strength = per_topic_strength(g)
        # Every topic gets some mass (interests are spread over topics).
        assert np.all(strength > 0)


class TestPersistenceFailureInjection:
    def test_truncated_graph_file(self, tmp_path, tiny_graph):
        path = tmp_path / "graph.npz"
        save_graph(tiny_graph, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            load_graph(path)

    def test_wrong_version_rejected(self, tmp_path, tiny_graph):
        path = tmp_path / "graph.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(999),
            num_nodes=np.int64(tiny_graph.num_nodes),
            indptr=tiny_graph.indptr,
            indices=tiny_graph.indices,
            probabilities=tiny_graph.probabilities,
        )
        with pytest.raises(InvalidGraphError):
            load_graph(path)

    def test_corrupted_probabilities_rejected(self, tmp_path, tiny_graph):
        path = tmp_path / "graph.npz"
        bad = tiny_graph.probabilities.copy()
        bad[0, 0] = 7.5  # out of [0, 1]
        np.savez_compressed(
            path,
            format_version=np.int64(1),
            num_nodes=np.int64(tiny_graph.num_nodes),
            indptr=tiny_graph.indptr,
            indices=tiny_graph.indices,
            probabilities=bad,
        )
        with pytest.raises(InvalidGraphError):
            load_graph(path)

    def test_index_wrong_version(self, tmp_path, small_index, small_dataset):
        from repro.core import load_index, save_index

        path = tmp_path / "index.npz"
        save_index(small_index, path)
        with np.load(path) as data:
            contents = {key: data[key] for key in data.files}
        contents["format_version"] = np.int64(42)
        np.savez_compressed(path, **contents)
        with pytest.raises(ValueError):
            load_index(path, small_dataset.graph)
