"""Tests for simplex sampling and the ILR transform."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simplex import (
    ilr_inverse,
    ilr_transform,
    kl_divergence,
    sample_uniform_simplex,
)


class TestUniformSampling:
    def test_shape_and_support(self):
        pts = sample_uniform_simplex(50, 6, seed=1)
        assert pts.shape == (50, 6)
        assert np.allclose(pts.sum(axis=1), 1.0)
        assert np.all(pts >= 0)

    def test_deterministic(self):
        a = sample_uniform_simplex(10, 3, seed=2)
        b = sample_uniform_simplex(10, 3, seed=2)
        assert np.allclose(a, b)

    def test_mean_near_center(self):
        pts = sample_uniform_simplex(20000, 4, seed=3)
        assert np.allclose(pts.mean(axis=0), 0.25, atol=0.01)

    def test_zero_samples(self):
        assert sample_uniform_simplex(0, 3, seed=1).shape == (0, 3)

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            sample_uniform_simplex(-1, 3)
        with pytest.raises(ValueError):
            sample_uniform_simplex(5, 0)


class TestILR:
    def test_shape(self):
        pts = sample_uniform_simplex(10, 5, seed=4)
        coords = ilr_transform(pts)
        assert coords.shape == (10, 4)

    def test_single_vector(self):
        vec = np.array([0.2, 0.3, 0.5])
        assert ilr_transform(vec).shape == (2,)

    def test_round_trip(self):
        pts = sample_uniform_simplex(25, 4, seed=5)
        back = ilr_inverse(ilr_transform(pts))
        assert np.allclose(back, pts, atol=1e-8)

    def test_round_trip_single(self):
        vec = np.array([0.1, 0.2, 0.7])
        assert np.allclose(ilr_inverse(ilr_transform(vec)), vec, atol=1e-8)

    def test_center_maps_to_origin(self):
        center = np.full(5, 0.2)
        assert np.allclose(ilr_transform(center), 0.0, atol=1e-12)

    def test_isometry_of_clr_distances(self):
        # ILR is an isometry of the Aitchison geometry: Euclidean
        # distances between ILR images equal Aitchison distances.
        pts = sample_uniform_simplex(2, 4, seed=6)
        clr = np.log(pts) - np.log(pts).mean(axis=1, keepdims=True)
        aitchison = np.linalg.norm(clr[0] - clr[1])
        coords = ilr_transform(pts)
        euclid = np.linalg.norm(coords[0] - coords[1])
        assert euclid == pytest.approx(aitchison, rel=1e-9)

    @given(st.integers(min_value=0, max_value=1000))
    def test_property_round_trip(self, seed):
        pts = sample_uniform_simplex(3, 5, seed=seed)
        assert np.allclose(ilr_inverse(ilr_transform(pts)), pts, atol=1e-7)


class TestOrderingConsistency:
    def test_kl_and_ilr_broadly_agree_on_near_vs_far(self):
        base = np.array([0.7, 0.1, 0.1, 0.1])
        near = np.array([0.65, 0.15, 0.1, 0.1])
        far = np.array([0.05, 0.05, 0.2, 0.7])
        assert kl_divergence(near, base) < kl_divergence(far, base)
        d_near = np.linalg.norm(ilr_transform(near) - ilr_transform(base))
        d_far = np.linalg.norm(ilr_transform(far) - ilr_transform(base))
        assert d_near < d_far
