"""Generate a stitched cross-process fleet trace artifact.

Starts a two-shard serving fleet in-process, drives one query through
*each* shard under a single pinned trace id (the router honors a
client-supplied ``X-Trace-Id``), then asks the router to stitch the
workers' span trees via ``/fleet/trace?trace=<id>`` — the endpoint
pulls ``/debug/spans`` from every shard and adopts the payloads under
the router's own request span.  The result is one Chrome
``trace_event`` file (load at chrome://tracing or
https://ui.perfetto.dev) showing a request crossing three processes:
the router and both workers.

The script fails loudly when the stitched trace is *not* cross-process
(no adopted spans from at least two distinct worker pids), so the CI
artifact doubles as an end-to-end check of trace propagation through
the fleet's proxy layer.

Usage::

    PYTHONPATH=src python tools/gen_fleet_trace.py \
        --trace-out fleet_trace.json --report-out fleet_trace_report.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro import obs
from repro.core import FleetConfig, InflexConfig, InflexIndex, ServingConfig
from repro.datasets import generate_flixster_like
from repro.serving import Fleet
from repro.serving.protocol import encode_request, json_body, read_response

TRACE_ID = "fleet-sample-trace"


def _build_index() -> InflexIndex:
    data = generate_flixster_like(
        num_nodes=120,
        num_topics=3,
        num_items=20,
        topics_per_node=1,
        base_strength=0.25,
        seed=5,
    )
    config = InflexConfig(
        num_index_points=8,
        num_dirichlet_samples=400,
        seed_list_length=6,
        ris_num_sets=300,
        knn=4,
        leaf_size=4,
        seed=5,
    )
    return InflexIndex.build(data.graph, data.item_topics, config)


async def _request(host, port, method, target, payload=None, headers=None):
    """One short-lived client request against the router."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json_body(payload) if payload is not None else b""
        writer.write(
            encode_request(
                method,
                target,
                body,
                host=host,
                keep_alive=False,
                extra_headers=headers,
            )
        )
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()


async def _drive_fleet(index: InflexIndex) -> dict:
    """Start the fleet, pin one trace across both shards, stitch it.

    Returns the facts the caller asserts on: worker pids, the shards
    that answered, and the ``/fleet/trace`` adoption count.
    """
    fleet = Fleet(
        index,
        ServingConfig(port=0),
        FleetConfig(workers=2, heartbeat_interval_s=0.1),
    )
    await fleet.start()
    try:
        worker_pids = sorted(
            handle.process.pid for handle in fleet._handles
        )
        shards = []
        for shard in range(2):
            # Each shard's own Dirichlet anchor is, by construction,
            # the gamma that routes to it.
            gamma = [round(float(v), 6) for v in fleet._anchors[shard]]
            status, headers, _ = await _request(
                "127.0.0.1",
                fleet.port,
                "POST",
                "/query",
                payload={"gamma": gamma, "k": 5},
                headers={
                    "X-Trace-Id": TRACE_ID,
                    "X-Request-Id": f"trace-sample-{shard}",
                },
            )
            if status != 200:
                raise RuntimeError(
                    f"query for shard {shard} returned {status}"
                )
            shards.append(headers.get("x-shard"))
        status, _, body = await _request(
            "127.0.0.1",
            fleet.port,
            "GET",
            f"/fleet/trace?trace={TRACE_ID}",
        )
        if status != 200:
            raise RuntimeError(f"/fleet/trace returned {status}")
        stitched = json.loads(body)
    finally:
        await fleet.aclose()
    return {
        "worker_pids": worker_pids,
        "shards": shards,
        "adopted": stitched["adopted"],
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out",
        default="fleet_trace.json",
        help="stitched Chrome trace output path",
    )
    parser.add_argument(
        "--report-out",
        default="fleet_trace_report.json",
        help="JSON summary output path",
    )
    args = parser.parse_args(argv)

    index = _build_index()
    obs.enable()
    tracer = obs.get_tracer()
    tracer.clear()
    try:
        facts = asyncio.run(_drive_fleet(index))
        spans = tracer.find_trace(TRACE_ID)
        adopted_pids = sorted(
            {
                record.thread_id
                for record in spans
                if record.thread_id in facts["worker_pids"]
            }
        )
        count = tracer.write_chrome_trace(args.trace_out)
        report = {
            "trace_id": TRACE_ID,
            "spans_in_trace": len(spans),
            "spans_exported": count,
            "adopted": facts["adopted"],
            "shards_answering": facts["shards"],
            "worker_pids": facts["worker_pids"],
            "worker_pids_in_trace": adopted_pids,
            "span_names": sorted({record.name for record in spans}),
        }
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)

        print(
            f"trace {TRACE_ID}: {len(spans)} spans "
            f"({facts['adopted']} adopted from workers) -> {args.trace_out}"
        )
        print(f"shards answering: {facts['shards']}")
        print(f"worker pids in trace: {adopted_pids}")
        print(f"span names: {', '.join(report['span_names'])}")
        if len(adopted_pids) < 2:
            print(
                "ERROR: expected adopted spans from >= 2 worker "
                f"processes, saw pids {adopted_pids} "
                f"(workers: {facts['worker_pids']})",
                file=sys.stderr,
            )
            return 1
        return 0
    finally:
        obs.disable()
        tracer.clear()


if __name__ == "__main__":
    sys.exit(main())
