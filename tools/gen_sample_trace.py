"""Generate a sample cross-process trace and flight-recorder dump.

Produces the two telemetry artifacts CI uploads on every run so a
reviewer can eyeball what the request-scoped observability layer
actually records without running anything locally:

* a Chrome ``trace_event`` file (load at chrome://tracing or
  https://ui.perfetto.dev) holding one request's full span tree — the
  ``query`` phases recorded in the driving thread *and* the
  ``spread.chunk`` spans recorded inside pool worker processes, all
  stitched under one trace id via :meth:`repro.obs.tracing.Tracer.adopt`;
* a flight-recorder dump (``FlightRecorder.snapshot()`` JSON) whose
  slow ring shows the same request with its captured span tree.

The script fails loudly when the trace is *not* cross-process (fewer
than two distinct worker pids among the chunk spans), so the CI
artifact doubles as an end-to-end check of context propagation across
the process boundary.

Usage::

    PYTHONPATH=src python tools/gen_sample_trace.py \
        --trace-out sample_trace.json --flight-out sample_flight.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import obs
from repro.core import InflexConfig, InflexIndex
from repro.datasets import generate_flixster_like
from repro.obs import context as obs_context
from repro.obs.flightrec import (
    FlightRecord,
    FlightRecorder,
    gamma_fingerprint,
)
from repro.propagation.parallel import ParallelMonteCarloSpread


def build_sample(workers: int = 2):
    """One traced request: a TIM query plus a pool-backed spread
    estimate, recorded under a single request context.

    Returns ``(tracer, recorder, context)`` with the spans and flight
    records already captured.
    """
    data = generate_flixster_like(
        num_nodes=120,
        num_topics=3,
        num_items=20,
        topics_per_node=1,
        base_strength=0.25,
        seed=5,
    )
    config = InflexConfig(
        num_index_points=8,
        num_dirichlet_samples=400,
        seed_list_length=6,
        ris_num_sets=300,
        knn=4,
        leaf_size=4,
        seed=5,
    )
    index = InflexIndex.build(data.graph, data.item_topics, config)
    gamma = data.item_topics[0]

    obs.enable()
    tracer = obs.get_tracer()
    tracer.clear()
    recorder = FlightRecorder(
        capacity=64, slow_capacity=16, slow_threshold_s=1e-9
    )

    context = obs_context.new_request_context()
    with obs_context.bind(context):
        began = time.perf_counter()
        answer = index.query(gamma, 5)
        with ParallelMonteCarloSpread(
            data.graph,
            gamma,
            num_simulations=64,
            seed=9,
            workers=workers,
            chunks_per_worker=2,
        ) as spread:
            spread.estimate(answer.seeds)
        elapsed = time.perf_counter() - began
    recorder.record(
        FlightRecord(
            request_id=context.request_id,
            trace_id=context.trace_id,
            route="cli",
            fingerprint=gamma_fingerprint(gamma),
            k=5,
            strategy=answer.strategy,
            duration_s=elapsed,
            epsilon_match=answer.epsilon_match,
            num_neighbors_used=answer.num_neighbors_used,
            timings={
                "search": answer.timing.search,
                "selection": answer.timing.selection,
                "aggregation": answer.timing.aggregation,
                "total": answer.timing.total,
            },
        ),
        tracer,
    )
    return tracer, recorder, context


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out",
        default="sample_trace.json",
        help="Chrome trace output path",
    )
    parser.add_argument(
        "--flight-out",
        default="sample_flight.json",
        help="flight-recorder snapshot output path",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="simulation pool width (>= 2 for a cross-process trace)",
    )
    args = parser.parse_args(argv)

    tracer, recorder, context = build_sample(workers=args.workers)
    try:
        spans = tracer.find_trace(context.trace_id)
        chunk_pids = {
            record.thread_id
            for record in spans
            if record.name == "spread.chunk"
        }
        count = tracer.write_chrome_trace(args.trace_out)
        with open(args.flight_out, "w", encoding="utf-8") as handle:
            json.dump(recorder.snapshot(), handle, indent=2)

        print(
            f"trace {context.trace_id}: {len(spans)} spans "
            f"({count} total in buffer) -> {args.trace_out}"
        )
        print(
            f"flight records: {recorder.total} "
            f"({recorder.slow_total} slow) -> {args.flight_out}"
        )
        names = sorted({record.name for record in spans})
        print(f"span names: {', '.join(names)}")
        print(f"chunk worker pids: {sorted(chunk_pids)}")
        if args.workers >= 2 and len(chunk_pids) < 2:
            print(
                "ERROR: expected spread.chunk spans from >= 2 worker "
                f"processes, saw pids {sorted(chunk_pids)}",
                file=sys.stderr,
            )
            return 1
        slow = recorder.snapshot()["slow"]
        if not slow or not slow[0]["spans"]:
            print(
                "ERROR: slow ring is missing the captured span tree",
                file=sys.stderr,
            )
            return 1
        return 0
    finally:
        obs.disable()
        tracer.clear()


if __name__ == "__main__":
    sys.exit(main())
