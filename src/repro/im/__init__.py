"""Influence maximization: greedy, CELF, CELF++, RIS, IMM, heuristics."""

from repro.im.seed_list import SeedList
from repro.im.greedy import greedy_seed_selection
from repro.im.celf import celf_seed_selection
from repro.im.celfpp import celfpp_seed_selection
from repro.im.ris import (
    RRSetCollection,
    adaptive_ris_influence_maximization,
    ris_influence_maximization,
    ris_seed_selection,
    sample_rr_set,
    sample_rr_sets,
)
from repro.im.imm import (
    RRIndex,
    RRSampler,
    imm_budgets,
    imm_seed_selection,
    sample_rr_index,
)
from repro.im.heuristics import (
    degree_seeds,
    pagerank_seeds,
    random_seeds,
    weighted_degree_seeds,
)
from repro.im.degree_discount import degree_discount_seeds

__all__ = [
    "SeedList",
    "greedy_seed_selection",
    "celf_seed_selection",
    "celfpp_seed_selection",
    "RRSetCollection",
    "adaptive_ris_influence_maximization",
    "ris_influence_maximization",
    "ris_seed_selection",
    "sample_rr_set",
    "sample_rr_sets",
    "RRIndex",
    "RRSampler",
    "imm_budgets",
    "imm_seed_selection",
    "sample_rr_index",
    "degree_discount_seeds",
    "degree_seeds",
    "pagerank_seeds",
    "random_seeds",
    "weighted_degree_seeds",
]
