"""CELF: lazy-forward greedy (Leskovec et al., KDD 2007).

Submodularity guarantees that a node's marginal gain can only shrink as
the seed set grows, so stale gains stored in a max-heap are *upper
bounds*.  CELF pops the heap top; if its gain was computed against the
current seed set it is provably the best choice, otherwise the gain is
recomputed and the node re-inserted.  Output is identical to plain
greedy (given the same spread oracle) at a fraction of the evaluations.
"""

from __future__ import annotations

import heapq

from repro.im.seed_list import SeedList
from repro.propagation.spread import SpreadEstimator


def celf_seed_selection(
    estimator: SpreadEstimator,
    num_nodes: int,
    k: int,
    *,
    candidates=None,
) -> SeedList:
    """Select ``k`` seeds with CELF lazy evaluation.

    Parameters mirror :func:`~repro.im.greedy.greedy_seed_selection`.
    Ties are broken deterministically toward the lower node id via the
    heap's secondary key.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    pool = (
        list(range(num_nodes))
        if candidates is None
        else sorted(set(int(c) for c in candidates))
    )
    if k > len(pool):
        raise ValueError(f"k={k} exceeds candidate pool of {len(pool)}")
    if k == 0:
        return SeedList((), (), algorithm="celf")

    # Heap entries: (-gain, node, iteration-at-computation)
    heap: list[tuple[float, int, int]] = []
    for node in pool:
        gain = estimator.estimate([node])
        heap.append((-gain, node, 0))
    heapq.heapify(heap)

    seeds: list[int] = []
    gains: list[float] = []
    current_spread = 0.0
    while len(seeds) < k:
        neg_gain, node, computed_at = heapq.heappop(heap)
        if computed_at == len(seeds):
            seeds.append(node)
            gains.append(-neg_gain)
            current_spread += -neg_gain
        else:
            fresh = estimator.estimate(seeds + [node]) - current_spread
            heapq.heappush(heap, (-fresh, node, len(seeds)))
    return SeedList(tuple(seeds), tuple(gains), algorithm="celf")
