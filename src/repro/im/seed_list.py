"""Ranked seed lists — the output type of influence maximization.

The paper is explicit (footnote 3) that "seed sets" are really *ranked
lists*: the greedy order in which nodes were selected.  INFLEX's rank
aggregation operates on those rankings, so the result object preserves
order, per-step marginal gains, and provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class SeedList:
    """An ordered list of seed nodes with their greedy marginal gains.

    Attributes
    ----------
    nodes:
        Seed node ids in selection (rank) order.
    marginal_gains:
        Estimated spread gain contributed by each seed at the moment it
        was selected; same length as ``nodes``.  Empty tuple when the
        producing algorithm does not track gains (e.g. random seeds).
    algorithm:
        Name of the producing algorithm (``"celf++"``, ``"ris"``, ...).
    """

    nodes: tuple[int, ...]
    marginal_gains: tuple[float, ...] = field(default=())
    algorithm: str = "unknown"

    def __post_init__(self) -> None:
        nodes = tuple(int(v) for v in self.nodes)
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"seed list contains duplicates: {nodes}")
        gains = tuple(float(g) for g in self.marginal_gains)
        if gains and len(gains) != len(nodes):
            raise ValueError(
                f"{len(gains)} gains for {len(nodes)} seeds"
            )
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "marginal_gains", gains)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def __getitem__(self, rank: int) -> int:
        return self.nodes[rank]

    def __contains__(self, node: object) -> bool:
        return node in set(self.nodes)

    def top(self, k: int) -> "SeedList":
        """The first ``k`` seeds (all of them if ``k`` exceeds length)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        gains = self.marginal_gains[:k] if self.marginal_gains else ()
        return SeedList(self.nodes[:k], gains, self.algorithm)

    def rank_of(self, node: int) -> int | None:
        """Zero-based rank of ``node``, or ``None`` when absent."""
        try:
            return self.nodes.index(node)
        except ValueError:
            return None

    @property
    def estimated_spread(self) -> float:
        """Sum of marginal gains — the greedy estimate of ``sigma(S)``."""
        return float(sum(self.marginal_gains))

    def as_array(self) -> np.ndarray:
        """Seeds as an ``int64`` array in rank order."""
        return np.asarray(self.nodes, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(str(v) for v in self.nodes[:5])
        suffix = ", ..." if len(self.nodes) > 5 else ""
        return (
            f"SeedList([{preview}{suffix}], len={len(self.nodes)}, "
            f"algorithm={self.algorithm!r})"
        )
