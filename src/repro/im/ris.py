"""Reverse Influence Sampling (RIS) seed selection.

Borgs et al. / TIM-style sampling: a *reverse reachable* (RR) set is
the set of nodes that can reach a uniformly random root through one
live-edge realization of the graph, walked backwards.  For any seed set
``S``, ``sigma(S) = n * P[S hits a random RR set]``, so greedy maximum
coverage over a collection of RR sets maximizes an unbiased spread
estimate and inherits the ``(1 - 1/e - eps)`` guarantee.

Role in this reproduction: the paper precomputes every index point's
seed list with CELF++ (≈60 hours per item on their hardware).  CELF++
is implemented faithfully in :mod:`repro.im.celfpp` and is the
reference, but building hundreds of index points with it in pure Python
would dominate the experiment budget.  The RIS engine produces the same
kind of greedy-ranked seed list orders of magnitude faster and is the
default for index construction; DESIGN.md records this substitution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList
from repro.rng import resolve_rng


@dataclass(frozen=True)
class RRSetCollection:
    """A batch of reverse-reachable sets for one (graph, item) pair.

    Attributes
    ----------
    sets:
        Tuple of int64 arrays; each array lists the members of one RR set.
    num_nodes:
        Size of the node universe (needed to scale coverage to spread).
    """

    sets: tuple[np.ndarray, ...]
    num_nodes: int

    @property
    def num_sets(self) -> int:
        return len(self.sets)

    def spread_estimate(self, seeds) -> float:
        """Unbiased spread estimate ``n * coverage / num_sets``."""
        if self.num_sets == 0:
            raise ValueError("no RR sets sampled")
        seed_set = set(int(s) for s in seeds)
        covered = sum(
            1 for rr in self.sets if not seed_set.isdisjoint(rr.tolist())
        )
        return self.num_nodes * covered / self.num_sets


def sample_rr_set(in_indptr, in_tails, in_probs, visited, rng) -> np.ndarray:
    """Walk one reverse-reachable set over a prepared in-adjacency view.

    The shared primitive behind :func:`sample_rr_sets` and the streaming
    maintainer (:mod:`repro.streaming.maintainer`), which resamples
    individual RR sets with per-set RNG streams.  ``visited`` is a
    reusable ``(num_nodes,)`` boolean scratch buffer that must be all
    ``False`` on entry and is restored to all ``False`` before
    returning.  Randomness consumption is a pure function of the
    in-adjacency view and the generator state, which is what makes
    retained-set replay in the incremental maintainer bit-identical
    (see ``docs/STREAMING.md``).
    """
    n = visited.shape[0]
    root = int(rng.integers(n))
    visited[root] = True
    members = [root]
    frontier = np.asarray([root], dtype=np.int64)
    while frontier.size:
        # Gather all in-arcs of the frontier in one ragged pass and
        # flip every coin at once (mirror of the forward cascade).
        starts = in_indptr[frontier]
        counts = in_indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.repeat(starts, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        arc_pos = offsets + within
        success = rng.random(total) < in_probs[arc_pos]
        parents = in_tails[arc_pos[success]]
        parents = parents[~visited[parents]]
        if parents.size == 0:
            break
        frontier = np.unique(parents)
        visited[frontier] = True
        members.extend(int(v) for v in frontier)
    result = np.asarray(members, dtype=np.int64)
    visited[result] = False
    return result


def sample_rr_sets(
    graph: TopicGraph, gamma, num_sets: int, *, seed=None
) -> RRSetCollection:
    """Sample ``num_sets`` RR sets under the item-specific TIC graph."""
    if num_sets < 1:
        raise ValueError(f"num_sets must be >= 1, got {num_sets}")
    rng = resolve_rng(seed)
    probs = graph.item_probabilities(gamma)
    in_indptr, in_tails, in_arc_ids = graph.reverse_view
    in_probs = probs[in_arc_ids]
    n = graph.num_nodes
    visited = np.zeros(n, dtype=bool)
    sets: list[np.ndarray] = []
    for _ in range(num_sets):
        sets.append(
            sample_rr_set(in_indptr, in_tails, in_probs, visited, rng)
        )
    return RRSetCollection(tuple(sets), n)


def ris_seed_selection(
    collection: RRSetCollection, k: int, *, universe_size: int | None = None
) -> SeedList:
    """Greedy max-coverage over RR sets — returns a ranked seed list.

    Marginal gains are reported in *spread units* (coverage scaled by
    ``n / num_sets``) so the result is directly comparable with the
    Monte-Carlo greedy algorithms.  Ties break toward lower node ids.

    ``universe_size`` is the candidate-node universe (defaults to
    ``collection.num_nodes``); pass it explicitly when the collection's
    scaling universe differs from the seed-candidate universe, as in
    segment-targeted queries where RR sets are rooted in a segment but
    any graph node may serve as a seed.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if universe_size is None:
        universe_size = collection.num_nodes
    if k > universe_size:
        raise ValueError(f"k={k} exceeds {universe_size} candidate nodes")
    scale = collection.num_nodes / max(collection.num_sets, 1)
    # Build node -> list of RR-set ids once.
    membership: dict[int, list[int]] = {}
    for set_id, rr in enumerate(collection.sets):
        for node in rr.tolist():
            membership.setdefault(node, []).append(set_id)
    coverage_count = {node: len(ids) for node, ids in membership.items()}
    covered = np.zeros(collection.num_sets, dtype=bool)
    seeds: list[int] = []
    gains: list[float] = []
    # Lazy-greedy: counts only decrease as sets get covered.
    heap = [(-count, node) for node, count in coverage_count.items()]
    heapq.heapify(heap)
    stale: dict[int, int] = dict(coverage_count)
    while len(seeds) < k and heap:
        neg_count, node = heapq.heappop(heap)
        count = -neg_count
        if count != stale[node]:
            continue
        fresh = sum(1 for sid in membership[node] if not covered[sid])
        if fresh != count:
            stale[node] = fresh
            heapq.heappush(heap, (-fresh, node))
            continue
        seeds.append(node)
        gains.append(fresh * scale)
        stale[node] = -1  # never reconsidered
        for sid in membership[node]:
            covered[sid] = True
    # If RR sets ran out of uncovered nodes before k, pad with the
    # lowest-id unused nodes (zero marginal gain), so the contract of
    # returning exactly k seeds holds on sparse graphs.
    if len(seeds) < k:
        used = set(seeds)
        for node in range(universe_size):
            if node not in used:
                seeds.append(node)
                gains.append(0.0)
                if len(seeds) == k:
                    break
    return SeedList(tuple(seeds), tuple(gains), algorithm="ris")


def ris_influence_maximization(
    graph: TopicGraph,
    gamma,
    k: int,
    *,
    num_sets: int = 2000,
    seed=None,
) -> SeedList:
    """End-to-end RIS: sample RR sets, then greedy max coverage."""
    collection = sample_rr_sets(graph, gamma, num_sets, seed=seed)
    return ris_seed_selection(collection, k)


def adaptive_ris_influence_maximization(
    graph: TopicGraph,
    gamma,
    k: int,
    *,
    initial_sets: int = 500,
    max_sets: int = 64000,
    stability_threshold: float = 0.05,
    seed=None,
) -> SeedList:
    """RIS with an adaptive sampling budget (TIM+-style doubling).

    Choosing the RR-set count up front is the classic RIS pain point:
    too few sets give noisy rankings, too many waste the budget.  This
    variant doubles the sample until the greedy *ranking* stabilizes —
    the seed list from the full collection agrees with the list from
    its first half up to ``stability_threshold`` in top-list
    Kendall-tau — or until ``max_sets`` is reached.  Ranking stability
    is precisely the property INFLEX's precomputed lists need (they are
    consumed by rank aggregation, not by their raw spread values).
    """
    if initial_sets < 2:
        raise ValueError(f"initial_sets must be >= 2, got {initial_sets}")
    if max_sets < initial_sets:
        raise ValueError(
            f"max_sets ({max_sets}) must be >= initial_sets ({initial_sets})"
        )
    if stability_threshold <= 0:
        raise ValueError(
            f"stability_threshold must be positive, got {stability_threshold}"
        )
    from repro.ranking.kendall import kendall_tau_top
    from repro.rng import spawn_rngs

    rngs = iter(spawn_rngs(seed, 64))
    sets: list[np.ndarray] = list(
        sample_rr_sets(graph, gamma, initial_sets, seed=next(rngs)).sets
    )
    n = graph.num_nodes
    while True:
        half = RRSetCollection(tuple(sets[: len(sets) // 2]), n)
        full = RRSetCollection(tuple(sets), n)
        candidate_half = ris_seed_selection(half, k)
        candidate_full = ris_seed_selection(full, k)
        distance = kendall_tau_top(candidate_half, candidate_full)
        if distance <= stability_threshold or len(sets) >= max_sets:
            return SeedList(
                candidate_full.nodes,
                candidate_full.marginal_gains,
                algorithm="ris-adaptive",
            )
        grow = min(len(sets), max_sets - len(sets))
        sets.extend(
            sample_rr_sets(graph, gamma, grow, seed=next(rngs)).sets
        )
