"""CELF++: the optimization of lazy greedy used by the paper.

Goyal, Lu & Lakshmanan (WWW 2011).  On top of CELF's lazy bounds,
CELF++ tracks for every node ``u``:

* ``mg1`` — marginal gain of ``u`` w.r.t. the current seed set ``S``,
* ``prev_best`` — the best node seen in the current iteration before
  ``u`` was (re)evaluated,
* ``mg2`` — marginal gain of ``u`` w.r.t. ``S + {prev_best}``,
* ``flag`` — the value of ``|S|`` when ``mg1`` was last computed.

When the node popped from the heap was last evaluated in the previous
iteration *and* its ``prev_best`` is exactly the seed that was just
added, its ``mg2`` is already the fresh marginal gain — one spread
evaluation is saved.  The paper uses CELF++ for all offline seed-set
extraction; it is the default engine behind ``offline TIC``.
"""

from __future__ import annotations

import heapq

from repro.im.seed_list import SeedList
from repro.obs import instruments as _obs
from repro.propagation.spread import SpreadEstimator


class _NodeState:
    """Mutable CELF++ bookkeeping for one candidate node."""

    __slots__ = ("node", "mg1", "mg2", "prev_best", "flag")

    def __init__(self, node: int, mg1: float, mg2: float, prev_best: int) -> None:
        self.node = node
        self.mg1 = mg1
        self.mg2 = mg2
        self.prev_best = prev_best
        self.flag = 0


def celfpp_seed_selection(
    estimator: SpreadEstimator,
    num_nodes: int,
    k: int,
    *,
    candidates=None,
) -> SeedList:
    """Select ``k`` seeds with the CELF++ algorithm.

    Produces the same seed list as plain greedy with the same
    (deterministic) spread oracle, with strictly fewer oracle calls than
    CELF in the common case.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    pool = (
        list(range(num_nodes))
        if candidates is None
        else sorted(set(int(c) for c in candidates))
    )
    if k > len(pool):
        raise ValueError(f"k={k} exceeds candidate pool of {len(pool)}")
    if k == 0:
        return SeedList((), (), algorithm="celf++")

    # Initial pass: compute mg1 = sigma({u}); track the best singleton
    # (cur_best) and compute mg2 against it.  ``evaluations`` counts
    # spread-oracle calls — the cost unit CELF++ exists to minimize —
    # and is folded into the metrics registry on return.  Estimators
    # exposing ``estimate_many`` (the parallel Monte-Carlo engine) get
    # the two exhaustive sweeps as single batch dispatches; the batch
    # consumes the oracle's call sequence in the same order as the
    # loop, so the selected seeds are identical either way.
    estimate_many = getattr(estimator, "estimate_many", None)
    evaluations = 0
    states: dict[int, _NodeState] = {}
    cur_best: int | None = None
    cur_best_gain = -1.0
    singleton: dict[int, float] = {}
    if estimate_many is not None:
        values = estimate_many([[node] for node in pool])
        evaluations += len(pool)
        for node, gain in zip(pool, values):
            singleton[node] = gain
            if gain > cur_best_gain:
                cur_best_gain = gain
                cur_best = node
    else:
        for node in pool:
            gain = estimator.estimate([node])
            evaluations += 1
            singleton[node] = gain
            if gain > cur_best_gain:
                cur_best_gain = gain
                cur_best = node
    others = [node for node in pool if node != cur_best]
    if estimate_many is not None:
        pair_values = estimate_many(
            [[cur_best, node] for node in others]
        )
        evaluations += len(others)
        pair_of = dict(zip(others, pair_values))
    else:
        pair_of = {}
        for node in others:
            pair_of[node] = estimator.estimate([cur_best, node])
            evaluations += 1
    for node in pool:
        if node == cur_best:
            mg2 = singleton[node]
        else:
            mg2 = pair_of[node] - singleton[cur_best]
        states[node] = _NodeState(node, singleton[node], mg2, cur_best)

    heap: list[tuple[float, int]] = [
        (-state.mg1, node) for node, state in states.items()
    ]
    heapq.heapify(heap)

    seeds: list[int] = []
    gains: list[float] = []
    current_spread = 0.0
    last_seed: int | None = None
    iter_best: int | None = None
    iter_best_gain = -1.0
    while len(seeds) < k and heap:
        neg_gain, node = heapq.heappop(heap)
        state = states[node]
        if -neg_gain != state.mg1:
            # Stale heap entry superseded by a fresher mg1; skip it.
            continue
        if state.flag == len(seeds):
            seeds.append(node)
            gains.append(state.mg1)
            current_spread += state.mg1
            last_seed = node
            del states[node]
            # New iteration: reset the running best.
            iter_best = None
            iter_best_gain = -1.0
            continue
        if state.prev_best == last_seed and state.flag == len(seeds) - 1:
            # The mg2 shortcut: gain w.r.t. S was precomputed.
            state.mg1 = state.mg2
        else:
            state.mg1 = estimator.estimate(seeds + [node]) - current_spread
            evaluations += 1
            if iter_best is not None:
                base = estimator.estimate(seeds + [iter_best])
                state.mg2 = (
                    estimator.estimate(seeds + [iter_best, node]) - base
                )
                evaluations += 2
                state.prev_best = iter_best
        state.flag = len(seeds)
        if state.mg1 > iter_best_gain:
            iter_best_gain = state.mg1
            iter_best = node
        heapq.heappush(heap, (-state.mg1, node))
    _obs.record_gain_evaluations("celf++", evaluations)
    return SeedList(tuple(seeds), tuple(gains), algorithm="celf++")
