"""Cheap seed-selection heuristics used as baselines.

The paper's ``random`` baseline (Figure 8 / Table 2) lives here, along
with the classic degree and PageRank heuristics that the influence-
maximization literature routinely compares against.
"""

from __future__ import annotations

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList
from repro.rng import resolve_rng


def random_seeds(num_nodes: int, k: int, *, seed=None) -> SeedList:
    """``k`` distinct nodes drawn uniformly at random."""
    if not 0 <= k <= num_nodes:
        raise ValueError(f"k must be in [0, {num_nodes}], got {k}")
    rng = resolve_rng(seed)
    chosen = rng.choice(num_nodes, size=k, replace=False)
    return SeedList(tuple(int(v) for v in chosen), (), algorithm="random")


def degree_seeds(graph: TopicGraph, k: int) -> SeedList:
    """Top-``k`` nodes by out-degree (ties toward lower id)."""
    if not 0 <= k <= graph.num_nodes:
        raise ValueError(f"k must be in [0, {graph.num_nodes}], got {k}")
    degrees = graph.out_degree()
    order = np.lexsort((np.arange(graph.num_nodes), -degrees))
    return SeedList(
        tuple(int(v) for v in order[:k]), (), algorithm="degree"
    )


def weighted_degree_seeds(graph: TopicGraph, gamma, k: int) -> SeedList:
    """Top-``k`` nodes by the sum of their item-specific out-probabilities.

    A topic-aware refinement of the degree heuristic: ranks users by
    expected number of *direct* activations for the given item.
    """
    if not 0 <= k <= graph.num_nodes:
        raise ValueError(f"k must be in [0, {graph.num_nodes}], got {k}")
    probs = graph.item_probabilities(gamma)
    weights = np.zeros(graph.num_nodes, dtype=np.float64)
    tails = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), np.diff(graph.indptr)
    )
    np.add.at(weights, tails, probs)
    order = np.lexsort((np.arange(graph.num_nodes), -weights))
    return SeedList(
        tuple(int(v) for v in order[:k]), (), algorithm="weighted-degree"
    )


def pagerank_seeds(
    graph: TopicGraph,
    k: int,
    *,
    damping: float = 0.85,
    max_iter: int = 100,
    tol: float = 1e-10,
) -> SeedList:
    """Top-``k`` nodes by PageRank on the *reversed* graph.

    Influence flows along arcs, so a node that many (influential) nodes
    listen to should rank high: running PageRank on the transpose makes
    score flow from listeners back to speakers.
    """
    if not 0 <= k <= graph.num_nodes:
        raise ValueError(f"k must be in [0, {graph.num_nodes}], got {k}")
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = graph.num_nodes
    in_indptr, in_tails, _ = graph.reverse_view
    # Column-stochastic iteration on the transpose: each node pushes its
    # score to the nodes that point *at* it in the original graph.
    in_degree = np.diff(in_indptr).astype(np.float64)
    rank = np.full(n, 1.0 / n)
    heads = np.repeat(np.arange(n, dtype=np.int64), np.diff(in_indptr))
    for _ in range(max_iter):
        contribution = np.where(in_degree > 0, rank / np.maximum(in_degree, 1), 0.0)
        new_rank = np.zeros(n)
        np.add.at(new_rank, in_tails, contribution[heads])
        dangling = rank[in_degree == 0].sum()
        new_rank = (1.0 - damping) / n + damping * (new_rank + dangling / n)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    order = np.lexsort((np.arange(n), -rank))
    return SeedList(
        tuple(int(v) for v in order[:k]), (), algorithm="pagerank"
    )
