"""DegreeDiscount heuristic (Chen, Wang & Yang, KDD 2009).

A classic near-linear-time heuristic for IC influence maximization:
start from out-degrees and, every time a node's in-neighbor is chosen
as a seed, discount the node's effective degree to account for the
already-covered probability mass.  The original derivation assumes a
uniform propagation probability ``p``; the topic-aware variant here
uses each arc's item-specific probability (Eq. 1) as its weight, which
reduces to the classic formula on uniform graphs.

Included as an additional baseline substrate: it routinely lands
between the degree heuristic and greedy in spread at a tiny fraction of
the cost.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList


def degree_discount_seeds(
    graph: TopicGraph, gamma, k: int
) -> SeedList:
    """Select ``k`` seeds with the (weighted) DegreeDiscount heuristic.

    Parameters
    ----------
    graph:
        The topic graph.
    gamma:
        Item topic distribution; arc weights are the item-specific
        probabilities.
    k:
        Seed budget.
    """
    if not 0 <= k <= graph.num_nodes:
        raise ValueError(f"k must be in [0, {graph.num_nodes}], got {k}")
    n = graph.num_nodes
    probs = graph.item_probabilities(gamma)
    tails = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.indptr)
    )
    # d[v]: weighted out-degree (expected direct activations).
    weighted_degree = np.zeros(n)
    np.add.at(weighted_degree, tails, probs)
    # t[v]: probability mass already covered by chosen in-neighbors.
    covered = np.zeros(n)
    # Average outgoing probability per node, used in the discount term.
    out_counts = np.maximum(np.diff(graph.indptr), 1)
    avg_p = weighted_degree / out_counts

    def score(node: int) -> float:
        # dd_v = d_v - 2 t_v - (d_v - t_v) * t_v * p  (Chen et al. Eq. 2,
        # with t_v generalized to covered probability mass).
        d = weighted_degree[node]
        t = covered[node]
        return d - 2.0 * t - (d - t) * t * avg_p[node]

    heap: list[tuple[float, int]] = [(-score(v), v) for v in range(n)]
    heapq.heapify(heap)
    current = {v: score(v) for v in range(n)}
    chosen: list[int] = []
    chosen_set: set[int] = set()
    gains: list[float] = []
    in_indptr, in_tails, in_arc_ids = graph.reverse_view
    while len(chosen) < k and heap:
        neg, node = heapq.heappop(heap)
        if node in chosen_set:
            continue
        if -neg != current[node]:
            # Stale entry: refresh and reinsert.
            heapq.heappush(heap, (-current[node], node))
            continue
        chosen.append(node)
        chosen_set.add(node)
        gains.append(max(-neg, 0.0))
        # Discount the out-neighbors of the new seed.
        lo, hi = graph.indptr[node], graph.indptr[node + 1]
        for arc_pos in range(lo, hi):
            neighbor = int(graph.indices[arc_pos])
            if neighbor in chosen_set:
                continue
            covered[neighbor] += probs[arc_pos]
            current[neighbor] = score(neighbor)
            heapq.heappush(heap, (-current[neighbor], neighbor))
    return SeedList(
        tuple(chosen), tuple(gains), algorithm="degree-discount"
    )
