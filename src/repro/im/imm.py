"""IMM: martingale reverse-influence sampling for paper-scale builds.

Tang, Shi & Xiao's IMM (arXiv 1404.0900) turns the RR-set framework of
Borgs et al. (arXiv 1212.0884) into a practical near-linear-time
influence maximization with a ``(1 - 1/e - eps)`` approximation
guarantee holding with probability ``1 - delta``.  The algorithm has
two phases driven by martingale concentration bounds:

1. **Estimate** — a lower bound ``LB`` on the optimum spread ``OPT`` is
   found by doubling: for guesses ``x = n/2^i`` a budget
   ``theta_i = lambda' / x`` of RR sets is sampled and the greedy
   max-coverage spread is tested against ``(1 + eps') * x``; the first
   guess that passes certifies ``LB`` (Chernoff-style stopping).
2. **Select** — the final budget ``theta = lambda* / LB`` is sampled
   (reusing every phase-1 set; the martingale analysis permits the
   dependence) and greedy max coverage over the pooled collection
   returns the seed list.

What makes this module *paper-scale* rather than a reference
implementation:

* **Vectorized sampling.**  RR sets are generated in blocks walked in
  lock-step: one batched reverse-BFS expands the frontiers of hundreds
  of sets per numpy call (gather all in-arcs, flip all coins, dedupe
  ``(set, node)`` pairs) instead of one Python loop per set.
* **Parallel dispatch.**  Blocks fan out over the persistent process
  pools and shared-memory CSR payloads of
  :mod:`repro.propagation.parallel`; the reverse CSR and the full
  ``(m, Z)`` probability matrix are published once per
  :class:`RRSampler` and reused across every item of a build.
* **Determinism.**  Block ``b`` of request ``r`` always draws from
  ``SeedSequence(entropy, spawn_key=base + (r, b))`` — worker count and
  scheduling never touch the streams, so seed lists are bit-identical
  for any pool width (including the fully inline ``workers=1`` path).
* **Bit-packed storage.**  Sampled sets live in an :class:`RRIndex`:
  ``uint64`` node bitmaps for small graphs, sorted ``uint32`` member
  arrays otherwise, plus an inverted node-to-set CSR index that the
  greedy max-coverage selection walks across all ``l`` rounds without
  ever materializing Python sets.

See ``docs/INDEX_BUILDS.md`` for the phase walkthrough, the
``eps``/``delta`` semantics, and representative budget tables.
"""

from __future__ import annotations

import heapq
import math
import os
import time
import weakref
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.im.seed_list import SeedList
from repro.obs import instruments as _obs
from repro.obs.tracing import get_tracer
from repro.resilience.faults import InjectedFaultError, get_fault_plan
from repro.propagation.parallel import (
    _discard_executor,
    _get_executor,
    _GraphPayload,
    _payload_arrays,
)
from repro.rng import as_seed_sequence
from repro.simplex.vectors import as_distribution
from repro.workers import default_sim_workers, resolve_workers

#: Graphs at or below this node count store RR sets as uint64 bitmaps
#: (at most 16 words per set); larger graphs use sorted uint32 arrays.
BITMAP_MAX_NODES = 1024


def _block_size(num_nodes: int) -> int:
    """Deterministic sampling block size for an ``num_nodes``-node graph.

    A block is the atomic unit of both vectorization (its sets walk in
    lock-step) and randomness (it owns one ``SeedSequence`` stream), so
    the size must be a pure function of the graph — never of memory,
    worker count, or scheduling — for results to be reproducible.  The
    formula caps the block's ``(block, num_nodes)`` visited matrix at a
    few megabytes.
    """
    return int(min(1024, max(16, (1 << 22) // max(1, num_nodes))))


def _sample_block(
    in_indptr: np.ndarray,
    in_tails: np.ndarray,
    in_probs: np.ndarray,
    num_nodes: int,
    count: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Walk ``count`` RR sets in one lock-step batched reverse BFS.

    All sets of the block advance together: each wave gathers the
    in-arc slices of every frontier ``(set, node)`` pair in one ragged
    pass, flips every live-edge coin at once, and deduplicates newly
    reached pairs.  Randomness consumption is a pure function of the
    in-adjacency view and the generator state, so a block replays
    bit-identically anywhere (parent process, any worker).

    Returns ``(values, indptr, roots)``: sorted ``uint32`` member
    arrays concatenated in set order with an ``int64`` CSR pointer, and
    the ``uint32`` root of each set.  Every set contains its root.
    """
    roots = rng.integers(0, num_nodes, size=count).astype(np.int64)
    visited = np.zeros((count, num_nodes), dtype=bool)
    set_ids = np.arange(count, dtype=np.int64)
    visited[set_ids, roots] = True
    frontier_sets = set_ids
    frontier_nodes = roots
    pair_sets = [frontier_sets]
    pair_nodes = [frontier_nodes]
    while frontier_nodes.size:
        starts = in_indptr[frontier_nodes]
        arc_counts = in_indptr[frontier_nodes + 1] - starts
        total = int(arc_counts.sum())
        if total == 0:
            break
        offsets = np.repeat(starts, arc_counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(arc_counts) - arc_counts, arc_counts
        )
        arc_pos = offsets + within
        arc_sets = np.repeat(frontier_sets, arc_counts)
        success = rng.random(total) < in_probs[arc_pos]
        parents = in_tails[arc_pos[success]]
        parent_sets = arc_sets[success]
        fresh = ~visited[parent_sets, parents]
        parents = parents[fresh]
        parent_sets = parent_sets[fresh]
        if parents.size == 0:
            break
        # Dedupe (set, node) pairs reached twice within the same wave.
        keys = np.unique(parent_sets * num_nodes + parents)
        parent_sets = keys // num_nodes
        parents = keys % num_nodes
        visited[parent_sets, parents] = True
        pair_sets.append(parent_sets)
        pair_nodes.append(parents)
        frontier_sets = parent_sets
        frontier_nodes = parents
    all_sets = np.concatenate(pair_sets)
    all_nodes = np.concatenate(pair_nodes)
    order = np.lexsort((all_nodes, all_sets))
    values = all_nodes[order].astype(np.uint32)
    sizes = np.bincount(all_sets, minlength=count)
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    return values, indptr, roots.astype(np.uint32)


def _sample_blocks_task(task):
    """Worker entry point: sample a range of blocks for one request.

    ``task`` is ``(spec, gamma, entropy, base_key, request, blocks,
    fault)`` where ``spec`` resolves (via the shared-memory payload
    cache) to the reverse CSR plus the reverse-gathered ``(m, Z)``
    probability matrix, and ``blocks`` lists ``(block_id, count)``
    pairs.  The item-specific arc probabilities are mixed once per
    task.

    ``fault`` is the injection directive the parent attached when the
    active fault plan fired for this task's ``chunk`` coordinates:
    ``("crash", _)`` kills the worker (exercising pool-rebuild plus the
    bit-identical inline fallback), ``("error", _)`` raises a
    recoverable :class:`InjectedFaultError`, and ``("sleep", seconds)``
    stalls before sampling.  The fault-free path pays one ``is None``
    check.
    """
    spec, gamma, entropy, base_key, request, blocks, fault = task
    if fault is not None:
        mode, arg = fault
        if mode == "crash":
            os._exit(17)
        if mode == "error":
            raise InjectedFaultError(
                f"injected fault for RR sampling task (request {request})"
            )
        if mode == "sleep":
            time.sleep(arg if arg is not None else 0.5)
    in_indptr, in_tails, prob_matrix = _payload_arrays(spec)
    in_probs = prob_matrix @ gamma
    num_nodes = int(in_indptr.shape[0]) - 1
    out = []
    for block_id, count in blocks:
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=entropy, spawn_key=base_key + (request, block_id)
            )
        )
        out.append(
            _sample_block(
                in_indptr, in_tails, in_probs, num_nodes, count, rng
            )
        )
    return out


def _merge_blocks(parts, num_sets: int):
    """Concatenate per-block ``(values, indptr, roots)`` triples."""
    values = np.concatenate([p[0] for p in parts])
    roots = np.concatenate([p[2] for p in parts])
    indptr = np.zeros(num_sets + 1, dtype=np.int64)
    pos = 0
    offset = 0
    for _, part_indptr, part_roots in parts:
        block = part_roots.shape[0]
        indptr[pos + 1 : pos + block + 1] = part_indptr[1:] + offset
        offset += int(part_indptr[-1])
        pos += block
    return values, indptr, roots


class RRIndex:
    """Bit-packed store of reverse-reachable sets with greedy coverage.

    The RR sets of one ``(graph, item)`` pair, held in the layout the
    issue's scaling math wants: per-set storage is ``uint64`` node
    bitmaps when the graph is small (``num_nodes`` at most
    :data:`BITMAP_MAX_NODES`) and concatenated sorted ``uint32`` member
    arrays otherwise, and in both modes an inverted node-to-set CSR
    index is kept so the lazy-greedy max-coverage selection — reused
    across all ``l`` rounds of a seed-list build — touches numpy arrays
    only.

    Parameters
    ----------
    values / indptr:
        Concatenated member arrays (each set's members sorted,
        duplicate-free) and the ``(num_sets + 1,)`` CSR pointer.
    roots:
        The root node each set was grown from (must be a member).
    num_nodes:
        Node universe size (scales coverage to spread).
    storage:
        ``"bitmap"``, ``"csr"``, or ``None`` to choose by graph size.
    """

    def __init__(
        self, values, indptr, roots, num_nodes: int, *, storage=None
    ) -> None:
        values = np.ascontiguousarray(values, dtype=np.uint32)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        roots = np.ascontiguousarray(roots, dtype=np.uint32)
        num_nodes = int(num_nodes)
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if indptr.ndim != 1 or indptr.size < 1 or indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if int(indptr[-1]) != values.size:
            raise ValueError(
                f"indptr[-1]={int(indptr[-1])} != {values.size} members"
            )
        num_sets = indptr.size - 1
        if roots.size != num_sets:
            raise ValueError(f"{roots.size} roots for {num_sets} sets")
        if values.size and int(values.max()) >= num_nodes:
            raise ValueError("set member out of node range")
        if roots.size and int(roots.max()) >= num_nodes:
            raise ValueError("root out of node range")
        if storage is None:
            storage = "bitmap" if num_nodes <= BITMAP_MAX_NODES else "csr"
        if storage not in ("bitmap", "csr"):
            raise ValueError(
                f"storage must be 'bitmap', 'csr' or None, got {storage!r}"
            )
        self._num_nodes = num_nodes
        self._num_sets = num_sets
        self._roots = roots
        self._storage = storage
        # Inverted node -> set-ids CSR (both modes; what greedy walks).
        sizes = np.diff(indptr)
        set_of_value = np.repeat(
            np.arange(num_sets, dtype=np.int64), sizes
        )
        order = np.argsort(values, kind="stable")
        self._inv_sets = set_of_value[order].astype(np.uint32)
        node_counts = np.bincount(values, minlength=num_nodes)
        self._inv_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(node_counts, out=self._inv_indptr[1:])
        if storage == "bitmap":
            words = (num_nodes + 63) >> 6
            bitmaps = np.zeros(num_sets * words, dtype=np.uint64)
            slots = set_of_value * words + (values >> np.uint32(6))
            bits = np.uint64(1) << (
                values.astype(np.uint64) & np.uint64(63)
            )
            np.bitwise_or.at(bitmaps, slots, bits)
            self._bitmaps = bitmaps.reshape(num_sets, words)
            self._values = None
            self._indptr = None
        else:
            self._bitmaps = None
            self._values = values
            self._indptr = indptr

    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        """Number of RR sets stored."""
        return self._num_sets

    @property
    def num_nodes(self) -> int:
        """Size of the node universe."""
        return self._num_nodes

    @property
    def storage(self) -> str:
        """Active layout: ``"bitmap"`` or ``"csr"``."""
        return self._storage

    @property
    def roots(self) -> np.ndarray:
        """The root node of each set, shape ``(num_sets,)``."""
        return self._roots

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed sets plus the inverted index."""
        packed = (
            self._bitmaps.nbytes
            if self._bitmaps is not None
            else self._values.nbytes + self._indptr.nbytes
        )
        return int(
            packed
            + self._inv_sets.nbytes
            + self._inv_indptr.nbytes
            + self._roots.nbytes
        )

    # ------------------------------------------------------------------
    def members(self, set_id: int) -> np.ndarray:
        """Sorted ``uint32`` members of one set (unpacked if bit-packed)."""
        if not 0 <= set_id < self._num_sets:
            raise ValueError(
                f"set_id {set_id} out of range [0, {self._num_sets})"
            )
        if self._values is not None:
            lo, hi = self._indptr[set_id], self._indptr[set_id + 1]
            return self._values[lo:hi].copy()
        # Little-endian unpack: bit i of word w is node 64*w + i.
        bits = np.unpackbits(
            self._bitmaps[set_id].view(np.uint8), bitorder="little"
        )
        return np.flatnonzero(bits[: self._num_nodes]).astype(np.uint32)

    def contains(self, set_id: int, node: int) -> bool:
        """Whether ``node`` is a member of set ``set_id``."""
        if not 0 <= set_id < self._num_sets:
            raise ValueError(
                f"set_id {set_id} out of range [0, {self._num_sets})"
            )
        if not 0 <= node < self._num_nodes:
            return False
        if self._bitmaps is not None:
            word = self._bitmaps[set_id, node >> 6]
            return bool((word >> np.uint64(node & 63)) & np.uint64(1))
        lo, hi = self._indptr[set_id], self._indptr[set_id + 1]
        pos = lo + np.searchsorted(self._values[lo:hi], node)
        return bool(pos < hi and self._values[pos] == node)

    def coverage_counts(self) -> np.ndarray:
        """Per-node count of sets containing the node, shape ``(n,)``."""
        return np.diff(self._inv_indptr)

    def node_sets(self, node: int) -> np.ndarray:
        """Ids of the sets containing ``node`` (a read-only CSR view)."""
        if not 0 <= node < self._num_nodes:
            raise ValueError(f"node {node} out of node range")
        lo, hi = self._inv_indptr[node], self._inv_indptr[node + 1]
        return self._inv_sets[lo:hi]

    def covered_mask(self, seeds) -> np.ndarray:
        """Boolean mask over sets hit by at least one node of ``seeds``.

        This is the coverage-recount primitive every consumer (greedy
        selection, :meth:`spread_of`, the campaign planner's marginal
        oracle) shares; shape ``(num_sets,)``.
        """
        covered = np.zeros(self._num_sets, dtype=bool)
        for seed in seeds:
            node = int(seed)
            if not 0 <= node < self._num_nodes:
                raise ValueError(f"seed {node} out of node range")
            covered[self.node_sets(node)] = True
        return covered

    def covered_count(self, seeds) -> int:
        """Number of sets hit by at least one node of ``seeds``."""
        return int(self.covered_mask(seeds).sum())

    def spread_of(self, seeds) -> float:
        """Unbiased spread estimate ``n * coverage / num_sets``.

        The one public value oracle shared by ``spread --engine rr``,
        the campaign planner, and the tests.
        """
        if self._num_sets == 0:
            raise ValueError("no RR sets sampled")
        return self._num_nodes * self.covered_count(seeds) / self._num_sets

    def spread_estimate(self, seeds) -> float:
        """Alias of :meth:`spread_of` (the original name)."""
        return self.spread_of(seeds)

    # ------------------------------------------------------------------
    def greedy_select(
        self, k: int, *, exclude=None
    ) -> tuple[list[int], list[float]]:
        """Lazy-greedy max coverage: ``k`` seeds with coverage gains.

        Gains are in *covered-set* units (the caller scales by
        ``n / num_sets`` for spread units); ties break toward lower
        node ids, and when every set is covered before ``k`` seeds the
        list is padded with the lowest-id unused nodes at zero gain —
        the same contract as :func:`repro.im.ris.ris_seed_selection`,
        which makes the selection invariant under set permutation.
        ``exclude`` removes nodes from candidacy entirely (selection
        and padding) — the campaign planner's independent-allocation
        path uses it to keep per-item seed sets disjoint.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        excluded = frozenset(int(node) for node in exclude or ())
        if k > self._num_nodes - len(excluded):
            raise ValueError(
                f"k={k} exceeds "
                f"{self._num_nodes - len(excluded)} candidate nodes"
            )
        stale = np.diff(self._inv_indptr).astype(np.int64)
        covered = np.zeros(self._num_sets, dtype=bool)
        heap = [
            (-int(count), int(node))
            for node, count in enumerate(stale)
            if count > 0 and node not in excluded
        ]
        heapq.heapify(heap)
        seeds: list[int] = []
        gains: list[float] = []
        while len(seeds) < k and heap:
            neg_count, node = heapq.heappop(heap)
            count = -neg_count
            if count != stale[node]:
                continue
            lo, hi = self._inv_indptr[node], self._inv_indptr[node + 1]
            set_ids = self._inv_sets[lo:hi]
            fresh = int(np.count_nonzero(~covered[set_ids]))
            if fresh != count:
                stale[node] = fresh
                heapq.heappush(heap, (-fresh, node))
                continue
            seeds.append(node)
            gains.append(float(fresh))
            stale[node] = -1  # never reconsidered
            covered[set_ids] = True
        if len(seeds) < k:
            used = set(seeds) | excluded
            for node in range(self._num_nodes):
                if node not in used:
                    seeds.append(node)
                    gains.append(0.0)
                    if len(seeds) == k:
                        break
        return seeds, gains

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RRIndex(num_sets={self._num_sets}, "
            f"num_nodes={self._num_nodes}, storage={self._storage!r})"
        )


class RRSampler:
    """Vectorized, pool-parallel RR-set sampler bound to one graph.

    One sampler serves every item of a build: the reverse CSR arrays
    and the reverse-gathered ``(m, Z)`` probability matrix are
    published to shared memory once (lazily, on first pooled dispatch)
    and each sampling task ships only the item's ``gamma`` — workers
    mix the item-specific arc probabilities locally.  With
    ``workers=1`` everything runs inline and no payload is created.

    Use as a context manager (or call :meth:`close`) to unlink the
    shared-memory segments; the worker pool itself is process-wide and
    shared with :class:`~repro.propagation.parallel.\
ParallelMonteCarloSpread`.
    """

    def __init__(
        self,
        graph: TopicGraph,
        *,
        workers=None,
        block_size: int | None = None,
    ) -> None:
        if workers is None:
            self._workers = default_sim_workers()
        else:
            self._workers = resolve_workers(workers, name="workers")
        if block_size is not None and block_size < 1:
            raise ValueError(
                f"block_size must be >= 1, got {block_size}"
            )
        in_indptr, in_tails, in_arc_ids = graph.reverse_view
        self._in_indptr = in_indptr
        self._in_tails = in_tails
        self._prob_matrix = np.ascontiguousarray(
            graph.probabilities[in_arc_ids]
        )
        self._num_nodes = graph.num_nodes
        self._num_topics = graph.num_topics
        self._block = (
            int(block_size)
            if block_size is not None
            else _block_size(graph.num_nodes)
        )
        self._payload: _GraphPayload | None = None
        self._finalizer = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Resolved pool width (1 means fully inline)."""
        return self._workers

    @property
    def num_nodes(self) -> int:
        """Node count of the bound graph."""
        return self._num_nodes

    def close(self) -> None:
        """Unlink the shared-memory payload (idempotent)."""
        self._closed = True
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._payload = None

    def __enter__(self) -> "RRSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_payload(self) -> _GraphPayload:
        if self._payload is None:
            payload = _GraphPayload(
                (self._in_indptr, self._in_tails, self._prob_matrix)
            )
            self._finalizer = weakref.finalize(
                self, _GraphPayload.release, payload
            )
            self._payload = payload
        return self._payload

    # ------------------------------------------------------------------
    def _blocks(self, num_sets: int) -> list[tuple[int, int]]:
        """Split a request into ``(block_id, count)`` pairs."""
        blocks = []
        lo = 0
        while lo < num_sets:
            count = min(self._block, num_sets - lo)
            blocks.append((len(blocks), count))
            lo += count
        return blocks

    def sample(
        self, gamma, num_sets: int, *, seed=None, request: int = 0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample ``num_sets`` RR sets for item ``gamma``.

        Returns the raw ``(values, indptr, roots)`` triple (see
        :func:`_sample_block`); wrap with :class:`RRIndex` or use
        :meth:`sample_index`.  ``request`` namespaces the random
        streams so successive calls (IMM's doubling phases) draw
        disjoint randomness from one root ``seed``; results are
        bit-identical for any worker count.
        """
        if self._closed:
            raise RuntimeError("RRSampler is closed; create a new one")
        if num_sets < 1:
            raise ValueError(f"num_sets must be >= 1, got {num_sets}")
        dist = as_distribution(gamma)
        if dist.size != self._num_topics:
            raise ValueError(
                f"item has {dist.size} topics, graph has "
                f"{self._num_topics}"
            )
        root = as_seed_sequence(seed)
        entropy = root.entropy
        base_key = tuple(root.spawn_key)
        blocks = self._blocks(num_sets)
        if self._workers == 1:
            in_probs = self._prob_matrix @ dist
            parts = [
                _sample_block(
                    self._in_indptr,
                    self._in_tails,
                    in_probs,
                    self._num_nodes,
                    count,
                    np.random.default_rng(
                        np.random.SeedSequence(
                            entropy=entropy,
                            spawn_key=base_key + (request, block_id),
                        )
                    ),
                )
                for block_id, count in blocks
            ]
            return _merge_blocks(parts, num_sets)
        return self._dispatch(
            dist, entropy, base_key, request, blocks, num_sets
        )

    def _dispatch(
        self, dist, entropy, base_key, request, blocks, num_sets
    ):
        """Fan blocks over the shared pool; inline on pool failure.

        Block streams never depend on where a block runs, so the
        recovery path (and the fully inline fallback) is bit-identical
        to a healthy pooled run.  The active fault plan's ``chunk``
        site is honoured per submitted task (coordinates ``call`` =
        request, ``chunk`` = task index, ``attempt`` = 0), so chaos
        runs exercise this recovery on the RR sampling path too.
        """
        spec = self._ensure_payload().spec
        plan = get_fault_plan()
        chunk = max(1, -(-len(blocks) // (self._workers * 2)))
        tasks = []
        for i in range(0, len(blocks), chunk):
            fault = None
            if plan is not None:
                fired = plan.fire(
                    "chunk", call=request, chunk=len(tasks), attempt=0
                )
                if fired is not None:
                    fault = (fired.mode, fired.keep)
            tasks.append(
                (
                    spec,
                    dist,
                    entropy,
                    base_key,
                    request,
                    blocks[i : i + chunk],
                    fault,
                )
            )
        results: list = [None] * len(tasks)
        executor = _get_executor(self._workers)
        futures = {}
        broken = False
        try:
            for i, task in enumerate(tasks):
                futures[executor.submit(_sample_blocks_task, task)] = i
        except (BrokenProcessPool, RuntimeError):
            broken = True
        for future, i in futures.items():
            try:
                results[i] = future.result()
            except (BrokenProcessPool, OSError):
                broken = True
            except InjectedFaultError:
                # Worker survived the injected error; this task falls
                # through to the bit-identical inline fallback below.
                pass
        if broken:
            _discard_executor(self._workers)
        in_probs = None
        for i, task in enumerate(tasks):
            if results[i] is not None:
                continue
            if in_probs is None:
                in_probs = self._prob_matrix @ dist
            results[i] = [
                _sample_block(
                    self._in_indptr,
                    self._in_tails,
                    in_probs,
                    self._num_nodes,
                    count,
                    np.random.default_rng(
                        np.random.SeedSequence(
                            entropy=entropy,
                            spawn_key=base_key + (request, block_id),
                        )
                    ),
                )
                for block_id, count in task[5]
            ]
        parts = [part for result in results for part in result]
        return _merge_blocks(parts, num_sets)

    def sample_index(
        self,
        gamma,
        num_sets: int,
        *,
        seed=None,
        request: int = 0,
        storage=None,
    ) -> RRIndex:
        """Sample ``num_sets`` RR sets and pack them into an
        :class:`RRIndex`."""
        values, indptr, roots = self.sample(
            gamma, num_sets, seed=seed, request=request
        )
        return RRIndex(
            values, indptr, roots, self._num_nodes, storage=storage
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RRSampler(num_nodes={self._num_nodes}, "
            f"workers={self._workers}, block={self._block})"
        )


def sample_rr_index(
    graph: TopicGraph,
    gamma,
    num_sets: int,
    *,
    workers=None,
    seed=None,
    storage=None,
) -> RRIndex:
    """One-shot convenience: sample a packed RR index for one item.

    Creates a temporary :class:`RRSampler` (reuse one explicitly when
    sampling for many items — the shared-memory publication is then
    paid once, not per item).
    """
    with RRSampler(graph, workers=workers) as sampler:
        return sampler.sample_index(
            gamma, num_sets, seed=seed, storage=storage
        )


# ----------------------------------------------------------------------
# The IMM algorithm
# ----------------------------------------------------------------------


def imm_budgets(
    num_nodes: int, k: int, epsilon: float, delta: float
) -> dict:
    """The martingale budgets behind one IMM run, as plain numbers.

    Returns a dict with ``ell`` (the confidence exponent solving
    ``n^-ell = delta``), ``eps_prime`` (phase-1 slack,
    ``sqrt(2) * epsilon``), ``lambda_prime`` (phase-1 numerator: the
    budget at guess ``x`` is ``lambda_prime / x``), ``lambda_star``
    (phase-2 numerator: the final budget is ``lambda_star / LB``), and
    ``log_c_n_k``.  Exposed for tests and for the budget tables in
    ``docs/INDEX_BUILDS.md``.
    """
    if num_nodes < 2:
        raise ValueError(
            f"IMM budgets need num_nodes >= 2, got {num_nodes}"
        )
    if not 0 <= k <= num_nodes:
        raise ValueError(
            f"k must lie in [0, {num_nodes}], got {k}"
        )
    if not 0.0 < epsilon < 1.0:
        raise ValueError(
            f"epsilon must lie in (0, 1), got {epsilon}"
        )
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    n = float(num_nodes)
    ln_n = math.log(n)
    ell = math.log(1.0 / delta) / ln_n
    log_c_n_k = (
        math.lgamma(n + 1.0)
        - math.lgamma(k + 1.0)
        - math.lgamma(n - k + 1.0)
    )
    eps_prime = math.sqrt(2.0) * epsilon
    lambda_prime = (
        (2.0 + 2.0 * eps_prime / 3.0)
        * (log_c_n_k + ell * ln_n + math.log(max(math.log2(n), 1.0)))
        * n
        / (eps_prime * eps_prime)
    )
    one_minus_inv_e = 1.0 - 1.0 / math.e
    alpha = math.sqrt(ell * ln_n + math.log(2.0))
    beta = math.sqrt(
        one_minus_inv_e * (log_c_n_k + ell * ln_n + math.log(2.0))
    )
    lambda_star = (
        2.0
        * n
        * (one_minus_inv_e * alpha + beta) ** 2
        / (epsilon * epsilon)
    )
    return {
        "ell": ell,
        "eps_prime": eps_prime,
        "log_c_n_k": log_c_n_k,
        "lambda_prime": lambda_prime,
        "lambda_star": lambda_star,
    }


def imm_seed_selection(
    graph: TopicGraph,
    gamma,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    workers=None,
    seed=None,
    max_sets: int | None = None,
    sampler: RRSampler | None = None,
) -> SeedList:
    """IMM influence maximization: a ``(1 - 1/e - epsilon)``-approximate
    seed list with probability ``1 - delta``.

    Parameters
    ----------
    graph / gamma:
        The topic graph and the item's topic distribution (Eq. 1
        instantiates the IC instance the RR sets are walked on).
    k:
        Seed budget (at most ``graph.num_nodes``).
    epsilon:
        Approximation slack in ``(0, 1)``; the RR budget grows as
        ``epsilon^-2``.
    delta:
        Failure probability in ``(0, 1)``; ``None`` uses the canonical
        ``1/n``.
    workers:
        Sampling pool width (int, ``"auto"``, or ``None`` for the
        ``REPRO_SIM_WORKERS`` default).  Seed lists are bit-identical
        for any width.
    seed:
        Randomness control (int, ``SeedSequence``, ``Generator``, or
        ``None``).
    max_sets:
        Optional hard cap on the RR budget.  Capping voids the formal
        guarantee — it exists for interactive/test runs; production
        builds should tune ``epsilon`` instead.
    sampler:
        An existing :class:`RRSampler` for this graph, reused across
        the items of a build; ``None`` creates (and closes) a private
        one.
    """
    n = graph.num_nodes
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k > n:
        raise ValueError(f"k={k} exceeds {n} candidate nodes")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if delta is None:
        delta = 1.0 / max(n, 2)
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    if max_sets is not None and max_sets < 2:
        raise ValueError(f"max_sets must be >= 2, got {max_sets}")
    if k == 0:
        return SeedList((), (), algorithm="imm")
    if n == 1:
        return SeedList((0,), (1.0,), algorithm="imm")
    budgets = imm_budgets(n, k, epsilon, delta)
    eps_prime = budgets["eps_prime"]
    root = as_seed_sequence(seed)
    tracer = get_tracer()
    own_sampler = sampler is None
    if own_sampler:
        sampler = RRSampler(graph, workers=workers)
    parts: list = []
    total = 0
    requests = 0

    def ensure(target: int, phase: str) -> None:
        """Grow the pooled collection to ``target`` sets (capped)."""
        nonlocal total, requests
        if max_sets is not None:
            target = min(target, max_sets)
        if target <= total:
            return
        count = target - total
        with tracer.span(
            "imm.sample", category="imm", phase=phase, sets=count
        ):
            parts.append(
                sampler.sample(gamma, count, seed=root, request=requests)
            )
        requests += 1
        total = target
        _obs.record_imm_sampled(phase, count)

    def pooled_index() -> RRIndex:
        values, indptr, roots = _merge_blocks(parts, total)
        return RRIndex(values, indptr, roots, n)

    try:
        # Phase 1: lower-bound OPT by doubling (Chernoff stopping).
        lower_bound = max(float(k), 1.0)
        for i in range(1, max(1, math.ceil(math.log2(n)))):
            x = n / 2.0**i
            theta_i = math.ceil(budgets["lambda_prime"] / x)
            ensure(theta_i, "estimate")
            index = pooled_index()
            with tracer.span(
                "imm.select",
                category="imm",
                phase="estimate",
                sets=index.num_sets,
            ):
                _, gains = index.greedy_select(k)
            fraction = sum(gains) / index.num_sets
            if n * fraction >= (1.0 + eps_prime) * x:
                lower_bound = n * fraction / (1.0 + eps_prime)
                break
        # Phase 2: the derived theta budget, then the final greedy.
        theta = math.ceil(budgets["lambda_star"] / lower_bound)
        ensure(theta, "select")
        index = pooled_index()
        with tracer.span(
            "imm.select",
            category="imm",
            phase="select",
            sets=index.num_sets,
        ):
            nodes, gains = index.greedy_select(k)
        scale = n / index.num_sets
        _obs.record_imm_build(index.num_sets)
        return SeedList(
            tuple(nodes),
            tuple(gain * scale for gain in gains),
            algorithm="imm",
        )
    finally:
        if own_sampler:
            sampler.close()
