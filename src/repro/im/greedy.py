"""Plain greedy influence maximization (Kempe--Kleinberg--Tardos).

At every step, evaluate the marginal spread gain of every remaining
node and add the best one.  With a monotone submodular spread function
this gives the classic ``(1 - 1/e)`` approximation; it is quadratic in
evaluations and serves here as the reference implementation that CELF
and CELF++ must agree with (they are exact optimizations of this
algorithm, not approximations of it).
"""

from __future__ import annotations

import numpy as np

from repro.im.seed_list import SeedList
from repro.propagation.spread import SpreadEstimator


def greedy_seed_selection(
    estimator: SpreadEstimator,
    num_nodes: int,
    k: int,
    *,
    candidates=None,
) -> SeedList:
    """Select ``k`` seeds by exhaustive greedy marginal-gain search.

    Parameters
    ----------
    estimator:
        Spread oracle; for deterministic greedy invariants use
        :class:`~repro.propagation.snapshots.SnapshotSpread`.
    num_nodes:
        Total number of nodes (candidate universe is ``0..num_nodes-1``
        unless ``candidates`` is given).
    k:
        Seed budget.
    candidates:
        Optional iterable restricting the candidate pool.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    pool = (
        list(range(num_nodes))
        if candidates is None
        else sorted(set(int(c) for c in candidates))
    )
    if k > len(pool):
        raise ValueError(f"k={k} exceeds candidate pool of {len(pool)}")
    # Estimators exposing ``estimate_many`` (the parallel Monte-Carlo
    # engine) evaluate each round's exhaustive sweep as one batch
    # dispatch; the batch consumes the oracle's call sequence in loop
    # order, so the selected seeds are identical either way.
    estimate_many = getattr(estimator, "estimate_many", None)
    seeds: list[int] = []
    gains: list[float] = []
    current_spread = 0.0
    remaining = set(pool)
    for _ in range(k):
        candidates = sorted(remaining)
        if estimate_many is not None:
            values = estimate_many(
                [seeds + [node] for node in candidates]
            )
        else:
            values = [
                estimator.estimate(seeds + [node]) for node in candidates
            ]
        best_node = -1
        best_spread = -np.inf
        for node, value in zip(candidates, values):
            if value > best_spread:
                best_spread = value
                best_node = node
        seeds.append(best_node)
        gains.append(best_spread - current_spread)
        current_spread = best_spread
        remaining.discard(best_node)
    return SeedList(tuple(seeds), tuple(gains), algorithm="greedy")
