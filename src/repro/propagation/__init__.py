"""Cascade models: IC/TIC simulation and expected-spread estimation."""

from repro.propagation.cascade import (
    CascadeTrace,
    simulate_cascade,
    simulate_cascade_trace,
    simulate_item_cascade,
    simulate_item_cascade_trace,
)
from repro.propagation.spread import (
    MonteCarloSpread,
    SpreadEstimate,
    SpreadEstimator,
    estimate_spread,
    estimate_spread_sequential,
)
from repro.propagation.parallel import (
    ParallelMonteCarloSpread,
    active_payload_count,
    shutdown_pools,
)
from repro.propagation.snapshots import SnapshotSpread
from repro.propagation.bounds import one_hop_lower_bound, union_upper_bound
from repro.propagation.exact import (
    MAX_EXACT_ARCS,
    exact_activation_probabilities,
    exact_spread,
)
from repro.propagation.linear_threshold import (
    estimate_lt_spread,
    lt_influence_maximization,
    normalize_lt_weights,
    sample_lt_rr_sets,
    simulate_lt_cascade,
    validate_lt_weights,
)

__all__ = [
    "one_hop_lower_bound",
    "union_upper_bound",
    "MAX_EXACT_ARCS",
    "exact_activation_probabilities",
    "exact_spread",
    "estimate_lt_spread",
    "lt_influence_maximization",
    "normalize_lt_weights",
    "sample_lt_rr_sets",
    "simulate_lt_cascade",
    "validate_lt_weights",
    "CascadeTrace",
    "simulate_cascade",
    "simulate_cascade_trace",
    "simulate_item_cascade",
    "simulate_item_cascade_trace",
    "MonteCarloSpread",
    "ParallelMonteCarloSpread",
    "active_payload_count",
    "shutdown_pools",
    "SpreadEstimate",
    "SpreadEstimator",
    "estimate_spread",
    "estimate_spread_sequential",
    "SnapshotSpread",
]
