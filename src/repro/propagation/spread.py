"""Monte-Carlo estimation of the expected spread ``sigma(S, gamma)``.

Computing the expected spread exactly is #P-hard, so the paper (after
Kempe et al.) estimates it by averaging the realized cascade sizes of
repeated simulations.  The :class:`SpreadEstimator` protocol below is
what the greedy influence-maximization algorithms are written against;
:class:`MonteCarloSpread` is the direct implementation, while
:class:`~repro.propagation.snapshots.SnapshotSpread` (live-edge
snapshots) offers common-random-numbers evaluation with lower variance
across seed sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.obs import instruments as _obs
from repro.propagation.cascade import simulate_cascade
from repro.rng import resolve_rng


@dataclass(frozen=True)
class SpreadEstimate:
    """A Monte-Carlo spread estimate with its sampling uncertainty.

    Attributes
    ----------
    mean:
        Average number of activated nodes across simulations.
    std:
        Sample standard deviation of the per-simulation counts.
    num_simulations:
        How many cascades were simulated.
    degraded:
        ``True`` when a deadline cut the estimation short — the values
        are honest but from fewer simulations than requested.
    """

    mean: float
    std: float
    num_simulations: int
    degraded: bool = False

    @property
    def standard_error(self) -> float:
        """Standard error of :attr:`mean`."""
        if self.num_simulations <= 1:
            return float("inf")
        return self.std / np.sqrt(self.num_simulations)


@runtime_checkable
class SpreadEstimator(Protocol):
    """Interface the IM algorithms consume: point spread evaluations."""

    def estimate(self, seeds) -> float:
        """Estimated expected spread of the seed set ``seeds``."""
        ...  # pragma: no cover - protocol


class MonteCarloSpread:
    """Fresh-randomness Monte-Carlo estimator bound to one (graph, item).

    Every call simulates ``num_simulations`` independent cascades.  Use
    a fixed ``seed`` for reproducible estimates; note that different
    seed sets then still share no randomness (unlike snapshots).
    """

    def __init__(
        self,
        graph: TopicGraph,
        gamma,
        *,
        num_simulations: int = 200,
        seed=None,
    ) -> None:
        if num_simulations < 1:
            raise ValueError(
                f"num_simulations must be >= 1, got {num_simulations}"
            )
        self._graph = graph
        self._probs = graph.item_probabilities(gamma)
        self._num_simulations = int(num_simulations)
        self._rng = resolve_rng(seed)

    @property
    def num_simulations(self) -> int:
        return self._num_simulations

    def estimate(self, seeds) -> float:
        """Mean spread of ``seeds`` over ``num_simulations`` cascades."""
        return self.estimate_with_error(seeds).mean

    def estimate_with_error(self, seeds) -> SpreadEstimate:
        """Full estimate including the per-run standard deviation."""
        counts = np.empty(self._num_simulations, dtype=np.float64)
        for i in range(self._num_simulations):
            active = simulate_cascade(
                self._graph.indptr,
                self._graph.indices,
                self._probs,
                seeds,
                self._rng,
            )
            counts[i] = active.sum()
        _obs.record_simulations(self._num_simulations)
        std = float(counts.std(ddof=1)) if counts.size > 1 else 0.0
        return SpreadEstimate(
            mean=float(counts.mean()),
            std=std,
            num_simulations=self._num_simulations,
        )


def estimate_spread_sequential(
    graph: TopicGraph,
    gamma,
    seeds,
    *,
    relative_halfwidth: float = 0.05,
    batch_size: int = 100,
    max_simulations: int = 20000,
    seed=None,
    deadline=None,
) -> SpreadEstimate:
    """Monte-Carlo estimation with a precision-based stopping rule.

    Simulates in batches until the ~95% confidence half-width
    (``1.96 * stderr``) drops below ``relative_halfwidth`` of the
    running mean, or ``max_simulations`` is reached.  Saves simulations
    on easy (low-variance) instances and spends them where the cascade
    distribution is heavy-tailed — the right default when spread values
    feed into comparisons rather than fixed-budget tables.

    ``deadline`` (a :class:`repro.resilience.Deadline`, or a number of
    milliseconds) bounds the wall clock: when it expires before the
    precision target is met, the partial estimate accumulated so far is
    returned with ``degraded=True`` — at least one batch always runs,
    so the result is never empty.
    """
    if not 0.0 < relative_halfwidth < 1.0:
        raise ValueError(
            f"relative_halfwidth must be in (0, 1), got {relative_halfwidth}"
        )
    if batch_size < 2:
        raise ValueError(f"batch_size must be >= 2, got {batch_size}")
    if max_simulations < batch_size:
        raise ValueError(
            f"max_simulations ({max_simulations}) must be >= batch_size "
            f"({batch_size})"
        )
    from repro.resilience.deadline import resolve_deadline

    deadline = resolve_deadline(deadline)
    degraded = False
    rng = resolve_rng(seed)
    probs = graph.item_probabilities(gamma)
    counts: list[float] = []
    while len(counts) < max_simulations:
        for _ in range(batch_size):
            active = simulate_cascade(
                graph.indptr, graph.indices, probs, seeds, rng
            )
            counts.append(float(active.sum()))
        arr = np.asarray(counts)
        mean = arr.mean()
        stderr = arr.std(ddof=1) / np.sqrt(arr.size)
        if mean > 0 and 1.96 * stderr <= relative_halfwidth * mean:
            break
        if mean == 0.0:
            break  # empty seed set or isolated seeds: variance is 0
        if deadline is not None and deadline.expired():
            degraded = True
            _obs.record_deadline_expired("spread")
            break
    arr = np.asarray(counts)
    _obs.record_simulations(arr.size)
    return SpreadEstimate(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        num_simulations=int(arr.size),
        degraded=degraded,
    )


def estimate_spread(
    graph: TopicGraph,
    gamma,
    seeds,
    *,
    num_simulations: int = 200,
    seed=None,
    workers=None,
) -> SpreadEstimate:
    """One-shot convenience wrapper around the Monte-Carlo estimators.

    ``workers`` picks the engine: 1 (the default) runs the sequential
    :class:`MonteCarloSpread`; more than 1 (or ``"auto"``) routes
    through :class:`~repro.propagation.parallel.ParallelMonteCarloSpread`.
    Leaving it ``None`` follows the ``REPRO_SIM_WORKERS`` environment
    default, so an exported variable is enough to parallelize every
    spread estimate in the process.  Note the two engines use different
    (each internally deterministic) random-stream layouts, so their
    estimates differ numerically for the same seed.
    """
    from repro.workers import default_sim_workers, resolve_workers

    if workers is None:
        resolved = default_sim_workers()
    else:
        resolved = resolve_workers(workers, name="workers")
    if resolved > 1:
        from repro.propagation.parallel import ParallelMonteCarloSpread

        with ParallelMonteCarloSpread(
            graph,
            gamma,
            num_simulations=num_simulations,
            seed=seed,
            workers=resolved,
        ) as estimator:
            return estimator.estimate_with_error(seeds)
    estimator = MonteCarloSpread(
        graph, gamma, num_simulations=num_simulations, seed=seed
    )
    return estimator.estimate_with_error(seeds)
