"""Exact expected-spread computation for tiny graphs.

Computing ``sigma(S)`` is #P-hard in general, but on graphs with a
handful of arcs it can be evaluated *exactly* by enumerating all
``2^m`` live-edge outcomes of the IC coupling and weighting each
outcome's reachable-set size by its probability.  This is the
ground-truth oracle the test-suite uses to validate every estimator
(Monte-Carlo, snapshots, RIS) against truth rather than against each
other.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.graph.topic_graph import TopicGraph

#: Enumeration is O(2^m); refuse anything that would take seconds.
MAX_EXACT_ARCS = 20


def exact_spread(graph: TopicGraph, gamma, seeds) -> float:
    """Exact expected spread of ``seeds`` for item ``gamma``.

    Raises
    ------
    ValueError
        If the graph has more than :data:`MAX_EXACT_ARCS` arcs (the
        enumeration would be intractable) or the seed set is invalid.
    """
    m = graph.num_arcs
    if m > MAX_EXACT_ARCS:
        raise ValueError(
            f"exact spread enumerates 2^m outcomes; {m} arcs exceed the "
            f"cap of {MAX_EXACT_ARCS}"
        )
    seed_array = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if seed_array.size == 0:
        return 0.0
    if seed_array.min() < 0 or seed_array.max() >= graph.num_nodes:
        raise ValueError("seed out of node range")
    probs = graph.item_probabilities(gamma)
    arcs = graph.arcs()
    total = 0.0
    for outcome in product((False, True), repeat=m):
        live = np.asarray(outcome, dtype=bool)
        weight = float(
            np.prod(np.where(live, probs, 1.0 - probs))
        )
        if weight == 0.0:
            continue
        # BFS over live arcs only.
        adjacency: dict[int, list[int]] = {}
        for arc_id in np.flatnonzero(live):
            tail, head = arcs[arc_id]
            adjacency.setdefault(int(tail), []).append(int(head))
        visited = set(int(v) for v in seed_array)
        frontier = list(visited)
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(nxt)
        total += weight * len(visited)
    return total


def exact_activation_probabilities(
    graph: TopicGraph, gamma, seeds
) -> np.ndarray:
    """Exact per-node activation probability (same enumeration).

    Returns a vector ``p`` with ``p[v] = P[v activates]``; seeds have
    probability 1.  Useful for validating per-node marginals, not just
    the aggregate spread.
    """
    m = graph.num_arcs
    if m > MAX_EXACT_ARCS:
        raise ValueError(
            f"exact computation enumerates 2^m outcomes; {m} arcs exceed "
            f"the cap of {MAX_EXACT_ARCS}"
        )
    seed_array = np.unique(np.asarray(list(seeds), dtype=np.int64))
    result = np.zeros(graph.num_nodes)
    if seed_array.size == 0:
        return result
    probs = graph.item_probabilities(gamma)
    arcs = graph.arcs()
    for outcome in product((False, True), repeat=m):
        live = np.asarray(outcome, dtype=bool)
        weight = float(np.prod(np.where(live, probs, 1.0 - probs)))
        if weight == 0.0:
            continue
        adjacency: dict[int, list[int]] = {}
        for arc_id in np.flatnonzero(live):
            tail, head = arcs[arc_id]
            adjacency.setdefault(int(tail), []).append(int(head))
        visited = set(int(v) for v in seed_array)
        frontier = list(visited)
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(nxt)
        for node in visited:
            result[node] += weight
    return result
