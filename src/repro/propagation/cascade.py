"""Independent Cascade simulation on CSR graphs.

The simulation core works on raw CSR arrays plus a per-arc probability
vector, so the same code runs the plain IC model (fixed probabilities)
and the TIC model (probabilities produced by Eq. 1 for a given item).

Time unfolds in discrete steps: when a node first activates at step
``t`` it gets exactly one chance to activate each currently inactive
out-neighbor, succeeding independently with the arc probability; new
activations join the frontier of step ``t + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.rng import resolve_rng


@dataclass(frozen=True)
class CascadeTrace:
    """Full record of one simulated cascade.

    Attributes
    ----------
    active:
        Boolean mask over nodes; ``True`` for every activated node.
    activation_time:
        Step at which each node activated (``-1`` when it never did;
        seeds activate at step 0).
    activator:
        For each activated non-seed node, the tail of the arc whose coin
        flip succeeded first (``-1`` for seeds and inactive nodes).
    """

    active: np.ndarray
    activation_time: np.ndarray
    activator: np.ndarray

    @property
    def size(self) -> int:
        """Number of activated nodes (the realized spread)."""
        return int(self.active.sum())


def _gather_frontier_arcs(
    indptr: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Positions (into the CSR arc arrays) of all out-arcs of ``frontier``."""
    starts = indptr[frontier]
    ends = indptr[frontier + 1]
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Vectorized ragged range: for each frontier node, the run
    # starts[i] .. ends[i]-1.
    offsets = np.repeat(starts, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return offsets + within


def simulate_cascade(
    indptr: np.ndarray,
    indices: np.ndarray,
    arc_probabilities: np.ndarray,
    seeds,
    rng=None,
) -> np.ndarray:
    """Run one IC cascade; return the boolean activation mask.

    This is the hot loop of every Monte-Carlo spread estimate, so it is
    fully vectorized: each step flips all frontier coins at once.
    """
    rng = resolve_rng(rng)
    num_nodes = indptr.size - 1
    active = np.zeros(num_nodes, dtype=bool)
    seed_array = np.asarray(seeds, dtype=np.int64)
    if seed_array.size == 0:
        return active
    active[seed_array] = True
    frontier = np.unique(seed_array)
    while frontier.size:
        arc_ids = _gather_frontier_arcs(indptr, frontier)
        if arc_ids.size == 0:
            break
        targets = indices[arc_ids]
        success = rng.random(arc_ids.size) < arc_probabilities[arc_ids]
        hits = targets[success]
        hits = hits[~active[hits]]
        if hits.size == 0:
            break
        newly = np.unique(hits)
        active[newly] = True
        frontier = newly
    return active


def simulate_cascade_trace(
    indptr: np.ndarray,
    indices: np.ndarray,
    arc_probabilities: np.ndarray,
    seeds,
    rng=None,
) -> CascadeTrace:
    """Run one cascade, recording activation times and activators.

    Slightly slower than :func:`simulate_cascade`; used to generate the
    propagation logs the TIC learner consumes.
    """
    rng = resolve_rng(rng)
    num_nodes = indptr.size - 1
    active = np.zeros(num_nodes, dtype=bool)
    activation_time = np.full(num_nodes, -1, dtype=np.int64)
    activator = np.full(num_nodes, -1, dtype=np.int64)
    seed_array = np.unique(np.asarray(seeds, dtype=np.int64))
    if seed_array.size == 0:
        return CascadeTrace(active, activation_time, activator)
    active[seed_array] = True
    activation_time[seed_array] = 0
    frontier = seed_array
    step = 0
    while frontier.size:
        step += 1
        arc_ids = _gather_frontier_arcs(indptr, frontier)
        if arc_ids.size == 0:
            break
        tails = np.repeat(frontier, indptr[frontier + 1] - indptr[frontier])
        targets = indices[arc_ids]
        success = rng.random(arc_ids.size) < arc_probabilities[arc_ids]
        hit_targets = targets[success]
        hit_tails = tails[success]
        fresh = ~active[hit_targets]
        hit_targets = hit_targets[fresh]
        hit_tails = hit_tails[fresh]
        if hit_targets.size == 0:
            break
        # Multiple frontier nodes can hit the same target this step; the
        # first recorded attempt wins (ties are an arbitrary but fixed
        # order, matching the model where simultaneous successes are
        # indistinguishable).
        newly, first_idx = np.unique(hit_targets, return_index=True)
        active[newly] = True
        activation_time[newly] = step
        activator[newly] = hit_tails[first_idx]
        frontier = newly
    return CascadeTrace(active, activation_time, activator)


def simulate_item_cascade(
    graph: TopicGraph, gamma, seeds, rng=None
) -> np.ndarray:
    """TIC cascade for an item with topic distribution ``gamma``."""
    probs = graph.item_probabilities(gamma)
    return simulate_cascade(graph.indptr, graph.indices, probs, seeds, rng)


def simulate_item_cascade_trace(
    graph: TopicGraph, gamma, seeds, rng=None
) -> CascadeTrace:
    """Traced TIC cascade for an item with topic distribution ``gamma``."""
    probs = graph.item_probabilities(gamma)
    return simulate_cascade_trace(
        graph.indptr, graph.indices, probs, seeds, rng
    )
