"""Live-edge snapshot spread estimation (common random numbers).

By the standard live-edge coupling of the IC model, sampling each arc
once with its probability yields a deterministic subgraph ("snapshot");
the spread of a seed set equals the expected number of nodes reachable
from it across snapshots.  Pre-sampling ``R`` snapshots and reusing them
for every seed-set evaluation gives three benefits the greedy algorithms
rely on:

* *common random numbers*: comparisons between candidate seeds are not
  polluted by independent simulation noise, so CELF's lazy bounds stay
  consistent within one greedy run;
* marginal gains are guaranteed non-negative and submodular *exactly*
  on the sampled snapshot set, so the greedy invariants hold without
  Monte-Carlo slack;
* repeated evaluations are plain BFS traversals — no coin flips.
"""

from __future__ import annotations

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.propagation.spread import SpreadEstimate
from repro.rng import resolve_rng


class SnapshotSpread:
    """Spread estimator over ``R`` pre-sampled live-edge snapshots."""

    def __init__(
        self,
        graph: TopicGraph,
        gamma,
        *,
        num_snapshots: int = 100,
        seed=None,
    ) -> None:
        if num_snapshots < 1:
            raise ValueError(
                f"num_snapshots must be >= 1, got {num_snapshots}"
            )
        self._num_nodes = graph.num_nodes
        self._num_snapshots = int(num_snapshots)
        rng = resolve_rng(seed)
        probs = graph.item_probabilities(gamma)
        indptr = graph.indptr
        indices = graph.indices
        tails = np.repeat(
            np.arange(graph.num_nodes, dtype=np.int64), np.diff(indptr)
        )
        self._snapshots: list[tuple[np.ndarray, np.ndarray]] = []
        for _ in range(self._num_snapshots):
            keep = rng.random(probs.size) < probs
            kept_tails = tails[keep]
            kept_heads = indices[keep]
            counts = np.bincount(kept_tails, minlength=self._num_nodes)
            snap_indptr = np.concatenate(([0], np.cumsum(counts)))
            # kept arcs are already grouped by tail because the forward
            # CSR enumerates arcs in tail order.
            self._snapshots.append((snap_indptr, kept_heads))

    @property
    def num_snapshots(self) -> int:
        return self._num_snapshots

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def _reachable_count(
        self, snap_indptr: np.ndarray, snap_indices: np.ndarray, seeds: np.ndarray
    ) -> int:
        visited = np.zeros(self._num_nodes, dtype=bool)
        visited[seeds] = True
        frontier = seeds
        while frontier.size:
            starts = snap_indptr[frontier]
            ends = snap_indptr[frontier + 1]
            counts = ends - starts
            total = int(counts.sum())
            if total == 0:
                break
            offsets = np.repeat(starts, counts)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            targets = snap_indices[offsets + within]
            targets = targets[~visited[targets]]
            if targets.size == 0:
                break
            frontier = np.unique(targets)
            visited[frontier] = True
        return int(visited.sum())

    def estimate(self, seeds) -> float:
        """Average reachable-set size of ``seeds`` across snapshots."""
        return self.estimate_with_error(seeds).mean

    def estimate_with_error(self, seeds) -> SpreadEstimate:
        """Estimate with the across-snapshot standard deviation."""
        seed_array = np.unique(np.asarray(seeds, dtype=np.int64))
        if seed_array.size == 0:
            return SpreadEstimate(0.0, 0.0, self._num_snapshots)
        counts = np.empty(self._num_snapshots, dtype=np.float64)
        for i, (snap_indptr, snap_indices) in enumerate(self._snapshots):
            counts[i] = self._reachable_count(
                snap_indptr, snap_indices, seed_array
            )
        std = float(counts.std(ddof=1)) if counts.size > 1 else 0.0
        return SpreadEstimate(
            mean=float(counts.mean()),
            std=std,
            num_simulations=self._num_snapshots,
        )
