"""Analytic bounds on the expected spread.

Monte-Carlo estimation is the workhorse, but two closed-form bounds are
useful for screening and sanity checks:

* **One-hop lower bound** — seeds plus the expected number of direct
  activations of non-seed nodes: every such activation happens in the
  full process too (activation probabilities only grow with more
  rounds), so this truncation never overshoots.
* **Union upper bound** — per-node activation probability bounded by
  the union bound along in-arcs, propagated in topological waves (with
  a cutoff for cyclic graphs); summing the per-node bounds over-counts
  correlations, so it never undershoots.

Both are cheap (linear passes over arcs per wave) and bracket the exact
value on tiny graphs (tested against :mod:`repro.propagation.exact`).
"""

from __future__ import annotations

import numpy as np

from repro.graph.topic_graph import TopicGraph


def one_hop_lower_bound(graph: TopicGraph, gamma, seeds) -> float:
    """Lower bound: seeds + expected direct (one-hop) activations.

    For a non-seed node ``v`` with seed in-neighbors ``S_v``, its
    probability of activating in round one is
    ``1 - prod_{u in S_v} (1 - p^i_{u,v})``, a lower bound on its
    overall activation probability.
    """
    seed_array = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if seed_array.size == 0:
        return 0.0
    if seed_array.min() < 0 or seed_array.max() >= graph.num_nodes:
        raise ValueError("seed out of node range")
    probs = graph.item_probabilities(gamma)
    is_seed = np.zeros(graph.num_nodes, dtype=bool)
    is_seed[seed_array] = True
    # Survival (no direct activation) per non-seed node.
    log_survival = np.zeros(graph.num_nodes)
    for seed in seed_array:
        lo, hi = graph.indptr[seed], graph.indptr[seed + 1]
        heads = graph.indices[lo:hi]
        with np.errstate(divide="ignore"):
            log_survival[heads] += np.log1p(
                -np.minimum(probs[lo:hi], 1.0 - 1e-15)
            )
    direct = 1.0 - np.exp(log_survival)
    direct[is_seed] = 0.0
    return float(seed_array.size + direct.sum())


def union_upper_bound(
    graph: TopicGraph, gamma, seeds, *, max_rounds: int | None = None
) -> float:
    """Upper bound via the union bound, iterated in waves.

    Maintains per-node bounds ``q_v >= P[v active]``, initialized to 1
    on seeds and 0 elsewhere, and iterates

        ``q_v <- min(1, seed_v + sum_{(u,v)} q_u * p^i_{u,v})``

    to a fixed point (or ``max_rounds``; defaults to ``num_nodes``,
    which suffices because true activation takes at most ``n - 1``
    rounds).  The update dominates the true dynamics (union bound over
    in-arcs, ignoring the each-arc-fires-once constraint), so the fixed
    point dominates the true activation probabilities.
    """
    seed_array = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if seed_array.size == 0:
        return 0.0
    if seed_array.min() < 0 or seed_array.max() >= graph.num_nodes:
        raise ValueError("seed out of node range")
    if max_rounds is None:
        max_rounds = graph.num_nodes
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    probs = graph.item_probabilities(gamma)
    tails = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64),
        np.diff(graph.indptr),
    )
    heads = graph.indices
    q = np.zeros(graph.num_nodes)
    q[seed_array] = 1.0
    seed_mask = q.copy()
    for _ in range(max_rounds):
        incoming = np.zeros(graph.num_nodes)
        np.add.at(incoming, heads, q[tails] * probs)
        updated = np.minimum(1.0, seed_mask + incoming)
        if np.allclose(updated, q, atol=1e-12):
            q = updated
            break
        q = updated
    return float(q.sum())
