"""Linear Threshold (LT) propagation — the other Kempe et al. model.

The paper works exclusively with the (topic-aware) Independent Cascade
model, but the INFLEX machinery is model-agnostic: all it needs is a
way to precompute ranked seed lists per index point.  This module
supplies the canonical alternative so the library covers both classic
diffusion models:

* **LT semantics**: every node ``v`` draws a threshold
  ``theta_v ~ U[0, 1]`` once; in-neighbor ``u`` contributes weight
  ``b_{u,v}`` (with ``sum_u b_{u,v} <= 1``); ``v`` activates as soon as
  the total weight of its active in-neighbors reaches ``theta_v``.
* **Topic-aware LT (TLT)**: per-topic weights ``b^z_{u,v}`` mixed by
  the item's topic distribution exactly like Eq. 1 — a convex
  combination of valid LT weight vectors is again valid.
* **Live-edge / RIS equivalence** (Kempe et al., Thm. 4.6): LT is
  distributed as the reachability of a live-edge graph where every node
  keeps at most *one* incoming arc, chosen with probability
  ``b_{u,v}`` (none with the residual).  Reverse-reachable sets are
  therefore *random walks* backwards, which
  :func:`sample_lt_rr_sets` implements.
"""

from __future__ import annotations

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.im.ris import RRSetCollection, ris_seed_selection
from repro.im.seed_list import SeedList
from repro.propagation.spread import SpreadEstimate
from repro.rng import resolve_rng


def normalize_lt_weights(graph: TopicGraph) -> TopicGraph:
    """Return a copy of ``graph`` with LT-valid weights.

    For every node and every topic, incoming weights are rescaled so
    they sum to at most 1 (nodes already satisfying the constraint are
    untouched).  This converts any probability-labeled topic graph into
    a topic-aware LT instance.
    """
    in_indptr, _, in_arc_ids = graph.reverse_view
    weights = graph.probabilities.copy()
    for node in range(graph.num_nodes):
        lo, hi = in_indptr[node], in_indptr[node + 1]
        if hi == lo:
            continue
        arc_ids = in_arc_ids[lo:hi]
        totals = weights[arc_ids].sum(axis=0)
        scale = np.where(totals > 1.0, 1.0 / totals, 1.0)
        weights[arc_ids] *= scale[np.newaxis, :]
    return TopicGraph(
        graph.num_nodes, graph.indptr, graph.indices, weights
    )


def validate_lt_weights(graph: TopicGraph, *, tol: float = 1e-9) -> bool:
    """``True`` when every node's per-topic in-weights sum to <= 1."""
    in_indptr, _, in_arc_ids = graph.reverse_view
    for node in range(graph.num_nodes):
        lo, hi = in_indptr[node], in_indptr[node + 1]
        if hi == lo:
            continue
        totals = graph.probabilities[in_arc_ids[lo:hi]].sum(axis=0)
        if np.any(totals > 1.0 + tol):
            return False
    return True


def simulate_lt_cascade(
    graph: TopicGraph, gamma, seeds, rng=None
) -> np.ndarray:
    """One topic-aware LT cascade; returns the activation mask.

    Thresholds are drawn fresh per call; weights come from the item
    mixture (Eq. 1 applied to LT weights).
    """
    rng = resolve_rng(rng)
    n = graph.num_nodes
    weights = graph.item_probabilities(gamma)
    thresholds = rng.random(n)
    active = np.zeros(n, dtype=bool)
    accumulated = np.zeros(n)
    seed_array = np.unique(np.asarray(seeds, dtype=np.int64))
    if seed_array.size == 0:
        return active
    active[seed_array] = True
    frontier = seed_array
    indptr = graph.indptr
    indices = graph.indices
    while frontier.size:
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.repeat(starts, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        arc_ids = offsets + within
        heads = indices[arc_ids]
        np.add.at(accumulated, heads, weights[arc_ids])
        candidates = np.unique(heads)
        newly = candidates[
            ~active[candidates]
            & (accumulated[candidates] >= thresholds[candidates])
        ]
        if newly.size == 0:
            break
        active[newly] = True
        frontier = newly
    return active


def estimate_lt_spread(
    graph: TopicGraph,
    gamma,
    seeds,
    *,
    num_simulations: int = 200,
    seed=None,
) -> SpreadEstimate:
    """Monte-Carlo LT spread estimate (analogue of IC's)."""
    if num_simulations < 1:
        raise ValueError(
            f"num_simulations must be >= 1, got {num_simulations}"
        )
    rng = resolve_rng(seed)
    counts = np.empty(num_simulations, dtype=np.float64)
    for i in range(num_simulations):
        counts[i] = simulate_lt_cascade(graph, gamma, seeds, rng).sum()
    std = float(counts.std(ddof=1)) if counts.size > 1 else 0.0
    return SpreadEstimate(
        mean=float(counts.mean()),
        std=std,
        num_simulations=num_simulations,
    )


def sample_lt_rr_sets(
    graph: TopicGraph, gamma, num_sets: int, *, seed=None
) -> RRSetCollection:
    """LT reverse-reachable sets: backward random walks.

    Each step from node ``v`` picks at most one in-neighbor, arc
    ``(u, v)`` with probability ``b^i_{u,v}`` (stop with the residual
    mass), and the walk terminates on revisits.
    """
    if num_sets < 1:
        raise ValueError(f"num_sets must be >= 1, got {num_sets}")
    rng = resolve_rng(seed)
    weights = graph.item_probabilities(gamma)
    in_indptr, in_tails, in_arc_ids = graph.reverse_view
    n = graph.num_nodes
    sets: list[np.ndarray] = []
    for _ in range(num_sets):
        node = int(rng.integers(n))
        visited = {node}
        while True:
            lo, hi = in_indptr[node], in_indptr[node + 1]
            if hi == lo:
                break
            arc_weights = weights[in_arc_ids[lo:hi]]
            draw = rng.random()
            cumulative = np.cumsum(arc_weights)
            position = int(np.searchsorted(cumulative, draw))
            if position >= arc_weights.size:
                break  # residual mass: no live in-arc this realization
            parent = int(in_tails[lo + position])
            if parent in visited:
                break
            visited.add(parent)
            node = parent
        sets.append(np.fromiter(visited, dtype=np.int64, count=len(visited)))
    return RRSetCollection(tuple(sets), n)


def lt_influence_maximization(
    graph: TopicGraph,
    gamma,
    k: int,
    *,
    num_sets: int = 2000,
    seed=None,
) -> SeedList:
    """Seed selection under topic-aware LT via reverse random walks.

    ``graph`` must carry LT-valid weights (see
    :func:`normalize_lt_weights`); an invalid graph makes the walk's
    stopping probabilities negative, so it is rejected.
    """
    if not validate_lt_weights(graph):
        raise ValueError(
            "graph weights violate the LT constraint sum_u b_{u,v} <= 1; "
            "run normalize_lt_weights first"
        )
    collection = sample_lt_rr_sets(graph, gamma, num_sets, seed=seed)
    result = ris_seed_selection(collection, k)
    return SeedList(result.nodes, result.marginal_gains, algorithm="lt-ris")
