"""Process-parallel Monte-Carlo spread estimation.

Monte-Carlo cascades are embarrassingly parallel — each simulation is an
independent draw — yet they dominate the runtime of every CELF-style
marginal-gain evaluation and every spread-quality experiment.  This
module turns ``num_simulations`` into chunks dispatched over a
persistent process pool while keeping two hard guarantees:

**Determinism.**  Every simulation owns a private RNG stream derived
from the estimator's root :class:`~numpy.random.SeedSequence`: the
``i``-th simulation of the ``t``-th ``estimate`` call uses the spawn key
``root_key + (t, i)``.  Chunk boundaries and worker counts therefore
never touch the random streams — ``ParallelMonteCarloSpread`` returns
**bit-identical** estimates for a given ``(seed, num_simulations)``
whether it runs inline, on 2 workers, or on 16.

**One graph serialization per pool.**  The CSR arrays (``indptr``, arc
heads, per-arc probabilities) are published once per estimator through
``multiprocessing.shared_memory`` (workers attach by name and cache the
attachment), falling back to plain pickling when shared memory is
unavailable.  Per-task payloads are then just a few names, a seed-set
array and a simulation range.

The worker pool itself is process-wide, keyed by worker count, created
lazily on first use and torn down atexit (or explicitly via
:func:`shutdown_pools`).  Estimators are context managers; closing one
unlinks its shared-memory segments.  See ``docs/PARALLELISM.md`` for the
lifetime rules and for how this pool composes with the index-point pool
of :mod:`repro.core.offline`.

**Crash recovery.**  Because chunk RNG streams are derived from
``(call, sim)`` spawn keys and never from worker identity, a chunk can
be re-executed anywhere — another worker, a rebuilt pool, or inline in
the parent — and produce the same bytes.  ``_dispatch`` exploits this:
a ``BrokenProcessPoolError`` or a hung worker discards the pool,
rebuilds it, and re-dispatches only the unfinished chunks; after the
retry budget is spent it degrades to inline execution (the sequential
Monte-Carlo path) instead of raising.  Every recovery event lands on
the ``repro_resilience_*`` metrics.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import atexit
import itertools
import logging
import os
import time
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro.errors import PoolBrokenError
from repro.graph.topic_graph import TopicGraph
from repro.obs import instruments as _obs
from repro.obs._state import STATE
from repro.obs.context import current_context
from repro.obs.logs import get_logger
from repro.obs.tracing import get_tracer, span_payload
from repro.propagation.cascade import simulate_cascade
from repro.propagation.spread import SpreadEstimate
from repro.resilience.faults import (
    FaultPlan,
    InjectedFaultError,
    get_fault_plan,
)
from repro.resilience.retry import RetryPolicy
from repro.rng import as_seed_sequence
from repro.workers import (
    default_retry_attempts,
    default_sim_workers,
    resolve_workers,
)

# ----------------------------------------------------------------------
# Shared-memory graph payloads
# ----------------------------------------------------------------------

#: Parent-side counter making payload tokens unique within a process.
_TOKEN_COUNTER = itertools.count()

#: Tokens of payloads whose shared-memory segments are still linked.
#: Tests assert this drains to empty — a leaked segment is a bug.
_LIVE_PAYLOADS: dict[str, "_GraphPayload"] = {}

#: Worker-side cache of attached payloads, capped so a long-lived pool
#: serving many estimators does not accumulate attachments forever.
_WORKER_CACHE: OrderedDict = OrderedDict()
_WORKER_CACHE_MAX = 8


class _GraphPayload:
    """One publisher's arrays, published for worker processes.

    ``spec`` is what travels in every task: for shared memory it is
    ``("shm", token, [(name, dtype, shape), ...])`` — a few strings —
    and for the pickle fallback it is the arrays themselves.

    Although named for its original client (the CSR graph arrays of the
    simulation pool), the payload is array-agnostic; the serving fleet
    publishes whole indexes through the same mechanism (see
    :func:`publish_arrays` / :mod:`repro.serving.shared_index`), so
    segment lifecycle, leak tracking, and the worker-side attachment
    cache stay in one place.
    """

    def __init__(
        self, arrays: tuple[np.ndarray, ...], *, prefix: str = "repro-sim"
    ) -> None:
        self.token = f"{prefix}-{os.getpid()}-{next(_TOKEN_COUNTER)}"
        self._segments = []
        try:
            from multiprocessing import shared_memory

            entries = []
            for array in arrays:
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf
                )
                view[...] = array
                entries.append(
                    (segment.name, array.dtype.str, array.shape)
                )
                self._segments.append(segment)
            self.spec = ("shm", self.token, entries)
        except (ImportError, OSError):
            # No usable shared memory (exotic platform or a full/absent
            # /dev/shm): ship the arrays by pickle.  Workers still cache
            # them by token, so the cost is once per task, not per chunk
            # retry.
            self._close_segments(unlink=True)
            self._segments = []
            self.spec = ("pickle", self.token, tuple(arrays))
        _LIVE_PAYLOADS[self.token] = self

    def _close_segments(self, *, unlink: bool) -> None:
        for segment in self._segments:
            try:
                segment.close()
                if unlink:
                    segment.unlink()
            except OSError:  # pragma: no cover - teardown best effort
                pass

    def release(self) -> None:
        """Unlink the shared segments and drop leak-tracking state."""
        self._close_segments(unlink=True)
        self._segments = []
        _LIVE_PAYLOADS.pop(self.token, None)


def active_payload_count() -> int:
    """Number of graph payloads whose segments are still linked.

    Exposed for the leak assertions of the differential test suite; a
    healthy process returns to 0 once every estimator is closed.
    """
    return len(_LIVE_PAYLOADS)


def publish_arrays(arrays, *, prefix: str = "repro-shared") -> _GraphPayload:
    """Publish ``arrays`` for other processes via shared memory.

    The general-purpose entry point to the payload machinery (the
    simulation pool constructs :class:`_GraphPayload` directly): the
    returned payload's ``spec`` is a small picklable tuple that any
    process on the machine can resolve with :func:`attach_arrays`,
    attaching the segments zero-copy.  Falls back to pickling the
    arrays into the spec when shared memory is unavailable.  The
    caller owns the payload and must :meth:`~_GraphPayload.release`
    it (segments outlive every attaching process until then — which is
    exactly what lets a respawned fleet worker re-attach without any
    disk reload).
    """
    materialized = tuple(
        np.ascontiguousarray(np.asarray(array)) for array in arrays
    )
    return _GraphPayload(materialized, prefix=prefix)


def attach_arrays(spec) -> tuple[np.ndarray, ...]:
    """Resolve a payload ``spec`` into arrays (zero-copy when shared).

    Safe to call from any process; attachments are cached per payload
    token (see ``_WORKER_CACHE``), so repeated resolution of the same
    spec — every task of a pool worker, every request of a fleet
    worker — costs one dict lookup.
    """
    return _payload_arrays(spec)


def _payload_arrays(spec) -> tuple[np.ndarray, ...]:
    """Resolve a payload spec into arrays, caching attachments.

    Runs in worker processes (and inline for the ``workers=1`` path,
    where the parent's own cache is hit).  Shared-memory attachments are
    kept referenced by the cache entry so the mapping outlives the call.
    """
    kind, token, detail = spec
    cached = _WORKER_CACHE.get(token)
    if cached is not None:
        _WORKER_CACHE.move_to_end(token)
        return cached[0]
    if kind == "shm":
        from multiprocessing import shared_memory

        arrays = []
        segments = []
        for name, dtype, shape in detail:
            segment = shared_memory.SharedMemory(name=name)
            segments.append(segment)
            arrays.append(
                np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
            )
        entry = (tuple(arrays), tuple(segments))
    else:
        entry = (tuple(detail), ())
    _WORKER_CACHE[token] = entry
    while len(_WORKER_CACHE) > _WORKER_CACHE_MAX:
        _, (_, old_segments) = _WORKER_CACHE.popitem(last=False)
        for segment in old_segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
    return entry[0]


# ----------------------------------------------------------------------
# Simulation kernels (shared by the inline path and the workers)
# ----------------------------------------------------------------------


def _simulate_range(
    indptr: np.ndarray,
    indices: np.ndarray,
    probs: np.ndarray,
    seeds: np.ndarray,
    entropy,
    call_key: tuple[int, ...],
    lo: int,
    hi: int,
) -> np.ndarray:
    """Cascade sizes of simulations ``lo..hi-1`` of one estimate call.

    Each simulation rebuilds its own ``SeedSequence`` from the root
    entropy and the spawn key ``call_key + (i,)`` — the construction
    that makes results independent of chunking.
    """
    counts = np.empty(hi - lo, dtype=np.float64)
    for i in range(lo, hi):
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=entropy, spawn_key=call_key + (i,)
            )
        )
        active = simulate_cascade(indptr, indices, probs, seeds, rng)
        counts[i - lo] = active.sum()
    return counts


def _simulate_chunk(task) -> tuple[int, int, int, np.ndarray, dict | None]:
    """Worker entry point: run one chunk, tagged with the worker pid.

    ``fault`` is the injection directive the parent attached when the
    active :class:`FaultPlan` fired for this chunk's coordinates:
    ``("crash", _)`` kills the worker outright (exercising pool-rebuild
    recovery), ``("error", _)`` raises a retryable exception, and
    ``("sleep", seconds)`` stalls before computing (exercising the
    dispatch timeout).  The fault-free path pays one ``is None`` check.

    ``trace`` is the dispatching request's trace id (or ``None`` when
    no context was bound / observability was off): when present the
    chunk is timed on the wall clock and a
    :func:`~repro.obs.tracing.span_payload` rides home with the counts
    for the parent tracer to adopt — worker-side spans stitching into
    the parent's cross-process trace.
    """
    spec, entropy, call_key, seeds, lo, hi, fault, trace = task
    if fault is not None:
        mode, arg = fault
        if mode == "crash":
            os._exit(17)
        if mode == "error":
            raise InjectedFaultError(
                f"injected worker fault for chunk [{lo}, {hi})"
            )
        if mode == "sleep":
            time.sleep(arg if arg is not None else 0.5)
    if trace is not None:
        wall_start = time.time()
        tick = time.perf_counter()
    indptr, indices, probs = _payload_arrays(spec)
    counts = _simulate_range(
        indptr, indices, probs, seeds, entropy, call_key, lo, hi
    )
    span = None
    if trace is not None:
        span = span_payload(
            "spread.chunk",
            wall_start,
            time.perf_counter() - tick,
            category="simpool",
            trace_id=trace,
            lo=lo,
            hi=hi,
            simulations=hi - lo,
        )
    return os.getpid(), lo, hi, counts, span


# ----------------------------------------------------------------------
# The process-wide worker pools
# ----------------------------------------------------------------------

_EXECUTORS: dict[int, ProcessPoolExecutor] = {}
_ATEXIT_REGISTERED = False


def _get_executor(workers: int) -> ProcessPoolExecutor:
    """The lazily-created process pool for ``workers`` processes.

    Pools are keyed by worker count and reused for the life of the
    process (every estimator with the same width shares one), so pool
    startup is paid once, not per estimate.
    """
    global _ATEXIT_REGISTERED
    executor = _EXECUTORS.get(workers)
    if executor is None:
        with _obs.sim_pool_span("start", workers):
            executor = ProcessPoolExecutor(max_workers=workers)
        _EXECUTORS[workers] = executor
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_pools)
            _ATEXIT_REGISTERED = True
    return executor


def _discard_executor(workers: int) -> None:
    """Drop the pool for ``workers`` without waiting (broken-pool path).

    The executor is removed from the registry first so a concurrent
    :func:`_get_executor` builds a fresh one; shutdown of the broken
    pool is best-effort — its workers may already be dead.
    """
    executor = _EXECUTORS.pop(workers, None)
    if executor is None:
        return
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - teardown best effort
        pass


def shutdown_pools() -> None:
    """Tear down every simulation pool and unlink leftover payloads.

    Registered atexit; safe to call explicitly (tests do) — the next
    estimate simply recreates its pool.  Payload release runs even when
    a pool's shutdown fails (e.g. its workers crashed mid-call), so a
    dead worker can never leak ``/dev/shm`` segments past teardown.
    """
    try:
        for workers, executor in list(_EXECUTORS.items()):
            try:
                with _obs.sim_pool_span("shutdown", workers):
                    executor.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown best effort
                pass
            _EXECUTORS.pop(workers, None)
    finally:
        for payload in list(_LIVE_PAYLOADS.values()):
            payload.release()


def pool_widths() -> tuple[int, ...]:
    """Worker counts of the currently live pools (for tests/debugging)."""
    return tuple(sorted(_EXECUTORS))


# ----------------------------------------------------------------------
# The estimator
# ----------------------------------------------------------------------


@dataclass(eq=False)
class _ChunkTask:
    """One dispatchable chunk of a batch: where its counts land.

    Identity-hashed (``eq=False``) so waves can keep sets of pending
    tasks without comparing the seed arrays.
    """

    row: int
    chunk_id: int
    key: tuple[int, ...]
    seeds: np.ndarray
    lo: int
    hi: int


class ParallelMonteCarloSpread:
    """Drop-in :class:`~repro.propagation.spread.SpreadEstimator` that
    chunks Monte-Carlo simulations over a persistent process pool.

    Parameters
    ----------
    graph / gamma:
        The topic graph and the item distribution (Eq. 1 instantiates
        the per-arc probabilities once, up front).
    num_simulations:
        Cascades per ``estimate`` call.
    seed:
        Root of the per-simulation stream derivation.  The same
        ``(seed, num_simulations)`` pair yields bit-identical estimates
        for **any** worker count — including ``workers=1``, which runs
        inline with no pool at all.
    workers:
        Pool width: a positive int, ``"auto"`` (CPU count), or ``None``
        to follow the ``REPRO_SIM_WORKERS`` environment default.
    chunks_per_worker:
        Load-balancing granularity — each estimate call is split into
        about ``workers * chunks_per_worker`` chunks.  Has no effect on
        the results, only on scheduling.
    retry_policy:
        Recovery budget for broken pools and failed chunks; ``None``
        uses a short-backoff default whose attempt count follows the
        ``REPRO_SIM_RETRIES`` environment knob.  Retried chunks are
        bit-identical to their first attempt (streams are keyed by
        ``(call, sim)``, not by worker), so recovery never changes
        results.
    allow_sequential_fallback:
        When the retry budget is exhausted, run the unfinished chunks
        inline in the parent (the default) instead of raising
        :class:`~repro.errors.PoolBrokenError`.
    task_timeout:
        Seconds to wait for each outstanding chunk before declaring the
        pool hung and rebuilding it; ``None`` (default) waits forever.
    fault_plan:
        Explicit :class:`~repro.resilience.FaultPlan` for chaos tests;
        ``None`` follows the process-wide plan (``REPRO_FAULTS``).

    Use as a context manager (or call :meth:`close`) to unlink the
    shared-memory graph segments when done; the pool itself is shared
    process-wide and survives for the next estimator.
    """

    def __init__(
        self,
        graph: TopicGraph,
        gamma,
        *,
        num_simulations: int = 200,
        seed=None,
        workers=None,
        chunks_per_worker: int = 4,
        retry_policy: RetryPolicy | None = None,
        allow_sequential_fallback: bool = True,
        task_timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if num_simulations < 1:
            raise ValueError(
                f"num_simulations must be >= 1, got {num_simulations}"
            )
        if chunks_per_worker < 1:
            raise ValueError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
            )
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {task_timeout}"
            )
        if workers is None:
            self._workers = default_sim_workers()
        else:
            self._workers = resolve_workers(
                workers, name="simulation_workers"
            )
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_attempts=default_retry_attempts(),
                base_delay=0.05,
                max_delay=1.0,
                retryable=(
                    BrokenProcessPool,
                    TimeoutError,
                    OSError,
                    InjectedFaultError,
                ),
            )
        self._retry_policy = retry_policy
        self._allow_sequential_fallback = bool(allow_sequential_fallback)
        self._task_timeout = task_timeout
        self._fault_plan = fault_plan
        self._num_simulations = int(num_simulations)
        self._chunks_per_worker = int(chunks_per_worker)
        self._indptr = graph.indptr
        self._indices = graph.indices
        self._probs = graph.item_probabilities(gamma)
        root = as_seed_sequence(seed)
        self._entropy = root.entropy
        self._base_key = tuple(root.spawn_key)
        self._calls = 0
        self._payload: _GraphPayload | None = None
        self._finalizer = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def num_simulations(self) -> int:
        """Cascades simulated per estimate call."""
        return self._num_simulations

    @property
    def workers(self) -> int:
        """Resolved pool width (1 means fully inline)."""
        return self._workers

    @property
    def calls(self) -> int:
        """Estimate calls served so far (each consumes one stream key)."""
        return self._calls

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink the shared-memory graph segments (idempotent)."""
        self._closed = True
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._payload = None

    def __enter__(self) -> "ParallelMonteCarloSpread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_payload(self) -> _GraphPayload:
        if self._closed:
            raise RuntimeError(
                "ParallelMonteCarloSpread is closed; create a new "
                "estimator"
            )
        if self._payload is None:
            payload = _GraphPayload(
                (self._indptr, self._indices, self._probs)
            )
            # The finalizer guards against estimators dropped without
            # close(): the segments are unlinked when the object dies,
            # not when the interpreter exits.
            self._finalizer = weakref.finalize(
                self, _GraphPayload.release, payload
            )
            self._payload = payload
        return self._payload

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(self, seeds) -> float:
        """Mean spread of ``seeds`` over ``num_simulations`` cascades."""
        return self.estimate_with_error(seeds).mean

    def estimate_with_error(self, seeds) -> SpreadEstimate:
        """Full estimate including the per-run standard deviation."""
        [counts] = self._counts_batch([seeds])
        std = float(counts.std(ddof=1)) if counts.size > 1 else 0.0
        return SpreadEstimate(
            mean=float(counts.mean()),
            std=std,
            num_simulations=self._num_simulations,
        )

    def estimate_many(self, seed_sets) -> list[float]:
        """Mean spreads of several seed sets in one pool dispatch.

        Bit-identical to calling :meth:`estimate` on each seed set in
        order (each set consumes the next call key), but the pool sees
        the whole batch at once — the fast path for the initial
        marginal-gain sweeps of the greedy/CELF++ algorithms.
        """
        seed_sets = list(seed_sets)
        if not seed_sets:
            return []
        return [
            float(counts.mean())
            for counts in self._counts_batch(seed_sets)
        ]

    # ------------------------------------------------------------------
    def _counts_batch(self, seed_sets) -> list[np.ndarray]:
        """Per-simulation cascade sizes for each seed set, in order."""
        arrays = [
            np.asarray(seeds, dtype=np.int64) for seeds in seed_sets
        ]
        first_call = self._calls
        self._calls += len(arrays)
        call_keys = [
            self._base_key + (first_call + offset,)
            for offset in range(len(arrays))
        ]
        if self._workers == 1:
            results = [
                _simulate_range(
                    self._indptr,
                    self._indices,
                    self._probs,
                    seeds,
                    self._entropy,
                    key,
                    0,
                    self._num_simulations,
                )
                for seeds, key in zip(arrays, call_keys)
            ]
            _obs.record_simulations(
                self._num_simulations * len(arrays)
            )
            return results
        return self._dispatch(arrays, call_keys)

    def _chunk_bounds(self, num_calls: int) -> list[tuple[int, int]]:
        """Simulation ranges for one call, sized to fill the pool.

        With many calls in flight one chunk per call already saturates
        the workers; a lone call is split into ``workers *
        chunks_per_worker`` pieces so no process idles.
        """
        target_tasks = self._workers * self._chunks_per_worker
        chunks_per_call = max(
            1, -(-target_tasks // num_calls)
        )
        chunk = -(-self._num_simulations // chunks_per_call)
        bounds = []
        lo = 0
        while lo < self._num_simulations:
            hi = min(lo + chunk, self._num_simulations)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def _dispatch(self, arrays, call_keys) -> list[np.ndarray]:
        """Run a batch over the pool, recovering from worker failures.

        Unfinished chunks are re-dispatched (pool rebuilt first when it
        broke) up to the retry budget, then executed inline — results
        are bit-identical on every path because the chunk streams never
        depend on where a chunk runs.
        """
        spec = self._ensure_payload().spec
        bounds = self._chunk_bounds(len(arrays))
        plan = (
            self._fault_plan
            if self._fault_plan is not None
            else get_fault_plan()
        )
        tasks = [
            _ChunkTask(row, chunk_id, key, seeds, lo, hi)
            for row, (seeds, key) in enumerate(zip(arrays, call_keys))
            for chunk_id, (lo, hi) in enumerate(bounds)
        ]
        results = [
            np.empty(self._num_simulations, dtype=np.float64)
            for _ in arrays
        ]
        # Cross-process tracing: when a request context is bound (and
        # recording is on) the trace id travels inside every task, and
        # workers send span payloads back with their counts.
        tracer = get_tracer()
        context = current_context() if STATE.enabled else None
        trace_id = context.trace_id if context is not None else None
        remote_spans: list[dict] = []
        per_worker: dict[int, int] = {}
        pending = tasks
        attempt = 0
        with tracer.span(
            "spread.dispatch",
            category="simpool",
            chunks=len(tasks),
            calls=len(arrays),
        ) as dispatch_span:
            while pending:
                pending = self._run_wave(
                    spec,
                    pending,
                    plan,
                    attempt,
                    results,
                    per_worker,
                    trace_id,
                    remote_spans,
                )
                if not pending:
                    break
                attempt += 1
                if attempt > self._retry_policy.max_attempts:
                    if not self._allow_sequential_fallback:
                        raise PoolBrokenError(
                            f"simulation pool failed {attempt} consecutive "
                            f"times with {len(pending)} chunks unrecovered; "
                            "raise the retry budget or enable sequential "
                            "fallback"
                        )
                    _obs.record_sequential_fallback()
                    self._run_inline(pending, results, per_worker)
                    pending = []
                    break
                _obs.record_chunk_retries(len(pending))
                self._retry_policy.sleep_before(attempt - 1)
        if remote_spans:
            tracer.adopt(
                remote_spans,
                trace_id=trace_id,
                parent_id=dispatch_span.span_id,
            )
        _obs.record_sim_chunks(len(tasks))
        for pid, count in per_worker.items():
            _obs.record_worker_simulations(pid, count)
        _obs.record_simulations(self._num_simulations * len(arrays))
        return results

    def _run_wave(
        self,
        spec,
        tasks,
        plan,
        attempt,
        results,
        per_worker,
        trace_id=None,
        remote_spans=None,
    ) -> list[_ChunkTask]:
        """Dispatch ``tasks`` once; returns the chunks needing a retry.

        A broken or hung pool is discarded here (counted as a rebuild)
        so the next wave's :func:`_get_executor` starts a fresh one.
        Worker-side span payloads (present when ``trace_id`` is set)
        accumulate into ``remote_spans`` for the caller to adopt.
        """
        executor = _get_executor(self._workers)
        futures: dict = {}
        broken = False
        failed: list[_ChunkTask] = []
        try:
            for task in tasks:
                fault = None
                if plan is not None:
                    fired = plan.fire(
                        "chunk",
                        call=int(task.key[-1]),
                        chunk=task.chunk_id,
                        attempt=attempt,
                    )
                    if fired is not None:
                        fault = (fired.mode, fired.keep)
                future = executor.submit(
                    _simulate_chunk,
                    (
                        spec,
                        self._entropy,
                        task.key,
                        task.seeds,
                        task.lo,
                        task.hi,
                        fault,
                        trace_id,
                    ),
                )
                futures[future] = task
        except (BrokenProcessPool, RuntimeError):
            # The pool died before accepting the whole wave; everything
            # not yet submitted fails over to the next wave alongside
            # whatever the submitted futures report below.
            broken = True
            submitted = set(futures.values())
            failed.extend(t for t in tasks if t not in submitted)
        for future, task in futures.items():
            try:
                pid, lo, hi, counts, span = future.result(
                    timeout=self._task_timeout
                )
            except (BrokenProcessPool, TimeoutError):
                broken = True
                failed.append(task)
                continue
            except (OSError, InjectedFaultError):
                # Worker survived but the chunk failed: retry it on the
                # same pool.
                failed.append(task)
                continue
            results[task.row][lo:hi] = counts
            per_worker[pid] = per_worker.get(pid, 0) + (hi - lo)
            if span is not None and remote_spans is not None:
                remote_spans.append(span)
        if broken:
            with _obs.pool_rebuild_span(self._workers):
                _discard_executor(self._workers)
            get_logger("resilience").event(
                "simpool.rebuild",
                level=logging.WARNING,
                workers=self._workers,
                failed_chunks=len(failed),
                attempt=attempt,
            )
        return failed

    def _run_inline(self, tasks, results, per_worker) -> None:
        """Sequential-fallback execution of ``tasks`` in the parent.

        This is the degraded path of last resort: no pool, no shared
        memory, no fault injection — just the same ``(call, sim)``
        streams the workers would have used, so the estimates still
        come out bit-identical.
        """
        pid = os.getpid()
        tracer = get_tracer()
        for task in tasks:
            with tracer.span(
                "spread.chunk",
                category="simpool",
                lo=task.lo,
                hi=task.hi,
                inline=True,
            ):
                counts = _simulate_range(
                    self._indptr,
                    self._indices,
                    self._probs,
                    task.seeds,
                    self._entropy,
                    task.key,
                    task.lo,
                    task.hi,
                )
            results[task.row][task.lo : task.hi] = counts
            per_worker[pid] = per_worker.get(pid, 0) + (
                task.hi - task.lo
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelMonteCarloSpread(workers={self._workers}, "
            f"num_simulations={self._num_simulations})"
        )
