"""The repo's metric catalog and the recording helpers hot paths call.

Every instrumented subsystem funnels through the small functions below
rather than touching metric objects directly; each helper checks the
global switch first, so with observability disabled (the default) an
instrumentation site costs one function call and one attribute load.

The catalog (all registered on the process-wide registry at import
time) is documented in ``docs/OBSERVABILITY.md``; keep the two in sync.
"""

from __future__ import annotations

import contextlib

from repro.obs._state import STATE
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer

_REGISTRY = get_registry()

# -- query path ---------------------------------------------------------
QUERIES = _REGISTRY.counter(
    "repro_queries_total",
    "TIM queries answered, by strategy and outcome",
    labels=("strategy", "outcome"),
)
QUERY_PHASE_SECONDS = _REGISTRY.histogram(
    "repro_query_phase_seconds",
    "Per-phase query wall clock (phases: search/selection/aggregation/total)",
    labels=("phase",),
)
QUERY_NEIGHBORS_USED = _REGISTRY.histogram(
    "repro_query_neighbors_used",
    "Index seed lists entering the rank aggregation, per query",
)

# -- batch path ---------------------------------------------------------
QUERY_BATCHES = _REGISTRY.counter(
    "repro_query_batches_total",
    "query_batch invocations, by strategy",
    labels=("strategy",),
)
QUERY_BATCH_SIZE = _REGISTRY.histogram(
    "repro_query_batch_size", "Queries per query_batch call"
)
BATCH_LEAVES_VISITED = _REGISTRY.counter(
    "repro_batch_leaves_visited_total",
    "bb-tree leaves scanned across all queries of a batch",
)
BATCH_DIVERGENCE_COMPUTATIONS = _REGISTRY.counter(
    "repro_batch_divergence_computations_total",
    "Divergence evaluations across all queries of a batch",
)
BATCH_NODES_PRUNED = _REGISTRY.counter(
    "repro_batch_nodes_pruned_total",
    "Subtrees pruned across all queries of a batch",
)
BATCH_EPSILON_MATCHES = _REGISTRY.counter(
    "repro_batch_epsilon_matches_total",
    "Epsilon-exact answers across all queries of a batch",
)

# -- bb-tree search -----------------------------------------------------
SEARCHES = _REGISTRY.counter(
    "repro_search_total", "bb-tree searches, by kind", labels=("kind",)
)
SEARCH_LEAVES_VISITED = _REGISTRY.counter(
    "repro_search_leaves_visited_total",
    "Leaf populations scanned, by search kind",
    labels=("kind",),
)
SEARCH_DIVERGENCE_COMPUTATIONS = _REGISTRY.counter(
    "repro_search_divergence_computations_total",
    "Point-to-query divergence evaluations, by search kind",
    labels=("kind",),
)
SEARCH_NODES_PRUNED = _REGISTRY.counter(
    "repro_search_nodes_pruned_total",
    "Subtrees skipped by the Eq. 5 projection bound, by search kind",
    labels=("kind",),
)
SEARCH_EPSILON_MATCHES = _REGISTRY.counter(
    "repro_search_epsilon_matches_total",
    "Searches ended by the epsilon-exact shortcut, by search kind",
    labels=("kind",),
)
SEARCH_EARLY_STOPS = _REGISTRY.counter(
    "repro_search_early_stops_total",
    "Searches ended by the Anderson-Darling criterion, by search kind",
    labels=("kind",),
)

# -- result cache -------------------------------------------------------
CACHE_HITS = _REGISTRY.counter(
    "repro_cache_hits_total", "CachedIndex lookups served from cache"
)
CACHE_MISSES = _REGISTRY.counter(
    "repro_cache_misses_total", "CachedIndex lookups forwarded to the index"
)
CACHE_EVICTIONS = _REGISTRY.counter(
    "repro_cache_evictions_total", "CachedIndex LRU evictions"
)
CACHE_ENTRIES = _REGISTRY.gauge(
    "repro_cache_entries", "Current CachedIndex occupancy"
)
CACHE_EXPIRATIONS = _REGISTRY.counter(
    "repro_cache_expirations_total",
    "CachedIndex entries dropped because their TTL elapsed",
)

# -- query serving ------------------------------------------------------
SERVING_REQUESTS = _REGISTRY.counter(
    "repro_serving_requests_total",
    "HTTP requests answered by the query server, by route and status",
    labels=("route", "status"),
)
SERVING_REQUEST_SECONDS = _REGISTRY.histogram(
    "repro_serving_request_seconds",
    "Request wall clock from admission to response write, by route",
    labels=("route",),
)
SERVING_SHED = _REGISTRY.counter(
    "repro_serving_shed_total",
    "Requests rejected by admission control, by reason "
    "(inflight/queue/draining)",
    labels=("reason",),
)
SERVING_BATCH_SIZE = _REGISTRY.histogram(
    "repro_serving_batch_size", "Requests folded into one query_batch call"
)
SERVING_BATCH_WAIT_SECONDS = _REGISTRY.histogram(
    "repro_serving_batch_wait_seconds",
    "Batching-window wait from first enqueue to dispatch",
)
SERVING_COALESCED = _REGISTRY.counter(
    "repro_serving_singleflight_coalesced_total",
    "Requests that piggybacked on an identical in-flight computation",
)
SERVING_INFLIGHT = _REGISTRY.gauge(
    "repro_serving_inflight", "Currently admitted (queued + executing) requests"
)
SERVING_QUEUE_DEPTH = _REGISTRY.gauge(
    "repro_serving_queue_depth", "Requests waiting in the micro-batch queue"
)

# -- serving fleet (router process) ------------------------------------
FLEET_REQUESTS = _REGISTRY.counter(
    "repro_fleet_requests_total",
    "Requests dispatched by the fleet router, by shard and outcome "
    "(ok/error/timeout/redispatched)",
    labels=("shard", "outcome"),
)
FLEET_RESTARTS = _REGISTRY.counter(
    "repro_fleet_worker_restarts_total",
    "Worker processes respawned by the supervisor, by shard",
    labels=("shard",),
)
FLEET_REDISPATCHES = _REGISTRY.counter(
    "repro_fleet_redispatches_total",
    "Requests re-sent to a sibling shard after their shard failed",
)
FLEET_HEDGES = _REGISTRY.counter(
    "repro_fleet_hedges_total",
    "Hedged duplicate dispatches, by outcome (won/lost)",
    labels=("outcome",),
)
FLEET_BREAKER_STATE = _REGISTRY.gauge(
    "repro_fleet_breaker_state",
    "Per-shard circuit-breaker state (0=closed, 1=half-open, 2=open)",
    labels=("shard",),
)
FLEET_HEARTBEAT_AGE = _REGISTRY.gauge(
    "repro_fleet_heartbeat_age_seconds",
    "Seconds since each shard's last heartbeat, by shard",
    labels=("shard",),
)
FLEET_WORKERS = _REGISTRY.gauge(
    "repro_fleet_workers",
    "Worker processes currently in the ready state",
)

# -- streaming (evolving graph) ----------------------------------------
STREAM_BATCHES = _REGISTRY.counter(
    "repro_stream_batches_applied_total",
    "Delta batches applied to the incremental sketch maintainer",
)
STREAM_DELTAS = _REGISTRY.counter(
    "repro_stream_deltas_applied_total",
    "Edge deltas applied, by op (add/remove/reweight)",
    labels=("op",),
)
STREAM_RR_RESAMPLED = _REGISTRY.counter(
    "repro_stream_rr_sets_resampled_total",
    "RR sets invalidated and resampled by delta application",
)
STREAM_RR_RETAINED = _REGISTRY.counter(
    "repro_stream_rr_sets_retained_total",
    "RR sets untouched by delta application (replay bit-identical)",
)
STREAM_SUBSCRIPTION_EVALS = _REGISTRY.counter(
    "repro_stream_subscription_evals_total",
    "Standing-subscription re-evaluations triggered by batches",
)
STREAM_UPDATES = _REGISTRY.counter(
    "repro_stream_updates_total",
    "SeedSetUpdate events emitted, by whether the seed set changed",
    labels=("changed",),
)
STREAM_SUBSCRIPTIONS = _REGISTRY.gauge(
    "repro_stream_subscriptions",
    "Standing TIM subscriptions currently registered",
)
STREAM_APPLY_SECONDS = _REGISTRY.histogram(
    "repro_stream_apply_seconds",
    "Wall clock of one delta-batch application (decay, deltas, "
    "resample, seed-list refresh)",
)

# -- offline construction ----------------------------------------------
BUILD_STAGE_SECONDS = _REGISTRY.histogram(
    "repro_build_stage_seconds",
    "Offline build stage durations, by stage",
    labels=("stage",),
)
IM_GAIN_EVALUATIONS = _REGISTRY.counter(
    "repro_im_gain_evaluations_total",
    "Spread-oracle (marginal gain) evaluations, by IM engine",
    labels=("engine",),
)
MC_SIMULATIONS = _REGISTRY.counter(
    "repro_mc_simulations_total", "Monte-Carlo cascade simulations run"
)
IMM_RR_SETS = _REGISTRY.counter(
    "repro_imm_rr_sets_sampled_total",
    "RR sets sampled by the IMM engine, by phase (estimate/select)",
    labels=("phase",),
)
IMM_BUILDS = _REGISTRY.counter(
    "repro_imm_builds_total", "IMM seed-list builds completed"
)
IMM_THETA = _REGISTRY.histogram(
    "repro_imm_theta_rr_sets",
    "Final RR-set budget (theta) per IMM seed-list build",
)

# -- campaign planner ---------------------------------------------------
CAMPAIGN_ALLOCATIONS = _REGISTRY.counter(
    "repro_campaign_allocations_total",
    "Campaign allocations completed, by algorithm "
    "(lazy/threshold/independent) and outcome (full/degraded)",
    labels=("algorithm", "outcome"),
)
CAMPAIGN_SEEDS = _REGISTRY.counter(
    "repro_campaign_seeds_total",
    "(node, item) seed pairs allocated across all campaigns",
)
CAMPAIGN_ORACLES = _REGISTRY.counter(
    "repro_campaign_oracles_total",
    "Per-item RR value oracles resolved, by source (sampled/cached)",
    labels=("source",),
)
CAMPAIGN_ITEMS = _REGISTRY.histogram(
    "repro_campaign_items",
    "Campaign items (B) per allocation request",
)
CAMPAIGN_ALLOCATE_SECONDS = _REGISTRY.histogram(
    "repro_campaign_allocate_seconds",
    "Wall clock of one campaign allocation (oracle sampling + greedy)",
)

# -- per-topic sketch bank ----------------------------------------------
SKETCH_COMPOSES = _REGISTRY.counter(
    "repro_sketch_composes_total",
    "Sketch compositions evaluated (strategy=sketch plus fallbacks)",
)
SKETCH_COMPOSE_SECONDS = _REGISTRY.histogram(
    "repro_sketch_compose_seconds",
    "Wall clock of one gamma-weighted sketch composition",
)
SKETCH_FALLBACKS = _REGISTRY.counter(
    "repro_sketch_fallbacks_total",
    "Degraded answers upgraded to composed sketches, by reason "
    "(distance/deadline)",
    labels=("reason",),
)
SKETCH_POOL_SETS = _REGISTRY.gauge(
    "repro_sketch_pool_sets",
    "Total RR sets held by the attached sketch bank (Z pools x S sets)",
)
SKETCH_REFRESHES = _REGISTRY.counter(
    "repro_sketch_refreshes_total",
    "Sketch-bank refreshes applied after streaming deltas",
)

# -- parallel spread engine ---------------------------------------------
SIM_CHUNKS = _REGISTRY.counter(
    "repro_sim_chunks_dispatched_total",
    "Simulation chunks dispatched to the parallel spread pool",
)
SIM_WORKER_SIMULATIONS = _REGISTRY.counter(
    "repro_sim_worker_simulations_total",
    "Simulations executed per pool worker, by worker pid",
    labels=("worker",),
)
SIM_POOL_EVENTS = _REGISTRY.counter(
    "repro_sim_pool_events_total",
    "Simulation pool lifecycle events, by event (start/shutdown)",
    labels=("event",),
)

# -- resilience ---------------------------------------------------------
RESILIENCE_POOL_REBUILDS = _REGISTRY.counter(
    "repro_resilience_pool_rebuilds_total",
    "Simulation pools discarded and rebuilt after a worker crash/hang",
)
RESILIENCE_CHUNK_RETRIES = _REGISTRY.counter(
    "repro_resilience_chunk_retries_total",
    "Simulation chunks re-dispatched after a recoverable failure",
)
RESILIENCE_SEQUENTIAL_FALLBACKS = _REGISTRY.counter(
    "repro_resilience_sequential_fallbacks_total",
    "Dispatches that degraded to inline execution after retry exhaustion",
)
RESILIENCE_FAULTS_INJECTED = _REGISTRY.counter(
    "repro_resilience_faults_injected_total",
    "Faults fired by the active FaultPlan, by site and mode",
    labels=("site", "mode"),
)
RESILIENCE_QUARANTINES = _REGISTRY.counter(
    "repro_resilience_checkpoint_quarantines_total",
    "Corrupt builder checkpoints renamed aside and recomputed",
)
RESILIENCE_DEADLINE_EXPIRATIONS = _REGISTRY.counter(
    "repro_resilience_deadline_expirations_total",
    "Operations that returned degraded results on deadline expiry, by site",
    labels=("where",),
)
RESILIENCE_CORRUPT_ARTIFACTS = _REGISTRY.counter(
    "repro_resilience_corrupt_artifacts_total",
    "Persisted artifacts that failed an integrity check, by artifact",
    labels=("artifact",),
)

# -- request-scoped telemetry -------------------------------------------
SLO_REQUESTS = _REGISTRY.counter(
    "repro_slo_requests_total",
    "Requests judged against each SLO objective, by verdict (good/bad)",
    labels=("objective", "verdict"),
)
SLO_BURN_RATE = _REGISTRY.gauge(
    "repro_slo_burn_rate",
    "Error-budget burn rate per objective and window (1.0 = budget "
    "consumed exactly as fast as it accrues)",
    labels=("objective", "window"),
)
SLO_HEALTHY = _REGISTRY.gauge(
    "repro_slo_healthy",
    "1 while no SLO objective is breached in both windows, else 0",
)
FLIGHT_RECORDS = _REGISTRY.gauge(
    "repro_flight_records",
    "Requests currently held in the flight-recorder ring",
)
SERVING_SLOW_REQUESTS = _REGISTRY.counter(
    "repro_serving_slow_requests_total",
    "Requests over the slow-query threshold (span tree captured)",
)
LOG_RECORDS = _REGISTRY.counter(
    "repro_log_records_total",
    "Structured log records emitted, by level",
    labels=("level",),
)
LOG_SUPPRESSED = _REGISTRY.counter(
    "repro_log_suppressed_total",
    "Structured log records dropped by the rate limiter",
)


# ----------------------------------------------------------------------
# Recording helpers (each is a no-op while observability is disabled)
#
# Labeled children are resolved once and memoized in plain dicts:
# ``MetricFamily.labels`` validates label names on every call, which is
# the right contract for ad-hoc use but measurable on the query hot
# path.  The memoized children survive ``registry.reset()`` (reset
# zeroes values, it does not drop series).
# ----------------------------------------------------------------------
_PHASE_SEARCH = QUERY_PHASE_SECONDS.labels(phase="search")
_PHASE_SELECTION = QUERY_PHASE_SECONDS.labels(phase="selection")
_PHASE_AGGREGATION = QUERY_PHASE_SECONDS.labels(phase="aggregation")
_PHASE_TOTAL = QUERY_PHASE_SECONDS.labels(phase="total")

_QUERY_COUNTERS: dict = {}
_SEARCH_COUNTERS: dict = {}


def _search_counters(kind: str):
    counters = _SEARCH_COUNTERS.get(kind)
    if counters is None:
        counters = (
            SEARCHES.labels(kind=kind),
            SEARCH_LEAVES_VISITED.labels(kind=kind),
            SEARCH_DIVERGENCE_COMPUTATIONS.labels(kind=kind),
            SEARCH_NODES_PRUNED.labels(kind=kind),
            SEARCH_EPSILON_MATCHES.labels(kind=kind),
            SEARCH_EARLY_STOPS.labels(kind=kind),
        )
        _SEARCH_COUNTERS[kind] = counters
    return counters


def record_search(kind: str, stats) -> None:
    """Fold one search's :class:`~repro.bbtree.search.SearchStats` into
    the registry."""
    if not STATE.enabled:
        return
    searches, leaves, divergences, pruned, epsilon, early = (
        _search_counters(kind)
    )
    searches.inc()
    leaves.inc(stats.leaves_visited)
    divergences.inc(stats.divergence_computations)
    pruned.inc(stats.nodes_pruned)
    if stats.epsilon_match:
        epsilon.inc()
    if stats.stopped_early:
        early.inc()


def record_query(strategy: str, answer) -> None:
    """Fold one answered TIM query into the registry."""
    if not STATE.enabled:
        return
    if answer.degraded:
        outcome = "degraded"
    elif answer.epsilon_match:
        outcome = "epsilon_exact"
    else:
        outcome = "aggregated"
    key = (strategy, outcome)
    counter = _QUERY_COUNTERS.get(key)
    if counter is None:
        counter = QUERIES.labels(strategy=strategy, outcome=outcome)
        _QUERY_COUNTERS[key] = counter
    counter.inc()
    timing = answer.timing
    _PHASE_SEARCH.observe(timing.search)
    _PHASE_SELECTION.observe(timing.selection)
    _PHASE_AGGREGATION.observe(timing.aggregation)
    _PHASE_TOTAL.observe(timing.total)
    QUERY_NEIGHBORS_USED.observe(answer.num_neighbors_used)


def record_batch(strategy: str, answers) -> None:
    """Fold the per-batch totals of ``query_batch`` into the registry."""
    if not STATE.enabled:
        return
    QUERY_BATCHES.labels(strategy=strategy).inc()
    QUERY_BATCH_SIZE.observe(len(answers))
    leaves = computations = pruned = epsilon = 0
    for answer in answers:
        stats = answer.search_stats
        if stats is None:
            continue
        leaves += stats.leaves_visited
        computations += stats.divergence_computations
        pruned += stats.nodes_pruned
        epsilon += int(stats.epsilon_match)
    BATCH_LEAVES_VISITED.inc(leaves)
    BATCH_DIVERGENCE_COMPUTATIONS.inc(computations)
    BATCH_NODES_PRUNED.inc(pruned)
    BATCH_EPSILON_MATCHES.inc(epsilon)


def record_cache_hit(entries: int) -> None:
    """Count one CachedIndex hit and update the occupancy gauge."""
    if not STATE.enabled:
        return
    CACHE_HITS.inc()
    CACHE_ENTRIES.set(entries)


def record_cache_miss(entries: int) -> None:
    """Count one CachedIndex miss and update the occupancy gauge."""
    if not STATE.enabled:
        return
    CACHE_MISSES.inc()
    CACHE_ENTRIES.set(entries)


def record_cache_eviction(entries: int) -> None:
    """Count one CachedIndex LRU eviction and update the occupancy
    gauge."""
    if not STATE.enabled:
        return
    CACHE_EVICTIONS.inc()
    CACHE_ENTRIES.set(entries)


def record_cache_expiration(entries: int) -> None:
    """Count one CachedIndex TTL expiration and update the occupancy
    gauge."""
    if not STATE.enabled:
        return
    CACHE_EXPIRATIONS.inc()
    CACHE_ENTRIES.set(entries)


_SERVING_REQUEST_COUNTERS: dict = {}
_SERVING_ROUTE_HISTOGRAMS: dict = {}
_SERVING_SHED_COUNTERS: dict = {}


def record_http_request(route: str, status: int, seconds: float) -> None:
    """Fold one served HTTP request into the registry."""
    if not STATE.enabled:
        return
    key = (route, status)
    counter = _SERVING_REQUEST_COUNTERS.get(key)
    if counter is None:
        counter = SERVING_REQUESTS.labels(route=route, status=str(status))
        _SERVING_REQUEST_COUNTERS[key] = counter
    counter.inc()
    histogram = _SERVING_ROUTE_HISTOGRAMS.get(route)
    if histogram is None:
        histogram = SERVING_REQUEST_SECONDS.labels(route=route)
        _SERVING_ROUTE_HISTOGRAMS[route] = histogram
    histogram.observe(seconds)


def record_shed(reason: str) -> None:
    """Count one request rejected by admission control."""
    if not STATE.enabled:
        return
    counter = _SERVING_SHED_COUNTERS.get(reason)
    if counter is None:
        counter = SERVING_SHED.labels(reason=reason)
        _SERVING_SHED_COUNTERS[reason] = counter
    counter.inc()


def record_coalesced() -> None:
    """Count one request coalesced into an identical in-flight one."""
    if not STATE.enabled:
        return
    SERVING_COALESCED.inc()


_FLEET_REQUEST_COUNTERS: dict = {}
_FLEET_RESTART_COUNTERS: dict = {}
_FLEET_HEDGE_COUNTERS: dict = {}
_FLEET_BREAKER_GAUGES: dict = {}
_FLEET_HEARTBEAT_GAUGES: dict = {}
_BREAKER_STATE_CODES = {"closed": 0, "half-open": 1, "open": 2}


def record_fleet_dispatch(shard: int, outcome: str) -> None:
    """Count one router dispatch to ``shard`` with the given outcome."""
    if not STATE.enabled:
        return
    key = (shard, outcome)
    counter = _FLEET_REQUEST_COUNTERS.get(key)
    if counter is None:
        counter = FLEET_REQUESTS.labels(shard=str(shard), outcome=outcome)
        _FLEET_REQUEST_COUNTERS[key] = counter
    counter.inc()


def record_fleet_restart(shard: int) -> None:
    """Count one supervisor respawn of ``shard``."""
    if not STATE.enabled:
        return
    counter = _FLEET_RESTART_COUNTERS.get(shard)
    if counter is None:
        counter = FLEET_RESTARTS.labels(shard=str(shard))
        _FLEET_RESTART_COUNTERS[shard] = counter
    counter.inc()


def record_fleet_redispatch() -> None:
    """Count one request re-sent to a sibling shard."""
    if not STATE.enabled:
        return
    FLEET_REDISPATCHES.inc()


def record_fleet_hedge(outcome: str) -> None:
    """Count one hedged duplicate dispatch (``won``/``lost``)."""
    if not STATE.enabled:
        return
    counter = _FLEET_HEDGE_COUNTERS.get(outcome)
    if counter is None:
        counter = FLEET_HEDGES.labels(outcome=outcome)
        _FLEET_HEDGE_COUNTERS[outcome] = counter
    counter.inc()


def set_fleet_breaker_state(shard: int, state: str) -> None:
    """Publish one shard's breaker state (closed/half-open/open)."""
    if not STATE.enabled:
        return
    gauge = _FLEET_BREAKER_GAUGES.get(shard)
    if gauge is None:
        gauge = FLEET_BREAKER_STATE.labels(shard=str(shard))
        _FLEET_BREAKER_GAUGES[shard] = gauge
    gauge.set(_BREAKER_STATE_CODES.get(state, 2))


def set_fleet_heartbeat_age(shard: int, age_s: float) -> None:
    """Publish seconds since one shard's last heartbeat."""
    if not STATE.enabled:
        return
    gauge = _FLEET_HEARTBEAT_GAUGES.get(shard)
    if gauge is None:
        gauge = FLEET_HEARTBEAT_AGE.labels(shard=str(shard))
        _FLEET_HEARTBEAT_GAUGES[shard] = gauge
    gauge.set(max(0.0, age_s))


def set_fleet_workers(ready: int) -> None:
    """Publish the number of ready worker processes."""
    if not STATE.enabled:
        return
    FLEET_WORKERS.set(ready)


def set_serving_load(inflight: int, queue_depth: int) -> None:
    """Update the admission-control load gauges."""
    if not STATE.enabled:
        return
    SERVING_INFLIGHT.set(inflight)
    SERVING_QUEUE_DEPTH.set(queue_depth)


@contextlib.contextmanager
def serving_batch_span(size: int, waited_s: float):
    """Span + histograms around one micro-batch dispatch.

    ``waited_s`` is the batching-window wait (first enqueue to
    dispatch); the execution itself is timed by the span.
    """
    with get_tracer().span(
        "serving.batch", category="serving", size=size
    ) as span:
        yield span
    if STATE.enabled:
        SERVING_BATCH_SIZE.observe(size)
        SERVING_BATCH_WAIT_SECONDS.observe(waited_s)


def record_gain_evaluations(engine: str, count: int) -> None:
    """Add ``count`` spread-oracle evaluations for one IM engine run."""
    if not STATE.enabled or count <= 0:
        return
    IM_GAIN_EVALUATIONS.labels(engine=engine).inc(count)


_IMM_PHASE_COUNTERS: dict = {}


def record_imm_sampled(phase: str, count: int) -> None:
    """Add ``count`` RR sets sampled by one IMM phase
    (``estimate``/``select``)."""
    if not STATE.enabled or count <= 0:
        return
    counter = _IMM_PHASE_COUNTERS.get(phase)
    if counter is None:
        counter = IMM_RR_SETS.labels(phase=phase)
        _IMM_PHASE_COUNTERS[phase] = counter
    counter.inc(count)


def record_imm_build(theta: int) -> None:
    """Count one finished IMM build and record its final RR budget."""
    if not STATE.enabled:
        return
    IMM_BUILDS.inc()
    IMM_THETA.observe(theta)


_CAMPAIGN_ORACLE_COUNTERS: dict = {}


def record_campaign_oracle(source: str) -> None:
    """Count one value-oracle resolution (``sampled``/``cached``)."""
    if not STATE.enabled:
        return
    counter = _CAMPAIGN_ORACLE_COUNTERS.get(source)
    if counter is None:
        counter = CAMPAIGN_ORACLES.labels(source=source)
        _CAMPAIGN_ORACLE_COUNTERS[source] = counter
    counter.inc()


def record_campaign_allocation(
    algorithm: str, degraded: bool, num_seeds: int
) -> None:
    """Count one finished campaign allocation and its seed pairs."""
    if not STATE.enabled:
        return
    CAMPAIGN_ALLOCATIONS.labels(
        algorithm=algorithm,
        outcome="degraded" if degraded else "full",
    ).inc()
    if num_seeds > 0:
        CAMPAIGN_SEEDS.inc(num_seeds)


@contextlib.contextmanager
def campaign_allocate_span(algorithm: str, items: int, k: int):
    """Span + metrics around one campaign allocation."""
    with get_tracer().span(
        "campaign.allocate",
        category="campaign",
        algorithm=algorithm,
        items=items,
        k=k,
    ) as span:
        yield span
    if STATE.enabled:
        CAMPAIGN_ITEMS.observe(items)
        if span.duration is not None:
            CAMPAIGN_ALLOCATE_SECONDS.observe(span.duration)


_SKETCH_FALLBACK_COUNTERS: dict = {}


def record_sketch_compose(seconds: float | None) -> None:
    """Count one sketch composition and its wall clock."""
    if not STATE.enabled:
        return
    SKETCH_COMPOSES.inc()
    if seconds is not None:
        SKETCH_COMPOSE_SECONDS.observe(seconds)


def record_sketch_fallback(reason: str) -> None:
    """Count one sketch-upgraded degraded answer (by trigger reason)."""
    if not STATE.enabled:
        return
    counter = _SKETCH_FALLBACK_COUNTERS.get(reason)
    if counter is None:
        counter = SKETCH_FALLBACKS.labels(reason=reason)
        _SKETCH_FALLBACK_COUNTERS[reason] = counter
    counter.inc()


def set_sketch_pool(total_sets: int) -> None:
    """Publish the attached sketch bank's total RR-set count."""
    if not STATE.enabled:
        return
    SKETCH_POOL_SETS.set(total_sets)


def record_sketch_refresh() -> None:
    """Count one streaming-driven sketch-bank refresh."""
    if not STATE.enabled:
        return
    SKETCH_REFRESHES.inc()


def record_simulations(count: int) -> None:
    """Add ``count`` Monte-Carlo cascade simulations to the total."""
    if not STATE.enabled or count <= 0:
        return
    MC_SIMULATIONS.inc(count)


def record_sim_chunks(count: int) -> None:
    """Add ``count`` dispatched chunks to the parallel-engine total."""
    if not STATE.enabled or count <= 0:
        return
    SIM_CHUNKS.inc(count)


def record_worker_simulations(worker: int, count: int) -> None:
    """Attribute ``count`` simulations to one pool worker (by pid)."""
    if not STATE.enabled or count <= 0:
        return
    SIM_WORKER_SIMULATIONS.labels(worker=str(worker)).inc(count)


def record_chunk_retries(count: int) -> None:
    """Add ``count`` re-dispatched chunks to the resilience total."""
    if not STATE.enabled or count <= 0:
        return
    RESILIENCE_CHUNK_RETRIES.inc(count)


def record_sequential_fallback() -> None:
    """Count one degradation from pooled to inline simulation."""
    if not STATE.enabled:
        return
    RESILIENCE_SEQUENTIAL_FALLBACKS.inc()


def record_fault_injected(site: str, mode: str) -> None:
    """Count one fault fired by the active :class:`FaultPlan`."""
    if not STATE.enabled:
        return
    RESILIENCE_FAULTS_INJECTED.labels(site=site, mode=mode).inc()


def record_checkpoint_quarantine() -> None:
    """Count one corrupt checkpoint quarantined by the builder."""
    if not STATE.enabled:
        return
    RESILIENCE_QUARANTINES.inc()


def record_deadline_expired(where: str) -> None:
    """Count one deadline expiry that produced a degraded result."""
    if not STATE.enabled:
        return
    RESILIENCE_DEADLINE_EXPIRATIONS.labels(where=where).inc()


def record_corrupt_artifact(artifact: str) -> None:
    """Count one artifact rejected by an integrity check."""
    if not STATE.enabled:
        return
    RESILIENCE_CORRUPT_ARTIFACTS.labels(artifact=artifact).inc()


@contextlib.contextmanager
def pool_rebuild_span(workers: int):
    """Span + counter around discarding and rebuilding a broken pool."""
    with get_tracer().span(
        "resilience.pool.rebuild", category="resilience", workers=workers
    ) as span:
        yield span
    if STATE.enabled:
        RESILIENCE_POOL_REBUILDS.inc()


@contextlib.contextmanager
def sim_pool_span(event: str, workers: int):
    """Span + event counter around pool startup/teardown.

    ``event`` is ``"start"`` or ``"shutdown"``; the span carries the
    pool width so traces show how wide each pool came up.
    """
    with get_tracer().span(
        f"simpool.{event}", category="simpool", workers=workers
    ) as span:
        yield span
    if STATE.enabled:
        SIM_POOL_EVENTS.labels(event=event).inc()


@contextlib.contextmanager
def stream_apply_span(batch_id: int, num_deltas: int):
    """Span + metrics around one delta-batch application.

    Wraps the whole transactional apply (decay, delta replay, RR-set
    resampling, seed-list refresh); the caller records the per-batch
    resample/retain counts separately via :func:`record_stream_batch`.
    """
    with get_tracer().span(
        "stream.apply",
        category="streaming",
        batch=batch_id,
        deltas=num_deltas,
    ) as span:
        yield span
    if STATE.enabled and span.duration is not None:
        STREAM_APPLY_SECONDS.observe(span.duration)


_STREAM_DELTA_COUNTERS: dict = {}


def record_stream_batch(report) -> None:
    """Fold one applied batch's :class:`~repro.streaming.ApplyReport`
    into the registry."""
    if not STATE.enabled:
        return
    STREAM_BATCHES.inc()
    for op, count in report.deltas_by_op.items():
        counter = _STREAM_DELTA_COUNTERS.get(op)
        if counter is None:
            counter = STREAM_DELTAS.labels(op=op)
            _STREAM_DELTA_COUNTERS[op] = counter
        counter.inc(count)
    STREAM_RR_RESAMPLED.inc(report.rr_sets_resampled)
    STREAM_RR_RETAINED.inc(report.rr_sets_retained)


_STREAM_UPDATE_COUNTERS: dict = {}


def record_stream_update(changed: bool) -> None:
    """Count one emitted SeedSetUpdate event."""
    if not STATE.enabled:
        return
    key = "yes" if changed else "no"
    counter = _STREAM_UPDATE_COUNTERS.get(key)
    if counter is None:
        counter = STREAM_UPDATES.labels(changed=key)
        _STREAM_UPDATE_COUNTERS[key] = counter
    counter.inc()


def record_subscription_evals(count: int) -> None:
    """Add ``count`` standing-subscription re-evaluations."""
    if not STATE.enabled or count <= 0:
        return
    STREAM_SUBSCRIPTION_EVALS.inc(count)


def set_stream_subscriptions(count: int) -> None:
    """Update the registered-subscriptions gauge."""
    if not STATE.enabled:
        return
    STREAM_SUBSCRIPTIONS.set(count)


@contextlib.contextmanager
def build_stage(stage: str):
    """Span + duration histogram around one offline build stage."""
    with get_tracer().span(f"build.{stage}", category="build") as span:
        yield span
    if STATE.enabled and span.duration is not None:
        BUILD_STAGE_SECONDS.labels(stage=stage).observe(span.duration)


_SLO_VERDICT_COUNTERS: dict = {}
_SLO_BURN_GAUGES: dict = {}
_LOG_LEVEL_COUNTERS: dict = {}


def record_slo_verdicts(verdicts: dict) -> None:
    """Fold one request's per-objective verdicts (``True`` = bad, as
    returned by :meth:`~repro.obs.slo.SLOMonitor.observe`) into the
    registry."""
    if not STATE.enabled:
        return
    for objective, bad in verdicts.items():
        key = (objective, "bad" if bad else "good")
        counter = _SLO_VERDICT_COUNTERS.get(key)
        if counter is None:
            counter = SLO_REQUESTS.labels(objective=key[0], verdict=key[1])
            _SLO_VERDICT_COUNTERS[key] = counter
        counter.inc()


def publish_slo_status(status: dict) -> None:
    """Push an :meth:`~repro.obs.slo.SLOMonitor.status` dict into the
    ``repro_slo_burn_rate`` / ``repro_slo_healthy`` gauges."""
    if not STATE.enabled:
        return
    for objective, detail in status["objectives"].items():
        for window in ("fast", "slow"):
            key = (objective, window)
            gauge = _SLO_BURN_GAUGES.get(key)
            if gauge is None:
                gauge = SLO_BURN_RATE.labels(
                    objective=objective, window=window
                )
                _SLO_BURN_GAUGES[key] = gauge
            gauge.set(detail[window]["burn_rate"])
    SLO_HEALTHY.set(1.0 if status["healthy"] else 0.0)


def record_flight(records: int, slow: bool) -> None:
    """Update the flight-recorder gauge (and the slow-request counter
    when the request crossed the slow threshold)."""
    if not STATE.enabled:
        return
    FLIGHT_RECORDS.set(records)
    if slow:
        SERVING_SLOW_REQUESTS.inc()


def record_log_event(level: str) -> None:
    """Count one emitted structured log record."""
    if not STATE.enabled:
        return
    counter = _LOG_LEVEL_COUNTERS.get(level)
    if counter is None:
        counter = LOG_RECORDS.labels(level=level)
        _LOG_LEVEL_COUNTERS[level] = counter
    counter.inc()


def record_log_suppressed(count: int) -> None:
    """Add ``count`` rate-limiter-dropped log records to the total."""
    if not STATE.enabled or count <= 0:
        return
    LOG_SUPPRESSED.inc(count)
