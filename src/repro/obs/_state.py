"""The global observability switch.

Instrumentation sites throughout the query and build paths check
``STATE.enabled`` (one attribute load) before touching the metrics
registry or the trace buffer, so a disabled process pays essentially
nothing for being instrumentable.  The switch lives in its own module
so that :mod:`repro.obs.metrics`, :mod:`repro.obs.tracing` and
:mod:`repro.obs.instruments` can all import it without cycles.
"""

from __future__ import annotations


class ObservabilityState:
    """Mutable process-wide on/off flag."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: The process-wide switch consulted by every instrumentation site.
STATE = ObservabilityState()


def enable() -> None:
    """Turn metric recording and span buffering on."""
    STATE.enabled = True


def disable() -> None:
    """Turn metric recording and span buffering off (the default)."""
    STATE.enabled = False


def enabled() -> bool:
    """Whether observability is currently on."""
    return STATE.enabled
