"""Request-scoped trace context and its propagation.

A :class:`RequestContext` is minted once per request at the serving
edge (or by the CLI) and identifies everything that happens on behalf
of that request: every tracing span recorded while the context is
active carries its ``trace_id``, every structured log line is stamped
with it, and the flight recorder keys its per-request records on it.

Propagation crosses three boundaries, none of which Python crosses for
free:

* **asyncio tasks** — the context lives in a :mod:`contextvars`
  variable, which the event loop copies into every task it spawns, so
  the handler -> micro-batcher hop needs no plumbing;
* **executor threads** — ``loop.run_in_executor`` does *not* copy
  context, so the serving layer wraps the executor callable with
  :func:`wrap` (capture here, re-bind there);
* **worker processes** — the parallel spread pool ships
  :func:`to_wire` dicts inside task payloads and stitches the
  worker-side chunk timings back into the parent trace via
  :meth:`repro.obs.tracing.Tracer.adopt`.

Root spans opened while a context is active adopt the context's
``parent_span_id``, which is how a span tree reassembles across
threads and processes: the serving request span (event loop) parents
the batch span, whose id rides into the executor thread, where the
``query`` span opens as *its* child, and so on into the pool workers.

Everything here is switch-independent: binding a context costs one
contextvar set whether or not observability is enabled, and reading it
on the span hot path happens only while recording (the enabled mode).
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from dataclasses import dataclass, replace

#: The active request context of the current task/thread (or ``None``).
_CURRENT: contextvars.ContextVar["RequestContext | None"] = (
    contextvars.ContextVar("repro_request_context", default=None)
)


def new_trace_id() -> str:
    """A fresh 64-bit trace id as 16 lowercase hex characters."""
    return os.urandom(8).hex()


def new_request_id() -> str:
    """A fresh 48-bit request id as 12 lowercase hex characters."""
    return os.urandom(6).hex()


@dataclass(frozen=True)
class RequestContext:
    """Identity of one in-flight request.

    Attributes
    ----------
    trace_id:
        Correlates every span/log/flight record of the request; one
        trace id spans threads and worker processes.
    request_id:
        The externally quotable id (returned in the ``X-Request-Id``
        response header and shown by ``/debug/requests``).  Several
        requests coalesced onto one computation keep distinct request
        ids while the computation's spans carry the leader's trace id.
    parent_span_id:
        Span that new *root* spans should attach to while this context
        is active — the cross-thread/cross-process parent link.
    """

    trace_id: str
    request_id: str
    parent_span_id: int | None = None

    def child_of(self, span) -> "RequestContext":
        """This context re-parented under ``span`` (a
        :class:`~repro.obs.tracing.Span`); unchanged when the span was
        not recorded (observability off)."""
        if getattr(span, "span_id", None) is None:
            return self
        return replace(self, parent_span_id=span.span_id)

    def to_wire(self) -> dict:
        """A picklable/JSON-able dict for process-boundary transport."""
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "parent_span_id": self.parent_span_id,
        }

    @staticmethod
    def from_wire(payload: dict) -> "RequestContext":
        """Rebuild a context from :meth:`to_wire` output."""
        return RequestContext(
            trace_id=str(payload["trace_id"]),
            request_id=str(payload.get("request_id", "")),
            parent_span_id=payload.get("parent_span_id"),
        )


def new_request_context(
    trace_id: str | None = None,
    request_id: str | None = None,
    parent_span_id: int | None = None,
) -> RequestContext:
    """Mint a context, honoring caller-supplied ids (e.g. an incoming
    ``X-Trace-Id`` header) and generating the rest."""
    return RequestContext(
        trace_id=trace_id or new_trace_id(),
        request_id=request_id or new_request_id(),
        parent_span_id=parent_span_id,
    )


def current_context() -> RequestContext | None:
    """The active request context of this task/thread, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def bind(context: RequestContext | None):
    """Make ``context`` the active request context for the block.

    ``bind(None)`` is a no-op block, so call sites can write
    ``with bind(maybe_ctx):`` without branching.
    """
    if context is None:
        yield None
        return
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def bind_child_of(span):
    """Re-bind the current context (if any) parented under ``span``.

    Used around cross-thread handoffs: the caller opens a span, then
    binds the child context so spans opened on the *other* side of the
    handoff attach beneath it.
    """
    context = _CURRENT.get()
    if context is None:
        yield None
        return
    with bind(context.child_of(span)) as child:
        yield child


def wrap(fn, context: RequestContext | None = None):
    """A zero-argument callable running ``fn`` under ``context``.

    Captures the caller's current context when ``context`` is omitted —
    the executor-thread propagation shim: build the wrapper on the
    event loop, hand it to ``run_in_executor``, and the target thread
    sees the request context while it runs.
    """
    if context is None:
        context = _CURRENT.get()

    def bound():
        with bind(context):
            return fn()

    return bound
