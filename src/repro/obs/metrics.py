"""Process-wide metrics: counters, gauges, and streaming histograms.

The data model follows the Prometheus client conventions — named
metrics, optional label dimensions producing independent series, a
text exposition format — without importing any client library.  Three
instrument kinds cover the repo's needs:

* :class:`Counter` — monotonically increasing totals (queries served,
  leaves visited, cache hits);
* :class:`Gauge` — set-to-current values (cache occupancy);
* :class:`Histogram` — streaming distributions over geometric buckets
  with interpolated quantiles (query phase latencies, build stage
  durations).

A histogram observation is O(1) (one log and one array increment) and
the memory cost is a fixed bucket array, so histograms are safe on hot
paths.  Quantiles are estimated by linear interpolation inside the
bucket that crosses the requested rank; with the default growth factor
of ``2**0.25`` the relative error is bounded by ~19% per bucket width,
ample for p50/p90/p99 latency reporting.

The process-wide default registry is reachable via :func:`get_registry`;
:mod:`repro.obs.instruments` registers the repo's metric catalog on it
at import time.
"""

from __future__ import annotations

import json
import math
import threading

#: Quantiles reported in snapshots and the text exposition.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counters are monotonic; cannot add {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot_value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot_value(self) -> float:
        return self._value


class Histogram:
    """Streaming histogram over geometric buckets.

    Parameters
    ----------
    lowest / highest:
        The covered positive range; observations below ``lowest``
        (including zero and negatives) land in the underflow bucket,
        observations at or above ``highest`` in the overflow bucket.
    growth:
        Geometric bucket growth factor (> 1); smaller factors trade
        memory for quantile resolution.
    """

    __slots__ = (
        "_lock",
        "_lowest",
        "_highest",
        "_log_growth",
        "_growth",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self,
        *,
        lowest: float = 1e-9,
        highest: float = 1e6,
        growth: float = 2.0 ** 0.25,
    ) -> None:
        if not 0 < lowest < highest:
            raise ValueError(
                f"need 0 < lowest < highest, got [{lowest}, {highest}]"
            )
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self._lock = threading.Lock()
        self._lowest = float(lowest)
        self._highest = float(highest)
        self._growth = float(growth)
        self._log_growth = math.log(growth)
        num = int(math.ceil(math.log(highest / lowest) / self._log_growth))
        # counts[0] is underflow, counts[-1] overflow.
        self._counts = [0] * (num + 2)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _bucket_index(self, value: float) -> int:
        if value < self._lowest:
            return 0
        index = int(math.log(value / self._lowest) / self._log_growth) + 1
        return min(index, len(self._counts) - 1)

    def _bucket_bounds(self, index: int) -> tuple[float, float]:
        if index == 0:
            return (min(self._min, 0.0), self._lowest)
        lo = self._lowest * self._growth ** (index - 1)
        if index == len(self._counts) - 1:
            return (lo, max(self._max, lo))
        return (lo, lo * self._growth)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        with self._lock:
            self._counts[self._bucket_index(value)] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        return self._max if self._count else math.nan

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of the observed distribution."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return math.nan
            rank = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    lo, hi = self._bucket_bounds(index)
                    fraction = (
                        (rank - cumulative) / bucket_count
                        if bucket_count
                        else 0.0
                    )
                    estimate = lo + fraction * (hi - lo)
                    return min(max(estimate, self._min), self._max)
                cumulative += bucket_count
            return self._max

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def snapshot_value(self) -> dict:
        with self._lock:
            count = self._count
        summary = {
            "count": count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for q in DEFAULT_QUANTILES:
            summary[f"p{int(q * 100)}"] = self.quantile(q)
        return summary

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for Prometheus
        ``histogram`` exposition.

        Only buckets that change the cumulative count are emitted (plus
        the mandatory ``+Inf`` bound), so the exposition stays compact
        despite the fine-grained geometric grid.  Bounds are the
        bucket *upper* edges; the underflow bucket reports at the
        ``lowest`` bound and the overflow bucket folds into ``+Inf``.
        """
        with self._lock:
            counts = list(self._counts)
            total = self._count
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for index, bucket_count in enumerate(counts[:-1]):
            if bucket_count == 0:
                continue
            cumulative += bucket_count
            upper = self._bucket_bounds(index)[1]
            pairs.append((upper, cumulative))
        pairs.append((math.inf, total))
        return pairs


_KIND_FACTORIES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricFamily:
    """A named metric with label dimensions; each distinct label-value
    combination is an independent child series created lazily by
    :meth:`labels`."""

    def __init__(
        self, name: str, kind: str, help: str, label_names: tuple[str, ...]
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels):
        """The child series for this exact label assignment."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _KIND_FACTORIES[self.kind]()
                self._children[key] = child
            return child

    def series(self) -> list[tuple[dict, object]]:
        """All live ``(labels, metric)`` pairs, label-sorted."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.label_names, key)), child)
            for key, child in items
        ]

    def reset(self) -> None:
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.reset()


class MetricsRegistry:
    """A named collection of metrics with snapshot/exposition support.

    Registration is idempotent: asking for an existing name with the
    same kind and label set returns the already-registered object
    (module reloads and repeated imports are safe); a conflicting
    redefinition raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, tuple[str, str, tuple[str, ...], object]] = {}

    # -- registration ---------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: tuple[str, ...],
    ):
        labels = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                ex_kind, _, ex_labels, ex_obj = existing
                if ex_kind != kind or ex_labels != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{ex_kind} with labels {ex_labels}"
                    )
                return ex_obj
            if labels:
                obj: object = MetricFamily(name, kind, help, labels)
            else:
                obj = _KIND_FACTORIES[kind]()
            self._metrics[name] = (kind, help, labels, obj)
            return obj

    def counter(self, name: str, help: str = "", labels=()) -> Counter:
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> Gauge:
        return self._register(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", labels=()) -> Histogram:
        return self._register(name, "histogram", help, labels)

    def get(self, name: str):
        """The registered metric (or family) called ``name``."""
        with self._lock:
            entry = self._metrics.get(name)
        if entry is None:
            raise KeyError(f"no metric named {name!r}")
        return entry[3]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def describe(self) -> dict:
        """Registration metadata per metric: ``{name: {kind, help,
        labels}}`` — what the documentation catalog must match."""
        with self._lock:
            return {
                name: {
                    "kind": kind,
                    "help": help,
                    "labels": tuple(labels),
                }
                for name, (kind, help, labels, _) in sorted(
                    self._metrics.items()
                )
            }

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Zero every metric while keeping all registrations live."""
        with self._lock:
            entries = list(self._metrics.values())
        for _, _, _, obj in entries:
            obj.reset()

    # -- export ---------------------------------------------------------
    def _iter_series(self):
        with self._lock:
            entries = sorted(self._metrics.items())
        for name, (kind, help, labels, obj) in entries:
            if labels:
                series = obj.series()
            else:
                series = [({}, obj)]
            yield name, kind, help, labels, series

    def snapshot(self) -> dict:
        """A JSON-friendly dump of every metric and series."""
        result: dict = {}
        for name, kind, help, labels, series in self._iter_series():
            result[name] = {
                "type": kind,
                "help": help,
                "label_names": list(labels),
                "series": [
                    {"labels": lbl, "value": metric.snapshot_value()}
                    for lbl, metric in series
                ],
            }
        return result

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition.

        Histograms use the native ``histogram`` type — cumulative
        ``{name}_bucket{{le="..."}}`` series plus ``_sum``/``_count`` —
        so scrape-side aggregation (``histogram_quantile`` across
        shards) works; :meth:`to_json` keeps reporting interpolated
        quantiles for humans.
        """
        lines: list[str] = []
        for name, kind, help, _, series in self._iter_series():
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, metric in series:
                if kind == "histogram":
                    for upper, cumulative in metric.cumulative_buckets():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = (
                            "+Inf"
                            if math.isinf(upper)
                            else _format_number(upper)
                        )
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(labels)} "
                        f"{_format_number(metric.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(labels)} "
                        f"{metric.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(labels)} "
                        f"{_format_number(metric.value)}"
                    )
        return "\n".join(lines) + "\n"


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = (
            str(labels[key])
            .replace("\\", r"\\")
            .replace('"', r"\"")
            .replace("\n", r"\n")
        )
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _format_number(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL_REGISTRY
