"""Structured JSON event logging, trace-correlated and rate-limited.

Serving, streaming, and resilience paths emit discrete *events*
(request shed, deadline degraded, pool worker replaced, delta batch
applied) that belong in a log, not a metric.  This module builds them
on stdlib :mod:`logging`:

* :func:`get_logger` returns a logger under the ``repro`` hierarchy
  with an :func:`event` convenience — one call producing a single JSON
  line with machine-parseable fields;
* :class:`JsonFormatter` renders records as one-line JSON with the
  active request context's ``trace_id``/``request_id`` stamped in
  automatically (events correlate with spans and flight records);
* :class:`RateLimitFilter` is a per-logger token bucket so an error
  storm (e.g. every request shedding during overload) cannot swamp the
  log — dropped records are counted and reported in a periodic
  ``suppressed`` summary line;
* :func:`configure_json_logging` installs a JSON handler on the
  ``repro`` root logger idempotently, and :func:`reset_logging`
  removes it (tests).

Library modules log unconditionally (stdlib logging is already cheap
and a ``NullHandler`` swallows everything until the application opts
in); metric accounting of log volume is gated on the observability
switch like every other instrument.
"""

from __future__ import annotations

import json
import logging
import threading
import time

from repro.obs.context import current_context
from repro.obs.instruments import record_log_event, record_log_suppressed

#: Name of the root logger for all repro events.
ROOT_LOGGER_NAME = "repro"

#: Default sustained events/second allowed per logger by the limiter.
DEFAULT_RATE_PER_S = 50.0

#: Default burst size of the limiter's token bucket.
DEFAULT_BURST = 100.0


class JsonFormatter(logging.Formatter):
    """Formats records as one-line JSON.

    Fields: ``ts`` (unix seconds), ``level``, ``logger``, ``event``
    (the message), plus ``trace_id``/``request_id`` when a request
    context is bound, and any extras passed via the record's
    ``event_fields`` attribute (see :func:`event`).
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        context = current_context()
        if context is not None:
            payload["trace_id"] = context.trace_id
            payload["request_id"] = context.request_id
        fields = getattr(record, "event_fields", None)
        if fields:
            for key, value in fields.items():
                if key not in payload:
                    payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


class RateLimitFilter(logging.Filter):
    """Token-bucket rate limiter for a logger.

    Allows bursts of up to ``burst`` records and a sustained
    ``rate_per_s`` beyond that; suppressed records are counted and a
    summary record is injected when the storm subsides (the next
    allowed record carries a ``suppressed`` field).
    """

    def __init__(
        self,
        rate_per_s: float = DEFAULT_RATE_PER_S,
        burst: float = DEFAULT_BURST,
        *,
        clock=time.monotonic,
    ) -> None:
        super().__init__()
        if rate_per_s <= 0 or burst < 1:
            raise ValueError(
                f"need rate_per_s > 0 and burst >= 1, got "
                f"{rate_per_s} / {burst}"
            )
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last = clock()
        self._suppressed = 0
        self._suppressed_total = 0

    @property
    def suppressed_total(self) -> int:
        """Records dropped by this filter since creation."""
        return self._suppressed_total

    def filter(self, record: logging.LogRecord) -> bool:
        now = self._clock()
        with self._lock:
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._last) * self.rate_per_s,
            )
            self._last = now
            if self._tokens < 1.0:
                self._suppressed += 1
                self._suppressed_total += 1
                record_log_suppressed(1)
                return False
            self._tokens -= 1.0
            if self._suppressed:
                fields = getattr(record, "event_fields", None)
                if fields is None:
                    fields = {}
                    record.event_fields = fields
                fields["suppressed"] = self._suppressed
                self._suppressed = 0
        record_log_event(record.levelname.lower())
        return True


class EventLogger(logging.LoggerAdapter):
    """A :class:`logging.LoggerAdapter` adding the :meth:`event` call.

    ``logger.event("request.shed", level=logging.WARNING, route="/query")``
    emits one structured record whose extra keyword arguments become
    JSON fields.  Standard adapter methods (``info`` etc.) still work.
    """

    def event(self, name: str, *, level: int = logging.INFO, **fields):
        """Log one structured event with ``fields`` as JSON keys."""
        if self.logger.isEnabledFor(level):
            self.logger.log(
                level, name, extra={"event_fields": fields}, stacklevel=2
            )

    def process(self, msg, kwargs):
        """Pass records through unchanged (adapter protocol)."""
        return msg, kwargs


#: Per-name adapter cache so repeated get_logger calls share filters.
_ADAPTERS: dict[str, EventLogger] = {}
_ADAPTERS_LOCK = threading.Lock()


def get_logger(name: str = "") -> EventLogger:
    """The structured event logger for ``name`` (joined under the
    ``repro`` hierarchy; ``get_logger("serving")`` →
    ``repro.serving``)."""
    full = f"{ROOT_LOGGER_NAME}.{name}" if name else ROOT_LOGGER_NAME
    with _ADAPTERS_LOCK:
        adapter = _ADAPTERS.get(full)
        if adapter is None:
            adapter = EventLogger(logging.getLogger(full), {})
            _ADAPTERS[full] = adapter
        return adapter


def configure_json_logging(
    *,
    level: int = logging.INFO,
    stream=None,
    rate_per_s: float = DEFAULT_RATE_PER_S,
    burst: float = DEFAULT_BURST,
) -> logging.Handler:
    """Install a JSON handler (with rate limiting) on the ``repro``
    root logger; idempotent — a second call replaces the previous
    handler rather than stacking.  Returns the installed handler."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    reset_logging()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    handler.addFilter(RateLimitFilter(rate_per_s, burst))
    handler.set_name("repro-json")
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler


def reset_logging() -> None:
    """Remove any handler installed by :func:`configure_json_logging`."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if handler.get_name() == "repro-json":
            root.removeHandler(handler)
    root.propagate = True


# Default: swallow events until an application configures logging.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
