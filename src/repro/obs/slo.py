"""Rolling-window SLO tracking with burn-rate computation.

The serving layer promises objectives of the form "99% of requests
complete within 250 ms over a 5-minute window".  This module tracks
three such objectives — **latency** (request under the threshold),
**error** (no 5xx), and **degraded** (full-quality answer: not
deadline-degraded, not shed) — over two aligned windows:

* a **slow** window (default 300 s) that defines the objective, and
* a **fast** window (default 60 s) that reacts quickly to incidents.

For each the monitor reports the *burn rate*: the observed bad
fraction divided by the error budget ``1 - target``.  Burn rate 1.0
means the budget is being consumed exactly as fast as it accrues;
above 1.0 the objective will be violated if the rate persists.  An
objective is **breached** when both windows burn above 1.0 — the
standard multi-window rule that ignores single-request blips on quiet
services while still flagging sustained trouble within seconds.

Observations land in per-second bins kept in a deque with running
totals, so both :meth:`SLOMonitor.observe` and
:meth:`SLOMonitor.status` are O(1) amortized.  The clock is injectable
for tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

#: Objective names in reporting order.
OBJECTIVES = ("latency", "error", "degraded")


class _SecondBins:
    """Per-second (total, bad) bins over a fixed trailing window, with
    running sums maintained on eviction."""

    __slots__ = ("window_s", "_bins", "_total", "_bad")

    def __init__(self, window_s: float) -> None:
        self.window_s = int(window_s)
        self._bins: deque = deque()  # [second, total, bad]
        self._total = 0
        self._bad = 0

    def observe(self, now: float, bad: bool) -> None:
        second = int(now)
        bad_n = 1 if bad else 0
        if self._bins and self._bins[-1][0] == second:
            last = self._bins[-1]
            last[1] += 1
            last[2] += bad_n
        else:
            self._bins.append([second, 1, bad_n])
        self._total += 1
        self._bad += bad_n
        self._evict(second)

    def _evict(self, second: int) -> None:
        cutoff = second - self.window_s
        bins = self._bins
        while bins and bins[0][0] <= cutoff:
            _, total, bad = bins.popleft()
            self._total -= total
            self._bad -= bad

    def totals(self, now: float) -> tuple[int, int]:
        self._evict(int(now))
        return self._total, self._bad


@dataclass(frozen=True)
class SLOConfig:
    """Targets and windows for the serving SLOs.

    ``latency_threshold_s`` is the per-request latency objective;
    ``*_target`` are the good-fraction targets in ``(0, 1)``;
    ``fast_window_s`` must not exceed ``slow_window_s``.
    """

    latency_threshold_s: float = 0.25
    latency_target: float = 0.99
    error_target: float = 0.999
    degraded_target: float = 0.99
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0

    def __post_init__(self) -> None:
        if self.latency_threshold_s <= 0:
            raise ValueError(
                "latency_threshold_s must be > 0, got "
                f"{self.latency_threshold_s}"
            )
        for name in ("latency_target", "error_target", "degraded_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        if not 0 < self.fast_window_s <= self.slow_window_s:
            raise ValueError(
                "need 0 < fast_window_s <= slow_window_s, got "
                f"{self.fast_window_s} / {self.slow_window_s}"
            )


class SLOMonitor:
    """Tracks the three serving objectives over fast and slow windows.

    Parameters
    ----------
    config:
        Targets and window sizes (defaults to :class:`SLOConfig`).
    clock:
        A monotonic ``() -> float`` used to timestamp observations;
        injectable so tests can steer time.
    """

    def __init__(
        self,
        config: SLOConfig | None = None,
        *,
        clock=time.monotonic,
    ) -> None:
        self.config = config or SLOConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._targets = {
            "latency": self.config.latency_target,
            "error": self.config.error_target,
            "degraded": self.config.degraded_target,
        }
        self._bins = {
            name: (
                _SecondBins(self.config.fast_window_s),
                _SecondBins(self.config.slow_window_s),
            )
            for name in OBJECTIVES
        }

    def observe(
        self,
        duration_s: float,
        *,
        error: bool = False,
        degraded: bool = False,
    ) -> dict:
        """Record one finished request; returns the per-objective
        good/bad verdicts (``True`` = bad) that were recorded."""
        now = self._clock()
        verdicts = {
            "latency": duration_s > self.config.latency_threshold_s,
            "error": bool(error),
            "degraded": bool(degraded),
        }
        with self._lock:
            for name, bad in verdicts.items():
                fast, slow = self._bins[name]
                fast.observe(now, bad)
                slow.observe(now, bad)
        return verdicts

    @staticmethod
    def _burn(total: int, bad: int, target: float) -> float:
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - target)

    def status(self) -> dict:
        """Current per-objective totals, burn rates, and breach flags.

        The top-level ``healthy`` flag is ``True`` iff no objective is
        breached (burning above 1.0 in *both* windows).
        """
        now = self._clock()
        objectives = {}
        healthy = True
        with self._lock:
            for name in OBJECTIVES:
                fast, slow = self._bins[name]
                fast_total, fast_bad = fast.totals(now)
                slow_total, slow_bad = slow.totals(now)
                target = self._targets[name]
                fast_burn = self._burn(fast_total, fast_bad, target)
                slow_burn = self._burn(slow_total, slow_bad, target)
                breached = fast_burn > 1.0 and slow_burn > 1.0
                healthy = healthy and not breached
                objectives[name] = {
                    "target": target,
                    "fast": {
                        "window_s": self.config.fast_window_s,
                        "total": fast_total,
                        "bad": fast_bad,
                        "burn_rate": fast_burn,
                    },
                    "slow": {
                        "window_s": self.config.slow_window_s,
                        "total": slow_total,
                        "bad": slow_bad,
                        "burn_rate": slow_burn,
                    },
                    "breached": breached,
                }
        return {
            "healthy": healthy,
            "latency_threshold_ms": self.config.latency_threshold_s * 1e3,
            "objectives": objectives,
        }

    @property
    def healthy(self) -> bool:
        """Whether no objective is currently breached."""
        return self.status()["healthy"]

    def clear(self) -> None:
        """Drop all observations."""
        with self._lock:
            for name in OBJECTIVES:
                self._bins[name] = (
                    _SecondBins(self.config.fast_window_s),
                    _SecondBins(self.config.slow_window_s),
                )
