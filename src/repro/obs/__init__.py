"""Unified observability: metrics, tracing, and the global switch.

The paper's headline claim is millisecond TIM queries; this package is
how the repo *proves* such claims across whole workloads instead of
single timings.  Three pieces:

* a process-wide :class:`~repro.obs.metrics.MetricsRegistry` of
  counters, gauges and streaming histograms (JSON snapshot +
  Prometheus text exposition) — see :func:`get_registry`;
* a :class:`~repro.obs.tracing.Tracer` of nestable spans exportable as
  JSON or Chrome ``trace_event`` documents — see :func:`get_tracer`;
* a single global switch (:func:`enable` / :func:`disable`): while off
  (the default), every instrumentation site in the query/build hot
  paths short-circuits after one attribute check, so the overhead is
  not measurable (``benchmarks/bench_obs_overhead.py`` enforces this).

Typical use::

    from repro import obs

    obs.enable()
    index.query(gamma, 10)
    print(obs.get_registry().to_json())
    obs.get_tracer().write_chrome_trace("trace.json")

The metric catalog lives in :mod:`repro.obs.instruments` and is
documented in ``docs/OBSERVABILITY.md``.
"""

from repro.obs._state import STATE, disable, enable, enabled
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
)
from repro.obs.tracing import Span, SpanRecord, Tracer, get_tracer
from repro.obs import instruments

__all__ = [
    "STATE",
    "enable",
    "disable",
    "enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "instruments",
]
