"""Unified observability: metrics, tracing, request-scoped telemetry.

The paper's headline claim is millisecond TIM queries; this package is
how the repo *proves* such claims across whole workloads instead of
single timings — and, since the request-scoped layer, how a single
slow or degraded query gets explained after the fact.  The pieces:

* a process-wide :class:`~repro.obs.metrics.MetricsRegistry` of
  counters, gauges and streaming histograms (JSON snapshot +
  Prometheus text exposition) — see :func:`get_registry`;
* a :class:`~repro.obs.tracing.Tracer` of nestable spans exportable as
  JSON or Chrome ``trace_event`` documents — see :func:`get_tracer`;
* a :class:`~repro.obs.context.RequestContext` minted per request and
  propagated across tasks, threads, and pool worker processes, so one
  request's spans share one ``trace_id`` — see
  :func:`new_request_context` / :func:`bind`;
* a :class:`~repro.obs.flightrec.FlightRecorder` ring of per-request
  records with a slow-query log that captures full span trees — see
  :func:`get_flight_recorder`;
* an :class:`~repro.obs.slo.SLOMonitor` tracking latency/error/
  degradation objectives with burn rates over fast and slow windows;
* structured JSON event logging correlated by trace id — see
  :func:`~repro.obs.logs.get_logger`;
* a single global switch (:func:`enable` / :func:`disable`): while off
  (the default), every instrumentation site in the query/build hot
  paths short-circuits after one attribute check, so the overhead is
  not measurable (``benchmarks/bench_obs_overhead.py`` enforces this).

Typical use::

    from repro import obs

    obs.enable()
    with obs.bind(obs.new_request_context()):
        index.query(gamma, 10)
    print(obs.get_registry().to_json())
    obs.get_tracer().write_chrome_trace("trace.json")

The metric catalog lives in :mod:`repro.obs.instruments` and is
documented in ``docs/OBSERVABILITY.md``.
"""

from repro.obs._state import STATE, disable, enable, enabled
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
)
from repro.obs.tracing import (
    Span,
    SpanRecord,
    Tracer,
    get_tracer,
    span_payload,
)
from repro.obs.context import (
    RequestContext,
    bind,
    bind_child_of,
    current_context,
    new_request_context,
    new_request_id,
    new_trace_id,
    wrap,
)
from repro.obs import instruments
from repro.obs.flightrec import (
    FlightRecord,
    FlightRecorder,
    gamma_fingerprint,
    get_flight_recorder,
)
from repro.obs.slo import SLOConfig, SLOMonitor
from repro.obs.logs import (
    EventLogger,
    JsonFormatter,
    RateLimitFilter,
    configure_json_logging,
    get_logger,
    reset_logging,
)

__all__ = [
    "STATE",
    "enable",
    "disable",
    "enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "span_payload",
    "RequestContext",
    "bind",
    "bind_child_of",
    "current_context",
    "new_request_context",
    "new_request_id",
    "new_trace_id",
    "wrap",
    "instruments",
    "FlightRecord",
    "FlightRecorder",
    "gamma_fingerprint",
    "get_flight_recorder",
    "SLOConfig",
    "SLOMonitor",
    "EventLogger",
    "JsonFormatter",
    "RateLimitFilter",
    "configure_json_logging",
    "get_logger",
    "reset_logging",
]
