"""Flight recorder: a bounded ring of per-request telemetry records.

Aggregate metrics answer "how is the service doing"; the flight
recorder answers "what happened to *this* request".  Every completed
request leaves one :class:`FlightRecord` — ids, the query fingerprint,
outcome flags (cache hit / coalesced / degraded / shed), per-phase
timings, which micro-batch it rode in — in a fixed-capacity ring
buffer, so the last N requests are always inspectable (via
``GET /debug/requests`` or :meth:`FlightRecorder.recent`) at a memory
cost that never grows.

Requests slower than a configurable threshold additionally capture
their **full span tree** from the tracer into a separate slow-query
ring (``GET /debug/slow``), which is how "why was this query slow"
gets answered after the fact without re-running anything.

Recording is gated on the global observability switch: a disabled
process pays one attribute check per request and keeps no state.
"""

from __future__ import annotations

import sys
import threading
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.obs._state import STATE

#: Default ring capacity (requests kept for ``/debug/requests``).
DEFAULT_CAPACITY = 1024

#: Default slow-query ring capacity (span trees are heavier, keep fewer).
DEFAULT_SLOW_CAPACITY = 64

#: Default slow-query threshold in seconds.
DEFAULT_SLOW_THRESHOLD_S = 0.1


def gamma_fingerprint(gamma) -> str:
    """A short stable fingerprint of a topic distribution γ_q.

    CRC-32 over the distribution rounded to 6 decimals, rendered as 8
    hex characters — enough to spot "the same query again" in a debug
    listing without storing the full vector per record.
    """
    rounded = tuple(round(float(v), 6) for v in gamma)
    digest = zlib.crc32(repr(rounded).encode("utf-8")) & 0xFFFFFFFF
    return f"{digest:08x}"


@dataclass
class FlightRecord:
    """One request's flight-recorder entry.

    ``timings`` maps phase names (e.g. ``search`` / ``selection`` /
    ``aggregation``) to seconds; ``status`` is the HTTP status code (or
    0 for CLI-originated requests).  ``spans`` is populated only on
    slow-ring entries: a list of span dicts (name, start, duration,
    span_id, parent_id) forming the request's full tree.
    """

    request_id: str
    trace_id: str
    route: str = ""
    fingerprint: str = ""
    k: int = 0
    strategy: str = ""
    status: int = 0
    duration_s: float = 0.0
    cache_hit: bool = False
    coalesced: bool = False
    degraded: bool = False
    shed: bool = False
    epsilon_match: bool = False
    num_neighbors_used: int = 0
    batch_id: int | None = None
    timings: dict = field(default_factory=dict)
    slow: bool = False
    spans: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """A JSON-friendly dict (used by the debug routes)."""
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "route": self.route,
            "fingerprint": self.fingerprint,
            "k": self.k,
            "strategy": self.strategy,
            "status": self.status,
            "duration_ms": self.duration_s * 1e3,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "degraded": self.degraded,
            "shed": self.shed,
            "epsilon_match": self.epsilon_match,
            "num_neighbors_used": self.num_neighbors_used,
            "batch_id": self.batch_id,
            "timings_ms": {
                name: value * 1e3 for name, value in self.timings.items()
            },
            "slow": self.slow,
            "spans": list(self.spans),
        }


class FlightRecorder:
    """Fixed-capacity ring of :class:`FlightRecord` entries plus a
    separate slow-query ring with captured span trees.

    Parameters
    ----------
    capacity:
        How many recent requests to keep.
    slow_capacity:
        How many slow requests (with span trees) to keep.
    slow_threshold_s:
        Requests with ``duration_s`` above this are also copied into
        the slow ring and get their span tree captured.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        slow_capacity: int = DEFAULT_SLOW_CAPACITY,
        slow_threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slow_capacity < 1:
            raise ValueError(
                f"slow_capacity must be >= 1, got {slow_capacity}"
            )
        if slow_threshold_s <= 0:
            raise ValueError(
                f"slow_threshold_s must be > 0, got {slow_threshold_s}"
            )
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=int(capacity))
        self._slow_ring: deque = deque(maxlen=int(slow_capacity))
        self.slow_threshold_s = float(slow_threshold_s)
        self._total = 0
        self._slow_total = 0

    def record(self, record: FlightRecord, tracer=None) -> bool:
        """Add one record; returns whether it was classified slow.

        No-op (returns ``False``) while observability is disabled.
        When ``tracer`` is given and the record crosses the slow
        threshold, the request's span tree is captured from it by
        trace id at record time.
        """
        if not STATE.enabled:
            return False
        slow = record.duration_s >= self.slow_threshold_s
        record.slow = slow
        if slow and tracer is not None and record.trace_id:
            record.spans = [
                {
                    "name": span.name,
                    "start_ms": span.start * 1e3,
                    "duration_ms": span.duration * 1e3,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                }
                for span in tracer.find_trace(record.trace_id)
            ]
        with self._lock:
            self._ring.append(record)
            self._total += 1
            if slow:
                self._slow_ring.append(record)
                self._slow_total += 1
        return slow

    def recent(self, n: int | None = None) -> list[FlightRecord]:
        """The most recent records, newest first."""
        with self._lock:
            records = list(self._ring)
        records.reverse()
        return records if n is None else records[: max(0, int(n))]

    def slow(self, n: int | None = None) -> list[FlightRecord]:
        """The most recent slow records (with span trees), newest first."""
        with self._lock:
            records = list(self._slow_ring)
        records.reverse()
        return records if n is None else records[: max(0, int(n))]

    def find(self, request_id: str) -> FlightRecord | None:
        """The record for ``request_id`` if still in the ring."""
        with self._lock:
            for record in reversed(self._ring):
                if record.request_id == request_id:
                    return record
        return None

    @property
    def total(self) -> int:
        """Requests recorded since creation/clear (including evicted)."""
        return self._total

    @property
    def slow_total(self) -> int:
        """Slow requests recorded since creation/clear."""
        return self._slow_total

    def __len__(self) -> int:
        return len(self._ring)

    def snapshot(self) -> dict:
        """Counts plus the recent rings as JSON-friendly dicts."""
        with self._lock:
            ring = list(self._ring)
            slow_ring = list(self._slow_ring)
            total = self._total
            slow_total = self._slow_total
        return {
            "total": total,
            "slow_total": slow_total,
            "capacity": self._ring.maxlen,
            "slow_capacity": self._slow_ring.maxlen,
            "slow_threshold_ms": self.slow_threshold_s * 1e3,
            "recent": [record.to_dict() for record in reversed(ring)],
            "slow": [record.to_dict() for record in reversed(slow_ring)],
        }

    def approx_memory_bytes(self) -> int:
        """Rough resident size of the rings (record dicts included) —
        reported by the telemetry benchmark, not a precise accounting."""
        with self._lock:
            records = list(self._ring) + list(self._slow_ring)
        total = sys.getsizeof(self._ring) + sys.getsizeof(self._slow_ring)
        for record in records:
            total += object.__sizeof__(record) + sys.getsizeof(
                record.__dict__
            )
            total += sys.getsizeof(record.timings)
            total += sys.getsizeof(record.spans)
            for span in record.spans:
                total += sys.getsizeof(span)
        return total

    def clear(self) -> None:
        """Drop all records and zero the counters."""
        with self._lock:
            self._ring.clear()
            self._slow_ring.clear()
            self._total = 0
            self._slow_total = 0


_GLOBAL_RECORDER = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    """The process-wide default flight recorder."""
    return _GLOBAL_RECORDER
