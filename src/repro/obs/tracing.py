"""Nestable tracing spans with Chrome ``trace_event`` export.

A :class:`Span` is a context manager timing one region of work with the
monotonic clock.  Spans nest: entering a span while another is open on
the same thread links the child to its parent, so exports reconstruct
the call tree (e.g. a ``query`` span with ``query.search`` /
``query.selection`` / ``query.aggregation`` children).

Two costs are deliberately separated:

* **timing** always happens — a span's :attr:`~Span.duration` is valid
  whether or not observability is on, which is how
  :class:`~repro.core.query.QueryTiming` stays a reliable public API;
* **recording** (buffering a :class:`SpanRecord`, assigning ids,
  maintaining the per-thread parent stack) only happens while the
  global switch (:func:`repro.obs.enable`) is on, so a disabled
  process pays two ``perf_counter`` calls and one small allocation per
  span — nothing else.

Finished spans are exported as plain JSON or as the Chrome
``trace_event`` format (load the file at ``chrome://tracing`` or
https://ui.perfetto.dev).

Spans are *request-aware*: while a :class:`repro.obs.context.RequestContext`
is bound, every recorded span is stamped with its ``trace_id``, and
root spans (no in-thread parent) attach to the context's
``parent_span_id`` — the mechanism that stitches one request's spans
across the event loop, executor threads, and (via :meth:`Tracer.adopt`)
pool worker processes into a single tree.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.obs._state import STATE
from repro.obs.context import current_context


@dataclass
class SpanRecord:
    """One finished span.

    ``start`` is seconds since the tracer epoch (the tracer's creation
    or last :meth:`Tracer.clear`), measured on the monotonic clock.
    Treat instances as read-only snapshots; the class stays unfrozen
    because frozen-dataclass construction is measurably slower on the
    recording hot path.
    """

    name: str
    category: str
    start: float
    duration: float
    span_id: int
    parent_id: int | None
    thread_id: int
    trace_id: str | None = None
    args: dict = field(default_factory=dict)


class Span:
    """A timed region; use as ``with tracer.span("name") as sp:``.

    After exit, :attr:`duration` holds the elapsed monotonic seconds.
    Exceptions are never swallowed: the span closes (and records, when
    enabled) and the exception propagates.
    """

    __slots__ = (
        "name",
        "category",
        "args",
        "start",
        "duration",
        "span_id",
        "parent_id",
        "thread_id",
        "trace_id",
        "_tracer",
        "_recording",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict):
        self.name = name
        self.category = category
        self.args = args
        self.start = 0.0
        self.duration: float | None = None
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.thread_id = 0
        self.trace_id: str | None = None
        self._tracer = tracer
        self._recording = False

    def __enter__(self) -> "Span":
        if STATE.enabled:
            self._recording = True
            self._tracer._enter(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if self._recording:
            # Inlined Tracer exit path: finished Span objects go straight
            # into the buffer (they are single-use), and SpanRecords are
            # materialized lazily at export time — this keeps the
            # enabled-mode cost per span to a stack pop and a list append.
            self._recording = False
            tracer = self._tracer
            stack = getattr(tracer._local, "stack", None)
            # The closing span is normally the stack top; guard against
            # out-of-order exits (e.g. clear() or enable() mid-span).
            if stack:
                if stack[-1] is self:
                    stack.pop()
                elif self in stack:
                    while stack[-1] is not self:
                        stack.pop()
                    stack.pop()
            records = tracer._records
            if len(records) < tracer._max_spans:
                records.append(self)
            else:
                tracer._dropped += 1
        return False


class Tracer:
    """Collects finished spans into a bounded in-memory buffer.

    Parameters
    ----------
    max_spans:
        Buffer capacity; further spans are counted in :attr:`dropped`
        instead of growing memory without bound.
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._max_spans = int(max_spans)
        self._lock = threading.Lock()
        self._records: list[Span] = []
        self._dropped = 0
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._local = threading.local()

    @property
    def epoch(self) -> float:
        """The ``time.perf_counter()`` stamp span starts are relative to.

        :meth:`spans` reports ``start`` relative to this epoch; exporters
        that need wall-clock stamps (the ``/debug/spans`` route feeding
        cross-process adoption) convert with
        ``time.time() - time.perf_counter() + tracer.epoch + start``.
        """
        return self._epoch

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, *, category: str = "repro", **args) -> Span:
        """A new (not yet entered) span bound to this tracer."""
        return Span(self, name, category, args)

    def open_span(
        self,
        name: str,
        *,
        category: str = "repro",
        trace_id: str | None = None,
        parent_id: int | None = None,
        **args,
    ) -> Span:
        """A manually managed span: started now, closed with
        :meth:`close_span`, never pushed on the per-thread stack.

        For regions that span ``await`` points on the event loop —
        stack-based nesting would mis-parent spans of interleaved
        tasks, so parentage is explicit here (``trace_id`` /
        ``parent_id``) and concurrent children link to it through a
        bound :class:`~repro.obs.context.RequestContext` instead of the
        stack.
        """
        span = Span(self, name, category, args)
        if STATE.enabled:
            span.span_id = next(self._ids)
            span.parent_id = parent_id
            span.trace_id = trace_id
            span.thread_id = threading.get_ident()
        span.start = time.perf_counter()
        return span

    def close_span(self, span: Span) -> None:
        """Finish a span from :meth:`open_span` and record it (when it
        was opened while recording was enabled)."""
        span.duration = time.perf_counter() - span.start
        if span.span_id is not None:
            if len(self._records) < self._max_spans:
                self._records.append(span)
            else:
                self._dropped += 1

    def _stack(self) -> list:
        try:
            return self._local.stack
        except AttributeError:
            stack = self._local.stack = []
            return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        span.span_id = next(self._ids)
        if stack:
            top = stack[-1]
            span.parent_id = top.span_id
            span.trace_id = top.trace_id
        else:
            # Root span on this thread: attach to the bound request
            # context (cross-thread/cross-process parent link).  This
            # contextvar read happens only while recording is enabled.
            context = current_context()
            if context is not None:
                span.parent_id = context.parent_span_id
                span.trace_id = context.trace_id
        span.thread_id = threading.get_ident()
        stack.append(span)

    # -- inspection -----------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        """All recorded spans, in completion order."""
        with self._lock:
            finished = list(self._records)
            epoch = self._epoch
        return [
            SpanRecord(
                span.name,
                span.category,
                span.start - epoch,
                span.duration or 0.0,
                span.span_id or 0,
                span.parent_id,
                span.thread_id,
                span.trace_id,
                span.args,
            )
            for span in finished
        ]

    def find(self, name: str) -> list[SpanRecord]:
        """Recorded spans with this exact name."""
        return [record for record in self.spans() if record.name == name]

    def find_trace(self, trace_id: str) -> list[SpanRecord]:
        """All spans stamped with this trace id, in completion order —
        one request's full tree, including adopted worker spans."""
        return [
            record for record in self.spans() if record.trace_id == trace_id
        ]

    def children_of(self, span_id: int) -> list[SpanRecord]:
        """Direct children of the given span, in completion order."""
        return [
            record
            for record in self.spans()
            if record.parent_id == span_id
        ]

    def adopt(
        self,
        payload: list[dict],
        *,
        trace_id: str | None = None,
        parent_id: int | None = None,
    ) -> int:
        """Stitch remotely recorded spans into this tracer's buffer.

        ``payload`` entries are plain dicts shipped across a process
        boundary (see :func:`span_payload`): ``name``, ``wall_start``
        (``time.time()`` seconds), ``duration``, plus optional
        ``category``, ``args``, ``trace_id``, ``pid``, and
        ``local_id``/``local_parent`` for intra-payload nesting.
        Adopted spans get fresh ids from this tracer (remote per-process
        counters would collide); entries without a ``local_parent``
        attach to ``parent_id``.  Wall-clock starts are converted onto
        this process's monotonic timeline.  Returns the number of spans
        adopted (0 when observability is disabled).
        """
        if not STATE.enabled or not payload:
            return 0
        # mono = wall - (wall_now - mono_now): maps a remote wall-clock
        # stamp onto this process's perf_counter timeline.
        offset = time.time() - time.perf_counter()
        id_map: dict = {}
        adopted = 0
        for entry in payload:
            span = Span(
                self,
                str(entry["name"]),
                str(entry.get("category", "repro")),
                dict(entry.get("args", ())),
            )
            span.span_id = next(self._ids)
            local_id = entry.get("local_id")
            if local_id is not None:
                id_map[local_id] = span.span_id
            span.parent_id = id_map.get(entry.get("local_parent"), parent_id)
            span.trace_id = entry.get("trace_id", trace_id)
            span.thread_id = int(entry.get("pid", 0))
            span.start = float(entry["wall_start"]) - offset
            span.duration = float(entry["duration"])
            if len(self._records) < self._max_spans:
                self._records.append(span)
                adopted += 1
            else:
                self._dropped += 1
        return adopted

    @property
    def dropped(self) -> int:
        return self._dropped

    def clear(self) -> None:
        """Drop all records and restart the epoch."""
        with self._lock:
            self._records = []
            self._dropped = 0
            self._epoch = time.perf_counter()
            self._local = threading.local()

    # -- export ---------------------------------------------------------
    def to_json(self, *, indent: int | None = 2) -> str:
        """Plain-JSON dump of the recorded spans."""
        payload = [
            {
                "name": record.name,
                "category": record.category,
                "start": record.start,
                "duration": record.duration,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "thread_id": record.thread_id,
                "trace_id": record.trace_id,
                "args": record.args,
            }
            for record in self.spans()
        ]
        return json.dumps(payload, indent=indent)

    def to_chrome_trace(self) -> dict:
        """The spans as a Chrome ``trace_event`` document.

        Complete (``"ph": "X"``) events with microsecond timestamps;
        span/parent ids ride along in ``args`` so the document
        round-trips via :meth:`from_chrome_trace`.
        """
        pid = os.getpid()
        events = []
        for record in self.spans():
            args = dict(record.args)
            args["span_id"] = record.span_id
            if record.parent_id is not None:
                args["parent_id"] = record.parent_id
            if record.trace_id is not None:
                args["trace_id"] = record.trace_id
            events.append(
                {
                    "name": record.name,
                    "cat": record.category or "repro",
                    "ph": "X",
                    "ts": record.start * 1e6,
                    "dur": record.duration * 1e6,
                    "pid": pid,
                    "tid": record.thread_id,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> int:
        """Write the Chrome trace document to ``path``; returns the
        number of exported spans."""
        document = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return len(document["traceEvents"])

    @staticmethod
    def from_chrome_trace(document: dict) -> list[SpanRecord]:
        """Reconstruct span records from a Chrome trace document
        produced by :meth:`to_chrome_trace`."""
        records = []
        for event in document.get("traceEvents", ()):
            if event.get("ph") != "X":
                continue
            args = dict(event.get("args", {}))
            span_id = int(args.pop("span_id", 0))
            parent_raw = args.pop("parent_id", None)
            trace_raw = args.pop("trace_id", None)
            records.append(
                SpanRecord(
                    name=event["name"],
                    category=event.get("cat", ""),
                    start=float(event["ts"]) / 1e6,
                    duration=float(event["dur"]) / 1e6,
                    span_id=span_id,
                    parent_id=None if parent_raw is None else int(parent_raw),
                    thread_id=int(event.get("tid", 0)),
                    trace_id=None if trace_raw is None else str(trace_raw),
                    args=args,
                )
            )
        return records


def span_payload(
    name: str,
    wall_start: float,
    duration: float,
    *,
    category: str = "repro",
    trace_id: str | None = None,
    **args,
) -> dict:
    """A wire-format span dict for :meth:`Tracer.adopt`.

    Built on the *remote* side of a process boundary (pool workers) from
    ``time.time()`` stamps — workers don't share the parent's monotonic
    epoch, so wall clock is the only usable cross-process timebase.
    """
    payload = {
        "name": name,
        "wall_start": float(wall_start),
        "duration": float(duration),
        "category": category,
        "pid": os.getpid(),
    }
    if trace_id is not None:
        payload["trace_id"] = trace_id
    if args:
        payload["args"] = args
    return payload


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _GLOBAL_TRACER
