"""Bregman clustering: K-means++ seeding, Lloyd iterations, G-means."""

from repro.clustering.kmeanspp import (
    KMeansResult,
    bregman_kmeans,
    kmeanspp_seeding,
)
from repro.clustering.gmeans import (
    GMeansResult,
    cluster_is_gaussian,
    gmeans,
    learn_branching_factor,
)

__all__ = [
    "KMeansResult",
    "bregman_kmeans",
    "kmeanspp_seeding",
    "GMeansResult",
    "cluster_is_gaussian",
    "gmeans",
    "learn_branching_factor",
]
