"""Bregman K-means++ and Lloyd iterations (Banerjee et al. 2005).

INFLEX uses Bregman K-means++ twice:

* over the Dirichlet samples, to select the ``h`` index-point centroids
  (Section 3.1 of the paper), and
* recursively at every bb-tree node, to partition a node's population
  into children (Section 3.2, following Nielsen et al.).

Hard Bregman clustering assigns each point ``x`` to the centroid ``c``
minimizing ``d_f(x, c)`` and recomputes each centroid as the arithmetic
mean of its cluster — which is *exactly* optimal for every Bregman
divergence (the right-centroid property), so Lloyd's argument carries
over unchanged and the objective decreases monotonically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.divergence.base import BregmanDivergence
from repro.rng import resolve_rng


@dataclass(frozen=True)
class KMeansResult:
    """Result of a Bregman K-means run.

    Attributes
    ----------
    centroids:
        Array of shape ``(k, d)``.
    labels:
        Cluster assignment per input point, shape ``(n,)``.
    inertia:
        Final clustering objective ``sum_i d_f(x_i, c_{label_i})``.
    iterations:
        Number of Lloyd iterations performed.
    converged:
        Whether assignments stabilized before the iteration budget.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    converged: bool

    @property
    def num_clusters(self) -> int:
        return int(self.centroids.shape[0])


def _divergence_to_centroids(
    points: np.ndarray, centroids: np.ndarray, divergence: BregmanDivergence
) -> np.ndarray:
    """Matrix ``D[i, j] = d_f(points[i], centroids[j])``."""
    columns = [
        divergence.divergence_to_point(points, centroid)
        for centroid in centroids
    ]
    return np.column_stack(columns)


def kmeanspp_seeding(
    points, k: int, divergence: BregmanDivergence, seed=None
) -> np.ndarray:
    """Select ``k`` initial centroid *indices* with D^2-style sampling.

    The classic K-means++ scheme of Arthur & Vassilvitskii, with the
    squared Euclidean distance replaced by the Bregman divergence
    ``d_f(x, c)`` (Banerjee et al. justify the same potential argument).
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = resolve_rng(seed)
    chosen = np.empty(k, dtype=np.int64)
    chosen[0] = rng.integers(n)
    closest = divergence.divergence_to_point(pts, pts[chosen[0]])
    for j in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with a chosen centroid; fill
            # the rest uniformly at random among unchosen indices.
            remaining = np.setdiff1d(
                np.arange(n), chosen[:j], assume_unique=False
            )
            fill = rng.choice(remaining, size=k - j, replace=False)
            chosen[j:] = fill
            return chosen
        probabilities = closest / total
        chosen[j] = rng.choice(n, p=probabilities)
        distance_new = divergence.divergence_to_point(pts, pts[chosen[j]])
        closest = np.minimum(closest, distance_new)
    return chosen


def bregman_kmeans(
    points,
    k: int,
    divergence: BregmanDivergence,
    *,
    seed=None,
    max_iter: int = 100,
    n_init: int = 1,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups under a Bregman divergence.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    k:
        Number of clusters, ``1 <= k <= n``.
    divergence:
        Any :class:`~repro.divergence.base.BregmanDivergence`.
    seed:
        Randomness control for seeding (and restarts).
    max_iter:
        Lloyd iteration budget per restart.
    n_init:
        Number of independent restarts; the lowest-inertia run wins.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError(f"points must be a non-empty 2-D array, got {pts.shape}")
    if n_init < 1:
        raise ValueError(f"n_init must be >= 1, got {n_init}")
    rng = resolve_rng(seed)
    best: KMeansResult | None = None
    for _ in range(n_init):
        result = _single_kmeans(pts, k, divergence, rng, max_iter)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def _single_kmeans(
    pts: np.ndarray,
    k: int,
    divergence: BregmanDivergence,
    rng: np.random.Generator,
    max_iter: int,
) -> KMeansResult:
    seed_idx = kmeanspp_seeding(pts, k, divergence, seed=rng)
    centroids = pts[seed_idx].copy()
    labels = np.full(pts.shape[0], -1, dtype=np.int64)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        distances = _divergence_to_centroids(pts, centroids, divergence)
        new_labels = np.argmin(distances, axis=1)
        if np.array_equal(new_labels, labels):
            converged = True
            break
        labels = new_labels
        for j in range(k):
            members = pts[labels == j]
            if members.shape[0] == 0:
                # Re-seed an empty cluster at the point farthest from its
                # current centroid — standard empty-cluster repair.
                worst = int(
                    np.argmax(distances[np.arange(pts.shape[0]), labels])
                )
                centroids[j] = pts[worst]
            else:
                centroids[j] = divergence.right_centroid(members)
    distances = _divergence_to_centroids(pts, centroids, divergence)
    labels = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(pts.shape[0]), labels].sum())
    return KMeansResult(
        centroids=centroids,
        labels=labels,
        inertia=inertia,
        iterations=iterations,
        converged=converged,
    )
