"""G-means: learning the number of clusters with a normality test.

Hamerly & Elkan's G-means grows the number of clusters by splitting any
cluster whose points, projected on the axis connecting the centroids of
a tentative 2-means split, fail an Anderson--Darling normality test.

Nielsen et al. (and this paper, Section 3.2) use the same procedure to
learn the *branching factor* at each bb-tree node: a node's population is
split into as many Gaussian-looking child clusters as the test demands,
which avoids overlapping child Bregman balls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeanspp import bregman_kmeans
from repro.divergence.base import BregmanDivergence
from repro.rng import resolve_rng
from repro.stats.anderson_darling import anderson_darling_test


@dataclass(frozen=True)
class GMeansResult:
    """Clusters discovered by G-means.

    Attributes
    ----------
    centroids:
        Shape ``(k, d)`` — learned number of clusters ``k``.
    labels:
        Assignment of each input point, shape ``(n,)``.
    """

    centroids: np.ndarray
    labels: np.ndarray

    @property
    def num_clusters(self) -> int:
        return int(self.centroids.shape[0])


def cluster_is_gaussian(
    points, divergence: BregmanDivergence, *, alpha: float, seed=None
) -> bool:
    """Anderson--Darling verdict on one cluster's population.

    Splits the cluster in two with Bregman 2-means, projects the points
    onto the axis connecting the two child centroids (the informative
    direction for a bimodal split) and tests normality.  Clusters too
    small or too degenerate to test are treated as Gaussian — they
    cannot justify further splitting.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.shape[0] < 8:
        return True
    split = bregman_kmeans(pts, 2, divergence, seed=seed, max_iter=30)
    direction = split.centroids[1] - split.centroids[0]
    norm = np.linalg.norm(direction)
    if norm == 0.0:
        return True
    projected = pts @ (direction / norm)
    if np.isclose(projected.std(), 0.0):
        return True
    try:
        result = anderson_darling_test(projected, alpha=alpha)
    except ValueError:
        return True
    return result.is_normal


def gmeans(
    points,
    divergence: BregmanDivergence,
    *,
    alpha: float = 0.0001,
    max_clusters: int = 16,
    min_cluster_size: int = 8,
    seed=None,
) -> GMeansResult:
    """Cluster ``points``, learning ``k`` by repeated normality testing.

    Parameters
    ----------
    points:
        Array ``(n, d)``.
    divergence:
        Bregman divergence driving the K-means sub-problems.
    alpha:
        Significance level of the Anderson--Darling test; the G-means
        paper's conservative ``1e-4`` is the default (splitting only on
        strong evidence keeps the tree shallow).
    max_clusters:
        Hard cap on the number of clusters returned.
    min_cluster_size:
        Clusters at or below this size are never split.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError(f"points must be non-empty 2-D, got shape {pts.shape}")
    rng = resolve_rng(seed)
    k = 1
    result = bregman_kmeans(pts, k, divergence, seed=rng)
    while k < max_clusters:
        split_any = False
        for j in range(result.num_clusters):
            members = pts[result.labels == j]
            if members.shape[0] <= min_cluster_size:
                continue
            if not cluster_is_gaussian(
                members, divergence, alpha=alpha, seed=rng
            ):
                split_any = True
        if not split_any:
            break
        k = min(k + 1, max_clusters)
        result = bregman_kmeans(pts, k, divergence, seed=rng)
        if k == max_clusters:
            break
    return GMeansResult(centroids=result.centroids, labels=result.labels)


def learn_branching_factor(
    points,
    divergence: BregmanDivergence,
    *,
    alpha: float = 0.0001,
    max_branch: int = 8,
    min_cluster_size: int = 8,
    seed=None,
) -> GMeansResult:
    """Pick how many children a bb-tree node should have.

    Identical to :func:`gmeans` but guaranteed to return at least two
    clusters (a node being split must produce children) whenever the
    population allows it.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.shape[0] < 2:
        raise ValueError("cannot branch a node with fewer than 2 points")
    rng = resolve_rng(seed)
    result = gmeans(
        pts,
        divergence,
        alpha=alpha,
        max_clusters=max_branch,
        min_cluster_size=min_cluster_size,
        seed=rng,
    )
    if result.num_clusters >= 2:
        return result
    forced = bregman_kmeans(pts, 2, divergence, seed=rng)
    return GMeansResult(centroids=forced.centroids, labels=forced.labels)
