"""Rank aggregation machinery: Kendall-tau, Borda, Copeland, Kemeny, MC4."""

from repro.ranking.kendall import (
    DEFAULT_PENALTY,
    kendall_tau_full,
    kendall_tau_top,
    mean_kendall_tau_top,
)
from repro.ranking.borda import borda_aggregation, borda_scores
from repro.ranking.copeland import (
    copeland_aggregation,
    copeland_scores,
    pairwise_preference_matrix,
)
from repro.ranking.kemeny import brute_force_kemeny, local_kemenization
from repro.ranking.mc4 import mc4_aggregation
from repro.ranking.rbo import overlap_at_k, rank_biased_overlap
from repro.ranking.weights import (
    DEFAULT_SELECTION_THRESHOLD,
    importance_weights,
    select_neighbors,
)

__all__ = [
    "DEFAULT_PENALTY",
    "kendall_tau_full",
    "kendall_tau_top",
    "mean_kendall_tau_top",
    "borda_aggregation",
    "borda_scores",
    "copeland_aggregation",
    "copeland_scores",
    "pairwise_preference_matrix",
    "brute_force_kemeny",
    "local_kemenization",
    "mc4_aggregation",
    "overlap_at_k",
    "rank_biased_overlap",
    "DEFAULT_SELECTION_THRESHOLD",
    "importance_weights",
    "select_neighbors",
]
