"""MC4: Markov-chain rank aggregation (Dwork et al., WWW 2001).

The paper notes that MC4 generalizes Copeland aggregation.  States are
the union of the ranked items; from state ``v`` a uniformly random
opponent ``v'`` is proposed and the chain moves there iff a (weighted)
majority of the input lists ranks ``v'`` ahead of ``v``.  Items are
ranked by descending stationary probability.  Included as the optional
third aggregator, useful for ablations against Borda/Copeland.
"""

from __future__ import annotations

import numpy as np

from repro.ranking.copeland import pairwise_preference_matrix


def mc4_aggregation(
    rankings,
    k: int | None = None,
    *,
    weights=None,
    damping: float = 0.05,
    max_iter: int = 200,
    tol: float = 1e-12,
) -> list[int]:
    """Aggregate ``rankings`` with the MC4 Markov chain.

    Parameters
    ----------
    rankings:
        Input top lists.
    k:
        Number of items to return (``None`` for the full order).
    weights:
        Optional importance weight per input list (majority votes are
        weighted, mirroring the weighted Copeland construction).
    damping:
        Teleportation mass guaranteeing ergodicity.
    max_iter / tol:
        Power-iteration controls for the stationary distribution.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    matrix, universe = pairwise_preference_matrix(rankings, weights=weights)
    u = len(universe)
    if u == 0:
        return []
    if u == 1:
        return universe[: k if k is not None else 1]
    # Transition: from v, propose v' uniformly among the other u-1
    # items; accept when the majority prefers v'.
    beats = (matrix.T > matrix).astype(np.float64)  # beats[v, v'] = v' wins
    transition = beats / (u - 1)
    stay = 1.0 - transition.sum(axis=1)
    transition[np.arange(u), np.arange(u)] += stay
    transition = (1.0 - damping) * transition + damping / u
    distribution = np.full(u, 1.0 / u)
    for _ in range(max_iter):
        updated = distribution @ transition
        if np.abs(updated - distribution).sum() < tol:
            distribution = updated
            break
        distribution = updated
    order = sorted(
        range(u), key=lambda i: (-distribution[i], universe[i])
    )
    ranked = [universe[i] for i in order]
    if k is None:
        return ranked
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return ranked[:k]
