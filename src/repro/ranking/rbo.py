"""Rank-biased overlap (RBO) — a top-weighted list similarity.

Webber, Moffat & Zobel (TOIS 2010).  Kendall-tau (the paper's metric)
weights all positions equally; RBO weights agreement at the top more,
which matches the economics of seed sets (the first seeds get the
budget).  Provided as a complementary diagnostic for seed-list
comparisons; the paper's tables remain Kendall-based.

For two (possibly truncated) rankings and persistence ``p``:

    RBO = (1 - p) * sum_{d=1..inf} p^{d-1} * |A_d ∩ B_d| / d

where ``A_d`` is the set of the first ``d`` items.  For truncated lists
the extrapolated point estimate ``RBO_ext`` carries the prefix overlap
forward (their Eq. 32).
"""

from __future__ import annotations

import numpy as np


def rank_biased_overlap(
    ranking_a,
    ranking_b,
    *,
    p: float = 0.9,
    extrapolate: bool = True,
) -> float:
    """RBO similarity in ``[0, 1]`` (1 = identical rankings).

    Parameters
    ----------
    ranking_a / ranking_b:
        Ranked sequences (e.g. :class:`~repro.im.seed_list.SeedList`).
    p:
        Persistence: the weight of depth ``d`` decays as ``p^{d-1}``.
        0.9 puts ~86% of the mass on the first 10 ranks.
    extrapolate:
        Return the extrapolated point estimate ``RBO_ext`` (default);
        otherwise the lower-bound partial sum ``RBO_min``-style value.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"persistence p must be in (0, 1), got {p}")
    a = [int(v) for v in ranking_a]
    b = [int(v) for v in ranking_b]
    if len(set(a)) != len(a) or len(set(b)) != len(b):
        raise ValueError("rankings must not contain duplicates")
    if not a or not b:
        raise ValueError("rankings must be non-empty")
    # Evaluate to the shorter prefix; extrapolation handles the rest.
    depth = min(len(a), len(b))
    seen_a: set[int] = set()
    seen_b: set[int] = set()
    overlap = 0
    partial = 0.0
    agreement_at_depth = 0.0
    for d in range(1, depth + 1):
        item_a = a[d - 1]
        item_b = b[d - 1]
        if item_a == item_b:
            overlap += 1
        else:
            if item_a in seen_b:
                overlap += 1
            if item_b in seen_a:
                overlap += 1
        seen_a.add(item_a)
        seen_b.add(item_b)
        agreement_at_depth = overlap / d
        partial += (p ** (d - 1)) * agreement_at_depth
    score = (1.0 - p) * partial
    if extrapolate:
        # Carry the depth-`depth` agreement through the infinite tail.
        score += agreement_at_depth * (p**depth)
    return float(np.clip(score, 0.0, 1.0))


def overlap_at_k(ranking_a, ranking_b, k: int) -> float:
    """Plain set overlap of the top-``k`` prefixes, in ``[0, 1]``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    top_a = set(int(v) for v in list(ranking_a)[:k])
    top_b = set(int(v) for v in list(ranking_b)[:k])
    denom = min(k, max(len(top_a), len(top_b)))
    if denom == 0:
        return 1.0
    return len(top_a & top_b) / denom
