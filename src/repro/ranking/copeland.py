"""Copeland rank aggregation (plain and importance-weighted).

Copeland is the majority-tournament method: node ``v`` scores one point
for every opponent ``v'`` that ``v`` beats in a (weighted) majority of
the input lists.  The weighted pairwise matrix follows Algorithm 2 of
the paper: each list contributes its importance weight to ``P[v, v']``
whenever it ranks ``v`` ahead of ``v'``; a node present in a list is
ranked ahead of every node absent from it (the implicit top-``ell``
semantics); lists containing neither node abstain.
"""

from __future__ import annotations

import numpy as np

from repro.ranking.borda import _prepare_lists, _prepare_weights


def pairwise_preference_matrix(
    rankings, *, weights=None
) -> tuple[np.ndarray, list[int]]:
    """Weighted pairwise-preference matrix over the union of the lists.

    Returns ``(P, universe)`` where ``universe`` is the sorted union and
    ``P[a, b]`` is the total weight of lists preferring
    ``universe[a]`` over ``universe[b]``.
    """
    lists = _prepare_lists(rankings)
    w = _prepare_weights(weights, len(lists))
    universe = sorted({node for ranking in lists for node in ranking})
    index = {node: i for i, node in enumerate(universe)}
    u = len(universe)
    matrix = np.zeros((u, u))
    sentinel = u + 1
    for weight, ranking in zip(w, lists):
        ranks = np.full(u, sentinel, dtype=np.float64)
        for position, node in enumerate(ranking):
            ranks[index[node]] = position
        present = ranks < sentinel
        # v preferred over v' when rank(v) < rank(v'), with absent nodes
        # at the sentinel; absent-vs-absent pairs tie and contribute
        # nothing.
        prefer = ranks[:, np.newaxis] < ranks[np.newaxis, :]
        prefer &= present[:, np.newaxis] | present[np.newaxis, :]
        matrix += weight * prefer
    return matrix, universe


def copeland_scores(rankings, *, weights=None) -> dict[int, float]:
    """(Weighted) Copeland score of every node in the union.

    Score of ``v``: number of opponents ``v'`` with
    ``P[v, v'] > P[v', v]``, plus half a point per exact pairwise tie
    (the standard Copeland 1/2 convention keeps scores stable under
    list reversal).
    """
    matrix, universe = pairwise_preference_matrix(rankings, weights=weights)
    wins = (matrix > matrix.T).sum(axis=1).astype(np.float64)
    ties = ((matrix == matrix.T).sum(axis=1) - 1).astype(np.float64)
    scores = wins + 0.5 * ties
    return {node: float(scores[i]) for i, node in enumerate(universe)}


def copeland_aggregation(
    rankings, k: int | None = None, *, weights=None
) -> list[int]:
    """Aggregate ``rankings`` by (weighted) Copeland; return the top ``k``.

    Ties break toward the lower node id.  ``k`` of ``None`` returns the
    full aggregated order over the union.
    """
    scores = copeland_scores(rankings, weights=weights)
    ordered = sorted(scores, key=lambda node: (-scores[node], node))
    if k is None:
        return ordered
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return ordered[:k]
