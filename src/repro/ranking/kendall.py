"""Kendall-tau distances: full rankings and Fagin's top-ell extension.

The paper measures seed-list similarity with the Kendall-tau distance.
Seed lists are *top-ell* rankings (only the best ``ell`` of ``|V|``
nodes appear), so Eq. 7 uses Fagin, Kumar & Sivakumar's extension
``K^(p)`` with four penalty cases and a neutral tie parameter
``p = 0.5``.  Both distances are normalized to ``[0, 1]`` by the
maximum possible number of (weighted) disagreements: ``n(n-1)/2`` for
full lists and ``l1*l2 + (C(l1,2) + C(l2,2)) p`` for top lists (which
reduces to the paper's ``ell^2 + ell(ell-1) p`` for equal lengths).
"""

from __future__ import annotations

import numpy as np

#: The paper's neutral penalty for case-4 pairs (both items missing from
#: one of the lists).
DEFAULT_PENALTY = 0.5


def _as_ranking(ranking) -> list[int]:
    """Normalize a ranking input (SeedList or iterable) to an id list."""
    nodes = [int(v) for v in ranking]
    if len(set(nodes)) != len(nodes):
        raise ValueError(f"ranking contains duplicates: {nodes}")
    return nodes


def kendall_tau_full(ranking_a, ranking_b, *, normalized: bool = True) -> float:
    """Kendall-tau distance between two *full* rankings (Eq. 6).

    Both rankings must be permutations of the same set of items.
    """
    a = _as_ranking(ranking_a)
    b = _as_ranking(ranking_b)
    if set(a) != set(b):
        raise ValueError("full rankings must cover the same items")
    n = len(a)
    if n < 2:
        return 0.0
    rank_b = {item: pos for pos, item in enumerate(b)}
    # Count inversions of b's ranks read in a's order.
    sequence = [rank_b[item] for item in a]
    inversions = _count_inversions(sequence)
    if not normalized:
        return float(inversions)
    return inversions / (n * (n - 1) / 2)


def _count_inversions(sequence: list[int]) -> int:
    """Merge-sort inversion count, O(n log n)."""

    def sort(values: list[int]) -> tuple[list[int], int]:
        if len(values) <= 1:
            return values, 0
        mid = len(values) // 2
        left, inv_left = sort(values[:mid])
        right, inv_right = sort(values[mid:])
        merged: list[int] = []
        inversions = inv_left + inv_right
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
                inversions += len(left) - i
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inversions

    _, count = sort(list(sequence))
    return count


def kendall_tau_top(
    ranking_a,
    ranking_b,
    *,
    p: float = DEFAULT_PENALTY,
    normalized: bool = True,
) -> float:
    """Fagin's ``K^(p)`` distance between two top lists (Eq. 7).

    Penalty cases over every unordered pair of the union:

    1. both items in both lists — 1 if ordered oppositely, else 0;
    2. both in one list, one of them in the other — 0 if the list
       containing both agrees with the implicit order of the other
       (present item ahead of absent), else 1;
    3. each item in exactly one (different) list — 1 (certain
       disagreement);
    4. both items in only one of the lists — the neutral penalty ``p``.

    Implementation: absent items get a sentinel rank one past the end of
    each list; signed rank-difference products then encode cases 1-3,
    and zero differences (both absent from the same list) mark case 4.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"penalty p must be in [0, 1], got {p}")
    a = _as_ranking(ranking_a)
    b = _as_ranking(ranking_b)
    union = sorted(set(a) | set(b))
    u = len(union)
    if u < 2:
        return 0.0
    sentinel_a = len(a)
    sentinel_b = len(b)
    pos_a = {item: pos for pos, item in enumerate(a)}
    pos_b = {item: pos for pos, item in enumerate(b)}
    ranks_a = np.array(
        [pos_a.get(item, sentinel_a) for item in union], dtype=np.float64
    )
    ranks_b = np.array(
        [pos_b.get(item, sentinel_b) for item in union], dtype=np.float64
    )
    diff_a = np.sign(ranks_a[:, np.newaxis] - ranks_a[np.newaxis, :])
    diff_b = np.sign(ranks_b[:, np.newaxis] - ranks_b[np.newaxis, :])
    opposite = (diff_a * diff_b) < 0
    tied = (diff_a == 0) | (diff_b == 0)
    penalty_matrix = opposite.astype(np.float64) + p * tied
    np.fill_diagonal(penalty_matrix, 0.0)
    total = penalty_matrix.sum() / 2.0  # each unordered pair counted twice
    if not normalized:
        return float(total)
    len_a, len_b = len(a), len(b)
    max_disagreements = (
        len_a * len_b
        + p * (len_a * (len_a - 1) / 2 + len_b * (len_b - 1) / 2)
    )
    if max_disagreements == 0:
        return 0.0
    return float(total / max_disagreements)


def mean_kendall_tau_top(
    candidate,
    rankings,
    *,
    p: float = DEFAULT_PENALTY,
    weights=None,
) -> float:
    """(Weighted) mean top-list distance of ``candidate`` to ``rankings``.

    This is the objective of the Kemeny optimal aggregation problem
    (Eq. 8); Local Kemenization greedily reduces it.
    """
    lists = list(rankings)
    if not lists:
        raise ValueError("need at least one ranking to compare against")
    if weights is None:
        weight_values = np.ones(len(lists))
    else:
        weight_values = np.asarray(weights, dtype=np.float64)
        if weight_values.shape[0] != len(lists):
            raise ValueError(
                f"{weight_values.shape[0]} weights for {len(lists)} rankings"
            )
        if np.any(weight_values < 0):
            raise ValueError("weights must be non-negative")
    total_weight = weight_values.sum()
    if total_weight <= 0:
        raise ValueError("weights must have a positive sum")
    distances = np.array(
        [kendall_tau_top(candidate, ranking, p=p) for ranking in lists]
    )
    return float((weight_values * distances).sum() / total_weight)
