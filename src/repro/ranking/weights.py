"""Importance weights and automatic neighbor selection (Section 4.2).

INFLEX weights each retrieved index list by its closeness to the query
item (Eq. 9) and then prunes lists whose contribution would be marginal
with a normalized-weight gap rule.
"""

from __future__ import annotations

import numpy as np

from repro.simplex.kl import kl_max_bound

#: The paper's gap threshold for the automatic selection of neighbors.
DEFAULT_SELECTION_THRESHOLD = 0.005

#: Smoothing used to compute the default empirical KL upper bound.  The
#: paper computes ``KL_max`` between two simplex corners with a
#: machine-epsilon floor; that yields ``KL_max ~ 36`` nats and makes
#: ``exp(KL_max)`` so large that every realistic divergence maps to a
#: weight indistinguishable from 1.  A floor of 0.05 keeps the same
#: construction (corner-to-corner bound, ``KL_max ~ 3`` nats) while
#: giving the weights the dynamic range the selection rule needs to
#: tell close neighbors from marginal ones; the bound is a parameter,
#: so the paper's literal choice remains available.
DEFAULT_BOUND_EPS = 0.05


def importance_weights(
    divergences,
    num_topics: int,
    *,
    kl_max: float | None = None,
    bound_eps: float = DEFAULT_BOUND_EPS,
) -> np.ndarray:
    """Map KL divergences to rank-aggregation weights in ``[0, 1]``.

    Implements the exponential transformation of Eq. 9,

        ``W(d) = (exp(KL_max) - exp(d)) / (exp(KL_max) - 1)``,

    which is 1 at ``d = 0`` and decays to 0 at ``d = KL_max``.  (The
    denominator printed in the paper, ``1 - exp(-KL_max)``, does not
    normalize the range to ``[0, 1]``; the form above is the evident
    intent.)  Divergences above the bound clamp to weight 0.

    Parameters
    ----------
    divergences:
        KL divergences of the index points from the query item.
    num_topics:
        Simplex dimensionality, used to compute the default bound.
    kl_max:
        Explicit upper bound; overrides the corner-to-corner default.
    bound_eps:
        Smoothing floor for the default corner-to-corner bound.
    """
    d = np.asarray(divergences, dtype=np.float64)
    if np.any(d < 0):
        raise ValueError(f"divergences must be non-negative, got min {d.min()}")
    if kl_max is None:
        kl_max = kl_max_bound(num_topics, eps=bound_eps)
    if kl_max <= 0:
        raise ValueError(f"kl_max must be positive, got {kl_max}")
    top = np.exp(kl_max)
    weights = (top - np.exp(np.minimum(d, kl_max))) / (top - 1.0)
    return np.clip(weights, 0.0, 1.0)


def select_neighbors(
    weights,
    *,
    threshold: float = DEFAULT_SELECTION_THRESHOLD,
    min_neighbors: int = 1,
) -> int:
    """Automatic selection: how many of the top-weighted lists to keep.

    The weights are scanned in non-increasing order.  If the first ``t``
    neighbors were equally close to the query, each normalized weight
    would be ``1/t``; the scan stops at the first ``t`` whose normalized
    weight falls short of the equal share by at least ``threshold`` —
    that neighbor (and everything after it) is "marginal" and dropped.
    Returns the number ``t`` of lists to keep (all of them when the gap
    never opens).

    Notes
    -----
    The paper states the stop condition as ``w~_t - 1/t >= 0.005``; since
    ``w~_t`` is the *smallest* normalized weight of the prefix it can
    never exceed ``1/t``, so the inequality is implemented with the
    evidently intended orientation ``1/t - w~_t >= threshold``.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError(f"weights must be a non-empty vector, got {w.shape}")
    if np.any(np.diff(w) > 1e-12):
        raise ValueError("weights must be sorted in non-increasing order")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    min_neighbors = max(1, int(min_neighbors))
    running_sum = 0.0
    for t in range(1, w.size + 1):
        running_sum += w[t - 1]
        if t <= min_neighbors or running_sum <= 0:
            continue
        normalized_t = w[t - 1] / running_sum
        if (1.0 / t) - normalized_t >= threshold:
            return t - 1
    return int(w.size)
