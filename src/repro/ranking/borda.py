"""Borda rank aggregation (plain and importance-weighted).

Borda is the positional method: in each input list, a node earns a
score decreasing in its rank; scores are summed across lists (each list
scaled by its importance weight), and the aggregation is the descending
score order.  For top-``ell`` lists the paper's weighted score of a node
present in list ``i`` at rank ``tau_i(v)`` (1-based) is
``w_i * (ell - tau_i(v) + 1)``; absent nodes contribute nothing to that
list's term.  Borda is a factor-5 approximation of the optimal Kemeny
aggregation (Coppersmith et al.).
"""

from __future__ import annotations

import numpy as np


def _prepare_lists(rankings) -> list[list[int]]:
    lists = [[int(v) for v in ranking] for ranking in rankings]
    if not lists:
        raise ValueError("need at least one ranking to aggregate")
    for ranking in lists:
        if len(set(ranking)) != len(ranking):
            raise ValueError(f"ranking contains duplicates: {ranking}")
    return lists


def _prepare_weights(weights, count: int) -> np.ndarray:
    if weights is None:
        return np.ones(count)
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (count,):
        raise ValueError(f"expected {count} weights, got shape {w.shape}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    if w.sum() <= 0:
        raise ValueError("weights must have a positive sum")
    return w


def borda_scores(rankings, *, weights=None, ell: int | None = None) -> dict[int, float]:
    """Weighted Borda scores for every node in the union of ``rankings``.

    ``ell`` is the nominal list length used in the positional formula;
    it defaults to the longest input list (all the paper's index lists
    share one length, the precomputed seed budget).
    """
    lists = _prepare_lists(rankings)
    w = _prepare_weights(weights, len(lists))
    if ell is None:
        ell = max(len(ranking) for ranking in lists)
    if ell < 1:
        raise ValueError(f"ell must be >= 1, got {ell}")
    scores: dict[int, float] = {}
    for weight, ranking in zip(w, lists):
        for position, node in enumerate(ranking):
            scores[node] = scores.get(node, 0.0) + weight * (ell - position)
    return scores


def borda_aggregation(
    rankings, k: int | None = None, *, weights=None, ell: int | None = None
) -> list[int]:
    """Aggregate ``rankings`` by (weighted) Borda; return the top ``k``.

    Ties break toward the lower node id for determinism.  ``k`` of
    ``None`` returns the full aggregated order over the union.
    """
    scores = borda_scores(rankings, weights=weights, ell=ell)
    ordered = sorted(scores, key=lambda node: (-scores[node], node))
    if k is None:
        return ordered
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return ordered[:k]
