"""Kemeny-optimal aggregation: local refinement and a brute-force oracle.

The Kemeny optimal aggregation (Eq. 8) — the ranking minimizing the mean
Kendall-tau distance to the inputs — is NP-hard for four or more lists,
so INFLEX post-processes the fast Borda/Copeland aggregations with
*Local Kemenization* (Dwork et al., WWW 2001): an insertion-sort pass
that bubbles each element up while a (weighted) majority of the input
lists prefers it over its predecessor.  The result is *locally* Kemeny
optimal: no single adjacent transposition can reduce the objective.

A tiny brute-force solver over all permutations of the union is
included as a test oracle.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.ranking.borda import _prepare_lists, _prepare_weights
from repro.ranking.kendall import mean_kendall_tau_top


def local_kemenization(
    initial, rankings, *, weights=None
) -> list[int]:
    """Bubble-up pass making ``initial`` locally Kemeny optimal.

    Starting from the bottom of ``initial``, each element is swapped
    upward while the (weighted) majority of ``rankings`` strictly
    prefers it over its current predecessor.  With unit weights this is
    exactly the procedure of Dwork et al.; with importance weights it
    refines the weighted Borda/Copeland aggregations as described in
    Section 4.2 of the paper.
    """
    ordering = [int(v) for v in initial]
    if len(set(ordering)) != len(ordering):
        raise ValueError(f"initial aggregation contains duplicates: {ordering}")
    lists = _prepare_lists(rankings)
    w = _prepare_weights(weights, len(lists))
    # Cache index positions per list for O(1) preference lookups.
    positions = [
        {node: pos for pos, node in enumerate(ranking)} for ranking in lists
    ]

    def prefers(first: int, second: int) -> float:
        total = 0.0
        for weight, pos in zip(w, positions):
            rank_first = pos.get(first)
            rank_second = pos.get(second)
            if rank_first is None and rank_second is None:
                continue
            if rank_second is None or (
                rank_first is not None and rank_first < rank_second
            ):
                total += weight
        return total

    for start in range(1, len(ordering)):
        i = start
        while i > 0:
            above = ordering[i - 1]
            below = ordering[i]
            if prefers(below, above) > prefers(above, below):
                ordering[i - 1], ordering[i] = below, above
                i -= 1
            else:
                break
    return ordering


def brute_force_kemeny(
    rankings, *, p: float = 0.5, weights=None, max_universe: int = 8
) -> list[int]:
    """Exact Kemeny-optimal aggregation by permutation enumeration.

    Only usable for unions of at most ``max_universe`` elements —
    intended as a ground-truth oracle in tests.  Ties between optimal
    permutations break lexicographically for determinism.
    """
    lists = _prepare_lists(rankings)
    universe = sorted({node for ranking in lists for node in ranking})
    if len(universe) > max_universe:
        raise ValueError(
            f"union of size {len(universe)} exceeds max_universe="
            f"{max_universe}; brute force would be intractable"
        )
    best_order: list[int] | None = None
    best_value = np.inf
    for candidate in permutations(universe):
        value = mean_kendall_tau_top(
            list(candidate), lists, p=p, weights=weights
        )
        if value < best_value - 1e-12:
            best_value = value
            best_order = list(candidate)
    assert best_order is not None
    return best_order
