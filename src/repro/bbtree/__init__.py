"""Bregman ball tree: similarity search under non-metric divergences."""

from repro.bbtree.tree import BBTree, BBTreeNode
from repro.bbtree.projection import ProjectionResult, can_prune, project_to_ball
from repro.bbtree.search import (
    SearchResult,
    SearchStats,
    exact_nearest_neighbors,
    inflex_search,
    leaf_limited_search,
    range_search,
    similar_enough,
)

__all__ = [
    "BBTree",
    "BBTreeNode",
    "ProjectionResult",
    "can_prune",
    "project_to_ball",
    "SearchResult",
    "SearchStats",
    "exact_nearest_neighbors",
    "inflex_search",
    "leaf_limited_search",
    "range_search",
    "similar_enough",
]
