"""Nearest-neighbor search procedures on the Bregman ball tree.

Three searches back the paper's query strategies:

* :func:`exact_nearest_neighbors` — branch-and-bound best-first search
  with Bregman-projection lower bounds; returns the true K nearest
  neighbors (the ``exactKNN`` baseline).
* :func:`leaf_limited_search` — Algorithm-1-style guided depth-first
  traversal that stops after a fixed number of leaves (``approxKNN``).
* :func:`inflex_search` — the paper's Algorithm 1: guided DFS with a
  priority queue, an epsilon-exact shortcut, Anderson--Darling
  early stopping, and Eq. 5 pruning via the Bregman projection
  (the search behind INFLEX and ``approxAD``).

Every search returns a :class:`SearchResult` carrying instrumentation
(leaves visited, divergence computations) used by the Figure 5
experiment and the paper's early-stopping statistics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.bbtree.projection import can_prune, project_to_ball
from repro.bbtree.tree import BBTree, BBTreeNode
from repro.obs import instruments as _obs
from repro.stats.anderson_darling import (
    anderson_darling_test,
    project_to_principal_axis,
)


@dataclass(frozen=True)
class SearchStats:
    """Instrumentation of one tree search.

    Attributes
    ----------
    leaves_visited:
        Number of leaf nodes whose populations were scanned.
    divergence_computations:
        Point-to-query divergence evaluations (leaf scans plus child
        center comparisons during descent).
    nodes_pruned:
        Subtrees skipped by the Eq. 5 projection bound.
    epsilon_match:
        Whether the search ended on an epsilon-exact match.
    stopped_early:
        Whether the Anderson--Darling criterion ended the search before
        the leaf budget was exhausted.
    """

    leaves_visited: int
    divergence_computations: int
    nodes_pruned: int
    epsilon_match: bool
    stopped_early: bool


@dataclass(frozen=True)
class SearchResult:
    """Neighbors found by a tree search, nearest first.

    ``indices`` address rows of the tree's point matrix; ``divergences``
    are the corresponding ``d_f(point, query)`` values.
    """

    indices: np.ndarray
    divergences: np.ndarray
    stats: SearchStats

    def __len__(self) -> int:
        return int(self.indices.size)

    def top(self, k: int) -> "SearchResult":
        """Restrict to the ``k`` nearest of the retrieved neighbors."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return SearchResult(
            self.indices[:k], self.divergences[:k], self.stats
        )


def _sorted_result(
    ids: list[int],
    divs: list[float],
    stats: SearchStats,
) -> SearchResult:
    indices = np.asarray(ids, dtype=np.int64)
    divergences = np.asarray(divs, dtype=np.float64)
    order = np.lexsort((indices, divergences))
    return SearchResult(indices[order], divergences[order], stats)


# ----------------------------------------------------------------------
# Exact branch-and-bound search
# ----------------------------------------------------------------------
def exact_nearest_neighbors(tree: BBTree, query, k: int) -> SearchResult:
    """True K nearest neighbors under ``d_f(point, query)``.

    Best-first branch and bound: nodes are expanded in order of the
    minimum divergence any of their ball's points could have to the
    query (computed by Bregman projection); a node is pruned when that
    bound cannot beat the current ``k``-th best.
    """
    if not 1 <= k <= tree.num_points:
        raise ValueError(f"k must be in [1, {tree.num_points}], got {k}")
    q = np.asarray(query, dtype=np.float64)
    divergence = tree.divergence
    counter = itertools.count()
    heap: list[tuple[float, int, BBTreeNode]] = [(0.0, next(counter), tree.root)]
    # Max-heap of the best k so far: (-divergence, point_id).
    best: list[tuple[float, int]] = []
    leaves = 0
    computations = 0
    pruned = 0
    while heap:
        bound, _, node = heapq.heappop(heap)
        if len(best) == k and bound >= -best[0][0]:
            pruned += 1
            continue
        if node.is_leaf:
            leaves += 1
            divs = divergence.divergence_to_point(
                tree.points[node.point_ids], q
            )
            computations += int(divs.size)
            for point_id, value in zip(node.point_ids, divs):
                entry = (-float(value), int(point_id))
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:
                    heapq.heapreplace(best, entry)
            continue
        threshold = -best[0][0] if len(best) == k else np.inf
        for child in node.children:
            if np.isfinite(threshold):
                projection = project_to_ball(
                    divergence, child.center, child.radius, q
                )
                # The bisection converges to the projection from above,
                # so shave a safety margin off before using it as a
                # branch-and-bound lower bound — otherwise a borderline
                # tie could prune a true neighbor.
                child_bound = max(
                    0.0,
                    projection.min_divergence
                    * (1.0 - 1e-6)
                    - 1e-12,
                )
                if child_bound >= threshold:
                    pruned += 1
                    continue
            else:
                child_bound = 0.0
            heapq.heappush(heap, (child_bound, next(counter), child))
    stats = SearchStats(
        leaves_visited=leaves,
        divergence_computations=computations,
        nodes_pruned=pruned,
        epsilon_match=False,
        stopped_early=False,
    )
    _obs.record_search("exact", stats)
    ranked = sorted(((-neg, pid) for neg, pid in best))
    return _sorted_result(
        [pid for _, pid in ranked], [d for d, _ in ranked], stats
    )


# ----------------------------------------------------------------------
# Range search
# ----------------------------------------------------------------------
def range_search(tree: BBTree, query, radius: float) -> SearchResult:
    """All points with ``d_f(point, query) <= radius`` (exact).

    The paper notes plain range search is the wrong primitive for
    INFLEX (the right number of neighbors depends on what is found),
    but it is the natural tree query for other similarity workloads, so
    the bb-tree supports it: subtrees are pruned whenever the Bregman
    projection of the query onto their ball exceeds the radius.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    q = np.asarray(query, dtype=np.float64)
    divergence = tree.divergence
    ids: list[int] = []
    divs: list[float] = []
    leaves = 0
    computations = 0
    pruned = 0
    stack = [tree.root]
    while stack:
        node = stack.pop()
        projection = project_to_ball(
            divergence, node.center, node.radius, q
        )
        # Small slack: the bisection returns a tight upper bound of the
        # true minimum, so pruning needs a safety margin to stay exact.
        if projection.min_divergence > radius + 1e-6 * (1.0 + radius):
            pruned += 1
            continue
        if node.is_leaf:
            leaves += 1
            leaf_divs = divergence.divergence_to_point(
                tree.points[node.point_ids], q
            )
            computations += int(leaf_divs.size)
            inside = leaf_divs <= radius
            ids.extend(int(v) for v in node.point_ids[inside])
            divs.extend(float(v) for v in leaf_divs[inside])
        else:
            stack.extend(node.children)
    stats = SearchStats(
        leaves_visited=leaves,
        divergence_computations=computations,
        nodes_pruned=pruned,
        epsilon_match=False,
        stopped_early=False,
    )
    _obs.record_search("range", stats)
    return _sorted_result(ids, divs, stats)


# ----------------------------------------------------------------------
# Shared guided traversal used by the approximate searches
# ----------------------------------------------------------------------
def _descend(
    tree: BBTree,
    node: BBTreeNode,
    q: np.ndarray,
    heap: list,
    counter,
) -> tuple[BBTreeNode, int]:
    """Walk from ``node`` to a leaf, following the child whose ball
    center is closest to the query and queueing the siblings.

    Returns the reached leaf and the number of divergence evaluations
    spent on center comparisons.
    """
    divergence = tree.divergence
    computations = 0
    while not node.is_leaf:
        centers = np.vstack([child.center for child in node.children])
        divs = divergence.divergence_to_point(centers, q)
        computations += int(divs.size)
        closest = int(np.argmin(divs))
        for i, child in enumerate(node.children):
            if i != closest:
                heapq.heappush(heap, (float(divs[i]), next(counter), child))
        node = node.children[closest]
    return node, computations


def leaf_limited_search(
    tree: BBTree, query, k: int, *, max_leaves: int = 5
) -> SearchResult:
    """Approximate K-NN: guided traversal visiting at most ``max_leaves``.

    The ``approxKNN`` baseline of the paper: the K nearest among the
    points of the visited leaves are returned; they need not be the true
    nearest neighbors.
    """
    if not 1 <= k <= tree.num_points:
        raise ValueError(f"k must be in [1, {tree.num_points}], got {k}")
    if max_leaves < 1:
        raise ValueError(f"max_leaves must be >= 1, got {max_leaves}")
    q = np.asarray(query, dtype=np.float64)
    divergence = tree.divergence
    counter = itertools.count()
    heap: list = [(0.0, next(counter), tree.root)]
    ids: list[int] = []
    divs: list[float] = []
    leaves = 0
    computations = 0
    while heap and leaves < max_leaves:
        _, _, node = heapq.heappop(heap)
        leaf, spent = _descend(tree, node, q, heap, counter)
        computations += spent
        leaves += 1
        leaf_divs = divergence.divergence_to_point(
            tree.points[leaf.point_ids], q
        )
        computations += int(leaf_divs.size)
        ids.extend(int(v) for v in leaf.point_ids)
        divs.extend(float(v) for v in leaf_divs)
    stats = SearchStats(
        leaves_visited=leaves,
        divergence_computations=computations,
        nodes_pruned=0,
        epsilon_match=False,
        stopped_early=False,
    )
    _obs.record_search("leaf-limited", stats)
    return _sorted_result(ids, divs, stats).top(k)


# ----------------------------------------------------------------------
# Algorithm 1: the INFLEX similarity search
# ----------------------------------------------------------------------
def similar_enough(points, query, *, alpha: float = 0.05) -> bool:
    """The paper's leaf-acceptance test.

    The query is pooled with the leaf population, the pooled points are
    projected onto one dimension (their first principal axis), and an
    Anderson--Darling normality test with unknown mean/variance is run.
    Accepting normality means the leaf population plausibly surrounds
    the query as one homogeneous cloud — good enough neighbors, stop
    searching.  Samples too small or too degenerate to test are treated
    as *not* similar enough (the search continues to the next leaf).
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    pooled = np.vstack([pts, np.asarray(query, dtype=np.float64)])
    if pooled.shape[0] < 8:
        return False
    projected = project_to_principal_axis(pooled)
    if np.isclose(projected.std(), 0.0):
        # A degenerate (constant) projection means all points coincide
        # with the query direction-wise — trivially similar.
        return True
    try:
        result = anderson_darling_test(projected, alpha=alpha)
    except ValueError:
        return False
    return result.is_normal


def inflex_search(
    tree: BBTree,
    query,
    *,
    epsilon: float = 1e-9,
    ad_alpha: float = 0.8,
    max_leaves: int = 5,
    use_ad_test: bool = True,
    use_pruning: bool = True,
) -> SearchResult:
    """Algorithm 1: the INFLEX approximate nearest-neighbor search.

    Traverses the bb-tree depth-first toward the child ball whose
    center is closest to the query, queueing siblings by center
    divergence.  At each leaf:

    1. a point within ``epsilon`` of the query ends the search
       immediately and alone (the epsilon-exact match);
    2. otherwise the leaf population joins the solution set, and the
       Anderson--Darling ``similar_enough`` test decides whether to
       stop;
    3. otherwise the next-best queued subtree is visited, unless the
       Eq. 5 projection bound proves it cannot contain a point closer
       than the current worst retrieved divergence.

    ``max_leaves`` bounds the traversal (the paper fixes it to 5).
    Setting ``use_ad_test=False`` recovers the pure leaf-budget
    behavior; ``use_pruning=False`` disables the projection bound.
    """
    if max_leaves < 1:
        raise ValueError(f"max_leaves must be >= 1, got {max_leaves}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    q = np.asarray(query, dtype=np.float64)
    divergence = tree.divergence
    counter = itertools.count()
    heap: list = [(0.0, next(counter), tree.root)]
    ids: list[int] = []
    divs: list[float] = []
    leaves = 0
    computations = 0
    pruned = 0
    epsilon_match = False
    stopped_early = False
    while heap and leaves < max_leaves:
        priority, _, node = heapq.heappop(heap)
        if use_pruning and divs:
            delta = max(divs)
            if priority > 0 and can_prune(
                divergence, node.center, node.radius, q, delta
            ):
                pruned += 1
                continue
        leaf, spent = _descend(tree, node, q, heap, counter)
        computations += spent
        leaves += 1
        leaf_divs = divergence.divergence_to_point(
            tree.points[leaf.point_ids], q
        )
        computations += int(leaf_divs.size)
        nearest_in_leaf = int(np.argmin(leaf_divs))
        if leaf_divs[nearest_in_leaf] <= epsilon:
            match_id = int(leaf.point_ids[nearest_in_leaf])
            stats = SearchStats(
                leaves_visited=leaves,
                divergence_computations=computations,
                nodes_pruned=pruned,
                epsilon_match=True,
                stopped_early=True,
            )
            _obs.record_search("inflex", stats)
            return SearchResult(
                np.asarray([match_id], dtype=np.int64),
                np.asarray(
                    [float(leaf_divs[nearest_in_leaf])], dtype=np.float64
                ),
                stats,
            )
        ids.extend(int(v) for v in leaf.point_ids)
        divs.extend(float(v) for v in leaf_divs)
        if use_ad_test and similar_enough(
            tree.points[leaf.point_ids], q, alpha=ad_alpha
        ):
            stopped_early = True
            break
    stats = SearchStats(
        leaves_visited=leaves,
        divergence_computations=computations,
        nodes_pruned=pruned,
        epsilon_match=epsilon_match,
        stopped_early=stopped_early,
    )
    _obs.record_search("inflex", stats)
    return _sorted_result(ids, divs, stats)
