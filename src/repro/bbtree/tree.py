"""Bregman ball tree construction (Section 3.2 of the paper).

Following Nielsen, Piro & Barlaud (EuroCG 2009), the tree is built
top-down by recursively partitioning the index points with Bregman
K-means++.  The branching factor at each node is *learned* by Gaussian
clustering (G-means with the Anderson--Darling test), which splits a
node into as many Gaussian-looking child clusters as the data demands
and thereby avoids heavily overlapping child balls.  Each node stores a
Bregman ball ``B(mu, R)`` covering all points of its subtree, with
``mu`` the (right) Bregman centroid and ``R = max_i d_f(x_i, mu)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.gmeans import learn_branching_factor
from repro.clustering.kmeanspp import bregman_kmeans
from repro.divergence.base import BregmanDivergence
from repro.divergence.kl import KLDivergence
from repro.rng import resolve_rng


@dataclass
class BBTreeNode:
    """One node of the bb-tree.

    Attributes
    ----------
    center / radius:
        The covering Bregman ball ``B(center, radius)``.
    point_ids:
        Indices (into the tree's point matrix) stored at this node;
        non-empty only for leaves.
    children:
        Child nodes; empty for leaves.
    """

    center: np.ndarray
    radius: float
    point_ids: np.ndarray
    children: list["BBTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def size(self) -> int:
        """Number of points in the subtree rooted here."""
        if self.is_leaf:
            return int(self.point_ids.size)
        return sum(child.size for child in self.children)


class BBTree:
    """Bregman ball tree over a fixed set of points.

    Parameters
    ----------
    points:
        ``(n, d)`` matrix of points to index (topic distributions in the
        INFLEX use case).
    divergence:
        The Bregman divergence; KL by default, as in the paper.
    leaf_size:
        Maximum number of points per leaf.
    max_branch:
        Cap on the learned branching factor.
    branching:
        ``"gmeans"`` (paper: learn the branching factor with the
        Anderson--Darling test) or an integer for a fixed fan-out.
    ad_alpha:
        Significance level of the G-means normality test.
    seed:
        Randomness for the clustering subroutines.
    """

    def __init__(
        self,
        points,
        *,
        divergence: BregmanDivergence | None = None,
        leaf_size: int = 16,
        max_branch: int = 8,
        branching="gmeans",
        ad_alpha: float = 0.0001,
        seed=None,
    ) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError(
                f"points must be a non-empty 2-D array, got shape {pts.shape}"
            )
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if max_branch < 2:
            raise ValueError(f"max_branch must be >= 2, got {max_branch}")
        if isinstance(branching, int) and branching < 2:
            raise ValueError(
                f"fixed branching factor must be >= 2, got {branching}"
            )
        self._points = pts
        self._divergence = divergence if divergence is not None else KLDivergence()
        self._leaf_size = int(leaf_size)
        self._max_branch = int(max_branch)
        self._branching = branching
        self._ad_alpha = float(ad_alpha)
        self._rng = resolve_rng(seed)
        self._root = self._build(np.arange(pts.shape[0], dtype=np.int64))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> BBTreeNode:
        return self._root

    @property
    def points(self) -> np.ndarray:
        """The indexed point matrix (rows addressed by ``point_ids``)."""
        return self._points

    @property
    def divergence(self) -> BregmanDivergence:
        return self._divergence

    @property
    def num_points(self) -> int:
        return int(self._points.shape[0])

    def num_leaves(self) -> int:
        """Total number of leaf nodes."""

        def count(node: BBTreeNode) -> int:
            if node.is_leaf:
                return 1
            return sum(count(child) for child in node.children)

        return count(self._root)

    def depth(self) -> int:
        """Longest root-to-leaf path length (root alone = 1)."""

        def walk(node: BBTreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(walk(child) for child in node.children)

        return walk(self._root)

    def leaves(self) -> list[BBTreeNode]:
        """All leaf nodes, left-to-right."""
        out: list[BBTreeNode] = []

        def walk(node: BBTreeNode) -> None:
            if node.is_leaf:
                out.append(node)
            else:
                for child in node.children:
                    walk(child)

        walk(self._root)
        return out

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _make_ball(self, ids: np.ndarray) -> tuple[np.ndarray, float]:
        members = self._points[ids]
        center = self._divergence.right_centroid(members)
        radius = float(
            self._divergence.divergence_to_point(members, center).max()
        )
        return center, radius

    def _branch_count(self, ids: np.ndarray) -> np.ndarray:
        """Cluster labels partitioning ``ids`` into children."""
        members = self._points[ids]
        if isinstance(self._branching, int):
            k = min(self._branching, ids.size)
            result = bregman_kmeans(
                members, k, self._divergence, seed=self._rng
            )
            return result.labels
        result = learn_branching_factor(
            members,
            self._divergence,
            alpha=self._ad_alpha,
            max_branch=min(self._max_branch, ids.size),
            seed=self._rng,
        )
        return result.labels

    def _build(self, ids: np.ndarray) -> BBTreeNode:
        center, radius = self._make_ball(ids)
        if ids.size <= self._leaf_size:
            return BBTreeNode(center, radius, ids)
        labels = self._branch_count(ids)
        unique = np.unique(labels)
        if unique.size < 2:
            # Clustering failed to split (e.g. duplicated points):
            # terminate as an oversized leaf rather than recurse forever.
            return BBTreeNode(center, radius, ids)
        children = []
        for label in unique:
            child_ids = ids[labels == label]
            children.append(self._build(child_ids))
        return BBTreeNode(center, radius, np.empty(0, dtype=np.int64), children)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BBTree(num_points={self.num_points}, "
            f"leaves={self.num_leaves()}, depth={self.depth()}, "
            f"divergence={self._divergence.name})"
        )
