"""Bregman projection onto a Bregman ball (Cayton's bisection).

Search-time pruning (Eq. 5 of the paper) needs the minimum divergence
from any point of a ball ``B(mu, R) = {x : d_f(x, mu) <= R}`` to the
query ``q``:

    ``min_{x in B} d_f(x, q)``.

Cayton (ICML 2008) showed the minimizer lies on the *dual geodesic*
between the query and the ball center,

    ``x_lambda = grad_f_inverse((1 - lambda) grad_f(q) + lambda grad_f(mu))``,

along which ``d_f(x_lambda, mu)`` decreases and ``d_f(x_lambda, q)``
increases monotonically in ``lambda``.  Bisection on
``d_f(x_lambda, mu) = R`` finds the boundary projection; primal/dual
evaluations on the current bracket give upper and lower bounds that let
a *pruning decision* stop long before full convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.divergence.base import BregmanDivergence


@dataclass(frozen=True)
class ProjectionResult:
    """Outcome of projecting a query onto a Bregman ball.

    Attributes
    ----------
    min_divergence:
        (Approximate) minimum of ``d_f(x, q)`` over the ball.
    iterations:
        Bisection iterations performed.
    inside:
        ``True`` when the query itself lies inside the ball (the
        minimum is 0 and no bisection is needed).
    """

    min_divergence: float
    iterations: int
    inside: bool


def project_to_ball(
    divergence: BregmanDivergence,
    center: np.ndarray,
    radius: float,
    query: np.ndarray,
    *,
    tol: float = 1e-6,
    max_iter: int = 64,
) -> ProjectionResult:
    """Minimum divergence ``min_{x in B(center, radius)} d_f(x, query)``.

    Runs the bisection to ``tol`` on the radius equation.  The returned
    value is evaluated at the final *inside* iterate, so it is a valid
    upper bound of the true minimum that converges to it.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if divergence.divergence(query, center) <= radius:
        return ProjectionResult(0.0, 0, True)
    theta_query = divergence.gradient(
        divergence._prepare(np.asarray(query, dtype=np.float64))[np.newaxis, :]
    )[0]
    theta_center = divergence.gradient(
        divergence._prepare(np.asarray(center, dtype=np.float64))[np.newaxis, :]
    )[0]

    def point_at(lam: float) -> np.ndarray:
        theta = (1.0 - lam) * theta_query + lam * theta_center
        return divergence.gradient_inverse(theta[np.newaxis, :])[0]

    low, high = 0.0, 1.0  # x_low outside the ball, x_high inside
    iterations = 0
    best_inside_point = np.asarray(center, dtype=np.float64)
    for iterations in range(1, max_iter + 1):
        mid = 0.5 * (low + high)
        candidate = point_at(mid)
        to_center = divergence.divergence(candidate, center)
        if to_center <= radius:
            high = mid
            best_inside_point = candidate
        else:
            low = mid
        if high - low < tol:
            break
    return ProjectionResult(
        min_divergence=float(
            divergence.divergence(best_inside_point, query)
        ),
        iterations=iterations,
        inside=False,
    )


def can_prune(
    divergence: BregmanDivergence,
    center: np.ndarray,
    radius: float,
    query: np.ndarray,
    threshold: float,
    *,
    tol: float = 1e-4,
    max_iter: int = 32,
) -> bool:
    """Decide Eq. 5: is ``min_{x in B} d_f(x, q) >= threshold``?

    Early-exit variant of :func:`project_to_ball` for the search loop:

    * if any inside iterate is already closer than ``threshold`` the
      ball *might* contain an improving point — answer ``False``
      immediately (the upper bound dropped below the threshold);
    * if the bracket converges with the boundary divergence at or above
      ``threshold``, the subtree is safely prunable.
    """
    if threshold <= 0:
        return False
    if divergence.divergence(query, center) <= radius:
        return False
    theta_query = divergence.gradient(
        divergence._prepare(np.asarray(query, dtype=np.float64))[np.newaxis, :]
    )[0]
    theta_center = divergence.gradient(
        divergence._prepare(np.asarray(center, dtype=np.float64))[np.newaxis, :]
    )[0]

    def point_at(lam: float) -> np.ndarray:
        theta = (1.0 - lam) * theta_query + lam * theta_center
        return divergence.gradient_inverse(theta[np.newaxis, :])[0]

    # The center itself is the innermost candidate: if even the center
    # is closer than the threshold, no pruning.
    if divergence.divergence(center, query) < threshold:
        return False
    low, high = 0.0, 1.0
    for _ in range(max_iter):
        mid = 0.5 * (low + high)
        candidate = point_at(mid)
        if divergence.divergence(candidate, center) <= radius:
            high = mid
            # Inside the ball: its divergence to q upper-bounds the min.
            if divergence.divergence(candidate, query) < threshold:
                return False
        else:
            low = mid
        if high - low < tol:
            break
    boundary = point_at(high)
    return bool(divergence.divergence(boundary, query) >= threshold)
