"""EM learning of TIC parameters from a propagation log.

Re-implementation of the learning procedure of Barbieri, Bonchi & Manco
("Topic-aware social influence propagation models", ICDM 2012) that the
paper uses as its preprocessing step (Figure 1): given the social graph
and a log of past propagations, jointly estimate

* ``p^z_{u,v}`` — per-topic influence probability for every arc, and
* ``gamma_i`` — the topic distribution of every item in the log.

Latent-variable formulation.  Under TIC, an exposure of ``v`` to an
active in-neighbor ``u`` on item ``i`` succeeds with the blended
probability ``p^i_{u,v} = sum_z gamma_i^z p^z_{u,v}`` — equivalently,
each *attempt* first draws a latent topic ``t ~ gamma_i`` and then
succeeds with probability ``p^t_{u,v}``.  EM therefore carries two
latent quantities per exposure:

* whether the attempt succeeded (only partially observed: an activation
  of ``v`` means *at least one* of its active parents succeeded), with
  the classic Saito credit ``q = p^i_{u,v} / (1 - prod_w (1 - p^i_{w,v}))``
  as the success posterior;
* the attempt's topic, with posterior ``gamma_z p^z / p^i`` given
  success and ``gamma_z (1 - p^z) / (1 - p^i)`` given failure.

M-step: ``p^z_{u,v}`` is expected topic-``z`` successes over expected
topic-``z`` attempts; ``gamma_i`` is the expected topic histogram of the
item's attempts (with a small Dirichlet smoothing).  Both likelihood
terms are used: activations (success complements) and exposed-but-
never-activated nodes (failure products).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.learning.propagation_log import PropagationLog
from repro.rng import resolve_rng

#: Probability clamp keeping the likelihood finite and credits sane.
_P_MIN = 1e-9
_P_MAX = 1.0 - 1e-9


@dataclass(frozen=True)
class _ItemTrials:
    """Precomputed influence trials of one item.

    ``positive_arcs`` are arcs ``(u, v)`` where ``u`` was active before
    ``v`` activated (``u`` is a candidate parent); they are sorted by
    target so that per-target products reduce with ``np.add.reduceat``
    over ``group_starts``.  ``negative_arcs`` are arcs whose tail was
    active while the head never activated.
    """

    positive_arcs: np.ndarray
    group_starts: np.ndarray
    group_sizes: np.ndarray
    negative_arcs: np.ndarray

    @property
    def num_exposures(self) -> int:
        return int(self.positive_arcs.size + self.negative_arcs.size)


@dataclass(frozen=True)
class TICLearningResult:
    """Learned TIC parameters.

    Attributes
    ----------
    probabilities:
        ``(num_arcs, Z)`` learned per-topic arc probabilities, aligned
        with the CSR arc order of the input graph.
    item_topics:
        ``(num_items, Z)`` learned item topic distributions.
    log_likelihood:
        Final training log-likelihood (observed data).
    history:
        Log-likelihood after every EM iteration.
    converged:
        Whether the likelihood improvement fell below tolerance within
        the iteration budget.
    """

    probabilities: np.ndarray
    item_topics: np.ndarray
    log_likelihood: float
    history: tuple[float, ...]
    converged: bool

    def to_graph(self, graph: TopicGraph) -> TopicGraph:
        """Rebuild a :class:`TopicGraph` carrying the learned parameters."""
        return TopicGraph(
            graph.num_nodes, graph.indptr, graph.indices, self.probabilities
        )


class TICLearner:
    """Expectation-Maximization learner for the TIC model.

    Parameters
    ----------
    graph:
        Social graph whose *structure* (arcs) is used; its stored
        probabilities are ignored.
    num_topics:
        Number of latent topics ``Z`` to learn.
    max_iter:
        EM iteration budget.
    tol:
        Relative convergence threshold on log-likelihood improvement.
    smoothing:
        Dirichlet smoothing for item-topic updates (keeps every
        ``gamma_i`` strictly positive).
    prior_strength / prior_mean:
        Beta-prior regularization of the arc-probability M-step: each
        ``p^z_{u,v}`` behaves as if it had seen ``prior_strength`` extra
        exposures of which a ``prior_mean`` fraction succeeded.  Arcs
        with few real exposures shrink toward ``prior_mean`` instead of
        saturating at 0 or 1 (MAP instead of ML — essential on sparse
        logs).
    time_window:
        Maximum delay ``t_v - t_u`` for ``u`` to count as a candidate
        parent of ``v``'s activation.  ``None`` (default) accepts any
        positive delay — correct for synthetic wave-indexed cascades.
        Real rating logs carry wall-clock timestamps where an influence
        episode only makes sense within a bounded window (the paper's
        Flixster preprocessing makes the same assumption implicitly).
    seed:
        Randomness for parameter initialization.
    """

    def __init__(
        self,
        graph: TopicGraph,
        num_topics: int,
        *,
        max_iter: int = 50,
        tol: float = 1e-5,
        smoothing: float = 0.05,
        prior_strength: float = 1.0,
        prior_mean: float = 0.05,
        time_window: int | None = None,
        seed=None,
    ) -> None:
        if num_topics < 1:
            raise ValueError(f"num_topics must be >= 1, got {num_topics}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {smoothing}")
        if prior_strength < 0:
            raise ValueError(
                f"prior_strength must be >= 0, got {prior_strength}"
            )
        if not 0.0 < prior_mean < 1.0:
            raise ValueError(
                f"prior_mean must be in (0, 1), got {prior_mean}"
            )
        if time_window is not None and time_window < 1:
            raise ValueError(
                f"time_window must be >= 1 or None, got {time_window}"
            )
        self._time_window = time_window
        self._prior_strength = float(prior_strength)
        self._prior_mean = float(prior_mean)
        self._graph = graph
        self._num_topics = int(num_topics)
        self._max_iter = int(max_iter)
        self._tol = float(tol)
        self._smoothing = float(smoothing)
        self._rng = resolve_rng(seed)
        self._tails = np.repeat(
            np.arange(graph.num_nodes, dtype=np.int64), np.diff(graph.indptr)
        )

    # ------------------------------------------------------------------
    # Trial extraction
    # ------------------------------------------------------------------
    def _extract_trials(self, log: PropagationLog) -> list[_ItemTrials]:
        graph = self._graph
        trials = []
        for trace in log:
            times = trace.activation_times(graph.num_nodes)
            tail_time = times[self._tails]
            head_time = times[graph.indices]
            tail_active = tail_time >= 0
            positive = tail_active & (head_time >= 0) & (head_time > tail_time)
            if self._time_window is not None:
                positive &= (head_time - tail_time) <= self._time_window
            negative = tail_active & (head_time < 0)
            pos_ids = np.flatnonzero(positive)
            # Sort positives by target node so per-target groups are
            # contiguous for reduceat.
            order = np.argsort(graph.indices[pos_ids], kind="stable")
            pos_ids = pos_ids[order]
            targets = graph.indices[pos_ids]
            if pos_ids.size:
                boundaries = np.flatnonzero(np.diff(targets)) + 1
                starts = np.concatenate(([0], boundaries))
                sizes = np.diff(np.concatenate((starts, [pos_ids.size])))
            else:
                starts = np.empty(0, dtype=np.int64)
                sizes = np.empty(0, dtype=np.int64)
            trials.append(
                _ItemTrials(
                    positive_arcs=pos_ids,
                    group_starts=starts.astype(np.int64),
                    group_sizes=sizes.astype(np.int64),
                    negative_arcs=np.flatnonzero(negative),
                )
            )
        return trials

    # ------------------------------------------------------------------
    # One item's E-step contributions
    # ------------------------------------------------------------------
    @staticmethod
    def _item_estep(
        item: _ItemTrials,
        probabilities: np.ndarray,
        gamma: np.ndarray,
    ) -> tuple[float, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Expectations for one item under current parameters.

        Returns ``(log_likelihood, pos_success, pos_attempts,
        neg_attempts, topic_histogram, arcs_order)`` where the arrays are
        per-exposure topic-weight matrices aligned with the item's
        positive/negative arc id lists.
        """
        z = probabilities.shape[1]
        ll = 0.0
        topic_hist = np.zeros(z)
        if item.negative_arcs.size:
            p_z_neg = np.clip(
                probabilities[item.negative_arcs], _P_MIN, _P_MAX
            )
            p_i_neg = np.clip(p_z_neg @ gamma, _P_MIN, _P_MAX)
            ll += float(np.log1p(-p_i_neg).sum())
            # Topic posterior of a failed attempt.
            neg_attempts = (
                gamma[np.newaxis, :] * (1.0 - p_z_neg)
                / (1.0 - p_i_neg)[:, np.newaxis]
            )
            topic_hist += neg_attempts.sum(axis=0)
        else:
            neg_attempts = np.zeros((0, z))
        if item.positive_arcs.size:
            p_z_pos = np.clip(
                probabilities[item.positive_arcs], _P_MIN, _P_MAX
            )
            p_i_pos = np.clip(p_z_pos @ gamma, _P_MIN, _P_MAX)
            log_fail = np.log1p(-p_i_pos)
            group_log_fail = np.add.reduceat(log_fail, item.group_starts)
            p_v = np.clip(-np.expm1(group_log_fail), _P_MIN, 1.0)
            ll += float(np.log(p_v).sum())
            q = p_i_pos / np.repeat(p_v, item.group_sizes)
            q = np.minimum(q, 1.0)
            eta = gamma[np.newaxis, :] * p_z_pos / p_i_pos[:, np.newaxis]
            zeta = (
                gamma[np.newaxis, :] * (1.0 - p_z_pos)
                / (1.0 - p_i_pos)[:, np.newaxis]
            )
            pos_success = q[:, np.newaxis] * eta
            pos_attempts = pos_success + (1.0 - q)[:, np.newaxis] * zeta
            topic_hist += pos_attempts.sum(axis=0)
        else:
            pos_success = np.zeros((0, z))
            pos_attempts = np.zeros((0, z))
        return ll, pos_success, pos_attempts, neg_attempts, topic_hist

    def fit(
        self,
        log: PropagationLog,
        *,
        init_probabilities=None,
        init_item_topics=None,
    ) -> TICLearningResult:
        """Run EM on ``log`` and return the learned parameters.

        ``init_probabilities`` / ``init_item_topics`` override the random
        initialization — useful for warm starts and for validating the
        updates against known ground truth.  Passing the string
        ``"trace-clustering"`` as ``init_item_topics`` seeds the item
        mixtures by K-means clustering of the activation footprints,
        which substantially reduces the risk of poor EM local optima on
        topic-localized propagation data.
        """
        if log.num_nodes != self._graph.num_nodes:
            raise ValueError(
                f"log has {log.num_nodes} nodes, graph has "
                f"{self._graph.num_nodes}"
            )
        if log.num_items == 0:
            raise ValueError("propagation log contains no items")
        graph = self._graph
        z = self._num_topics
        trials = self._extract_trials(log)

        if isinstance(init_item_topics, str):
            if init_item_topics != "trace-clustering":
                raise ValueError(
                    f"unknown init strategy {init_item_topics!r}; the only "
                    "string form accepted is 'trace-clustering'"
                )
            init_item_topics = self._trace_clustering_init(log)

        # Initialization: small random arc probabilities (independent
        # per topic so EM can break symmetry), near-uniform mixtures.
        if init_probabilities is None:
            probabilities = self._rng.uniform(
                0.02, 0.20, size=(graph.num_arcs, z)
            )
        else:
            probabilities = np.array(init_probabilities, dtype=np.float64)
            if probabilities.shape != (graph.num_arcs, z):
                raise ValueError(
                    f"init_probabilities must be {(graph.num_arcs, z)}, "
                    f"got {probabilities.shape}"
                )
        if init_item_topics is None:
            item_topics = self._rng.dirichlet(
                np.full(z, 10.0), size=log.num_items
            )
        else:
            item_topics = np.array(init_item_topics, dtype=np.float64)
            if item_topics.shape != (log.num_items, z):
                raise ValueError(
                    f"init_item_topics must be {(log.num_items, z)}, "
                    f"got {item_topics.shape}"
                )

        history: list[float] = []
        converged = False
        for _ in range(self._max_iter):
            numerator = np.zeros((graph.num_arcs, z))
            denominator = np.zeros((graph.num_arcs, z))
            new_item_topics = np.empty_like(item_topics)
            total_ll = 0.0
            for i, item in enumerate(trials):
                ll, pos_success, pos_attempts, neg_attempts, hist = (
                    self._item_estep(item, probabilities, item_topics[i])
                )
                total_ll += ll
                if item.positive_arcs.size:
                    numerator[item.positive_arcs] += pos_success
                    denominator[item.positive_arcs] += pos_attempts
                if item.negative_arcs.size:
                    denominator[item.negative_arcs] += neg_attempts
                smoothed = hist + self._smoothing
                new_item_topics[i] = smoothed / smoothed.sum()
            history.append(total_ll)
            informative = denominator > 1e-12
            map_numerator = numerator + self._prior_strength * self._prior_mean
            map_denominator = denominator + self._prior_strength
            probabilities = np.where(
                informative,
                map_numerator / np.maximum(map_denominator, 1e-12),
                probabilities,
            )
            probabilities = np.clip(probabilities, 0.0, 1.0)
            item_topics = new_item_topics
            if (
                len(history) >= 2
                and abs(history[-1] - history[-2])
                < self._tol * (abs(history[-2]) + 1.0)
            ):
                converged = True
                break
        return TICLearningResult(
            probabilities=probabilities,
            item_topics=item_topics,
            log_likelihood=history[-1],
            history=tuple(history),
            converged=converged,
        )

    def _trace_clustering_init(self, log: PropagationLog) -> np.ndarray:
        """Item-mixture initialization from activation footprints.

        Items whose cascades touched similar node sets probably share a
        topic: cluster the L2-normalized activation indicator vectors
        into ``Z`` groups and bias each item's initial mixture toward
        its cluster's topic.
        """
        from repro.clustering.kmeanspp import bregman_kmeans
        from repro.divergence.euclidean import SquaredEuclidean

        z = self._num_topics
        footprints = np.zeros((log.num_items, self._graph.num_nodes))
        for i, trace in enumerate(log):
            if trace.nodes.size:
                footprints[i, trace.nodes] = 1.0 / np.sqrt(trace.nodes.size)
        k = min(z, log.num_items)
        result = bregman_kmeans(
            footprints, k, SquaredEuclidean(), seed=self._rng, max_iter=30
        )
        init = np.full((log.num_items, z), 0.3 / max(z - 1, 1))
        init[np.arange(log.num_items), result.labels % z] = 0.7
        return init / init.sum(axis=1, keepdims=True)

    def log_likelihood(
        self,
        log: PropagationLog,
        probabilities: np.ndarray,
        item_topics: np.ndarray,
    ) -> float:
        """Observed-data log-likelihood of ``log`` under given parameters.

        Useful for held-out evaluation and for verifying that EM never
        decreases the objective.
        """
        trials = self._extract_trials(log)
        if len(trials) != item_topics.shape[0]:
            raise ValueError(
                f"{len(trials)} traces vs {item_topics.shape[0]} item rows"
            )
        total = 0.0
        for i, item in enumerate(trials):
            ll, *_ = self._item_estep(item, probabilities, item_topics[i])
            total += ll
        return total

    def refit_with_new_items(
        self,
        result: TICLearningResult,
        old_log: PropagationLog,
        new_log: PropagationLog,
        *,
        max_iter: int | None = None,
    ) -> TICLearningResult:
        """Warm-started EM over the old log extended with new traces.

        The online-platform update path: fresh propagation traces
        arrive, and rather than re-learning from scratch, EM restarts
        from the previous arc probabilities with the new items' mixtures
        initialized by frozen-parameter inference.  Typically converges
        in a handful of iterations.
        """
        if old_log.num_nodes != new_log.num_nodes:
            raise ValueError(
                f"logs disagree on num_nodes: {old_log.num_nodes} vs "
                f"{new_log.num_nodes}"
            )
        if result.item_topics.shape[0] != old_log.num_items:
            raise ValueError(
                f"result covers {result.item_topics.shape[0]} items, "
                f"old log has {old_log.num_items}"
            )
        new_gammas = self.infer_item_topics(result, new_log)
        combined_traces = tuple(old_log) + tuple(new_log)
        combined = PropagationLog(old_log.num_nodes, combined_traces)
        init_gammas = np.vstack([result.item_topics, new_gammas])
        saved_max_iter = self._max_iter
        if max_iter is not None:
            if max_iter < 1:
                raise ValueError(f"max_iter must be >= 1, got {max_iter}")
            self._max_iter = int(max_iter)
        try:
            return self.fit(
                combined,
                init_probabilities=result.probabilities,
                init_item_topics=init_gammas,
            )
        finally:
            self._max_iter = saved_max_iter

    def infer_item_topics(
        self,
        result: TICLearningResult,
        log: PropagationLog,
        *,
        iterations: int = 10,
    ) -> np.ndarray:
        """Infer topic mixtures for *new* items' traces.

        Runs the gamma-only coordinate ascent with the learned arc
        probabilities frozen — the online analogue of assigning a topic
        distribution to a fresh item from its early propagation trace.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        trials = self._extract_trials(log)
        z = self._num_topics
        gammas = np.full((log.num_items, z), 1.0 / z)
        for i, item in enumerate(trials):
            gamma = gammas[i]
            for _ in range(iterations):
                _, _, pos_attempts, neg_attempts, hist = self._item_estep(
                    item, result.probabilities, gamma
                )
                del pos_attempts, neg_attempts
                smoothed = hist + self._smoothing
                gamma = smoothed / smoothed.sum()
            gammas[i] = gamma
        return gammas
