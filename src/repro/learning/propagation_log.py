"""Propagation logs: the raw input of TIC parameter learning.

The paper's pipeline (Figure 1) starts from a *log of past propagations*
— in Flixster, timestamped ratings: "user v rated movie i at time t".
An influence episode is a user rating an item after one of their
in-neighbors did.  This module provides the log data model, generation
of synthetic logs by simulating TIC cascades with known ground-truth
parameters, and simple text serialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.propagation.cascade import simulate_item_cascade_trace
from repro.rng import resolve_rng


@dataclass(frozen=True)
class ItemTrace:
    """All activations of one item: parallel node/time arrays.

    ``times`` are nonnegative integers; multiple nodes may share a time
    step (simultaneous activations within a cascade wave).
    """

    item_id: int
    nodes: np.ndarray
    times: np.ndarray

    def __post_init__(self) -> None:
        nodes = np.asarray(self.nodes, dtype=np.int64)
        times = np.asarray(self.times, dtype=np.int64)
        if nodes.shape != times.shape or nodes.ndim != 1:
            raise ValueError(
                f"nodes/times must be parallel 1-D arrays, got "
                f"{nodes.shape} and {times.shape}"
            )
        if nodes.size and np.unique(nodes).size != nodes.size:
            raise ValueError(f"item {self.item_id}: duplicate activations")
        order = np.argsort(times, kind="stable")
        object.__setattr__(self, "nodes", nodes[order])
        object.__setattr__(self, "times", times[order])

    @property
    def num_activations(self) -> int:
        return int(self.nodes.size)

    def activation_times(self, num_nodes: int) -> np.ndarray:
        """Dense per-node activation time; ``-1`` for non-activated."""
        dense = np.full(num_nodes, -1, dtype=np.int64)
        dense[self.nodes] = self.times
        return dense


@dataclass(frozen=True)
class PropagationLog:
    """A collection of per-item propagation traces.

    Attributes
    ----------
    num_nodes:
        Node universe size of the underlying social graph.
    traces:
        One :class:`ItemTrace` per item, indexed by position.
    """

    num_nodes: int
    traces: tuple[ItemTrace, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")
        for trace in self.traces:
            if trace.nodes.size and trace.nodes.max() >= self.num_nodes:
                raise ValueError(
                    f"item {trace.item_id}: node id exceeds num_nodes"
                )

    @property
    def num_items(self) -> int:
        return len(self.traces)

    @property
    def total_activations(self) -> int:
        return sum(trace.num_activations for trace in self.traces)

    def __iter__(self):
        return iter(self.traces)

    def __getitem__(self, index: int) -> ItemTrace:
        return self.traces[index]

    # ------------------------------------------------------------------
    # Serialization (plain text: item node time)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the log as text lines ``item_id node time``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            handle.write(f"# nodes={self.num_nodes}\n")
            for trace in self.traces:
                for node, time in zip(trace.nodes, trace.times):
                    handle.write(f"{trace.item_id} {node} {time}\n")

    @classmethod
    def load(cls, path) -> "PropagationLog":
        """Read a log written by :meth:`save`."""
        source = Path(path)
        num_nodes = None
        per_item: dict[int, list[tuple[int, int]]] = {}
        with source.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    for token in line[1:].split():
                        key, _, value = token.partition("=")
                        if key == "nodes":
                            num_nodes = int(value)
                    continue
                item_id, node, time = (int(x) for x in line.split())
                per_item.setdefault(item_id, []).append((node, time))
        if num_nodes is None:
            num_nodes = 1 + max(
                (node for entries in per_item.values() for node, _ in entries),
                default=0,
            )
        traces = []
        for item_id in sorted(per_item):
            entries = per_item[item_id]
            nodes = np.asarray([n for n, _ in entries], dtype=np.int64)
            times = np.asarray([t for _, t in entries], dtype=np.int64)
            traces.append(ItemTrace(item_id, nodes, times))
        return cls(num_nodes, tuple(traces))


def generate_propagation_log(
    graph: TopicGraph,
    item_topics,
    *,
    seeds_per_item: int = 5,
    cascades_per_item: int = 1,
    seed=None,
) -> PropagationLog:
    """Simulate TIC cascades to produce a synthetic propagation log.

    For each item (row of ``item_topics``), ``cascades_per_item``
    cascades are started from random seed nodes and merged into one
    trace per item (first activation wins), mimicking a rating log where
    an item enters the network at several points.

    This is the stand-in for the Flixster rating log: the generating
    process *is* the TIC model, so the EM learner in
    :mod:`repro.learning.tic_em` can be validated against ground truth.
    """
    if seeds_per_item < 1:
        raise ValueError(f"seeds_per_item must be >= 1, got {seeds_per_item}")
    if cascades_per_item < 1:
        raise ValueError(
            f"cascades_per_item must be >= 1, got {cascades_per_item}"
        )
    rng = resolve_rng(seed)
    topics = np.atleast_2d(np.asarray(item_topics, dtype=np.float64))
    traces = []
    for item_id, gamma in enumerate(topics):
        best_time = np.full(graph.num_nodes, np.iinfo(np.int64).max)
        activated = np.zeros(graph.num_nodes, dtype=bool)
        for _ in range(cascades_per_item):
            starts = rng.choice(
                graph.num_nodes,
                size=min(seeds_per_item, graph.num_nodes),
                replace=False,
            )
            trace = simulate_item_cascade_trace(graph, gamma, starts, rng)
            hit = trace.active
            times = trace.activation_time
            better = hit & (times < best_time)
            best_time[better] = times[better]
            activated |= hit
        nodes = np.flatnonzero(activated)
        traces.append(ItemTrace(item_id, nodes, best_time[nodes]))
    return PropagationLog(graph.num_nodes, tuple(traces))
