"""TIC parameter learning from propagation logs (Barbieri et al.)."""

from repro.learning.propagation_log import (
    ItemTrace,
    PropagationLog,
    generate_propagation_log,
)
from repro.learning.tic_em import TICLearner, TICLearningResult
from repro.learning.evaluation import (
    held_out_log_likelihood_curve,
    match_topics,
    parameter_recovery_correlation,
)
from repro.learning.model_selection import (
    TopicSelectionResult,
    select_num_topics,
)

__all__ = [
    "ItemTrace",
    "PropagationLog",
    "generate_propagation_log",
    "TICLearner",
    "TICLearningResult",
    "held_out_log_likelihood_curve",
    "match_topics",
    "parameter_recovery_correlation",
    "TopicSelectionResult",
    "select_num_topics",
]
