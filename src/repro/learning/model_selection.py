"""Choosing the number of topics ``Z`` for TIC learning.

The paper takes ``Z = 10`` as given ("employing Z = 10 topics"); in
practice the modeler must pick it.  Held-out likelihood is the standard
criterion: split the log's items into train/validation, fit a learner
per candidate ``Z``, and score each on the validation traces using the
learned arc probabilities with per-item mixtures inferred on the fly
(so validation items never influence the arc parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.learning.propagation_log import PropagationLog
from repro.learning.tic_em import TICLearner
from repro.rng import resolve_rng


@dataclass(frozen=True)
class TopicSelectionResult:
    """Held-out scores per candidate ``Z``.

    Attributes
    ----------
    chosen:
        The candidate with the best held-out log-likelihood.
    holdout_log_likelihood:
        Validation log-likelihood per candidate.
    train_log_likelihood:
        Final training log-likelihood per candidate (monotone in ``Z``
        by definition — the overfitting reference).
    """

    chosen: int
    holdout_log_likelihood: dict[int, float]
    train_log_likelihood: dict[int, float]

    def render(self) -> str:
        lines = ["Topic-count selection (held-out likelihood):"]
        for z in sorted(self.holdout_log_likelihood):
            marker = " <-- chosen" if z == self.chosen else ""
            lines.append(
                f"  Z={z}: holdout={self.holdout_log_likelihood[z]:.1f} "
                f"train={self.train_log_likelihood[z]:.1f}{marker}"
            )
        return "\n".join(lines)


def _split_log(
    log: PropagationLog, holdout_fraction: float, rng
) -> tuple[PropagationLog, PropagationLog]:
    num_holdout = max(1, int(round(log.num_items * holdout_fraction)))
    if num_holdout >= log.num_items:
        raise ValueError(
            f"holdout of {num_holdout} items leaves no training items "
            f"(log has {log.num_items})"
        )
    order = rng.permutation(log.num_items)
    holdout_ids = set(order[:num_holdout].tolist())
    train = tuple(
        trace for i, trace in enumerate(log) if i not in holdout_ids
    )
    holdout = tuple(
        trace for i, trace in enumerate(log) if i in holdout_ids
    )
    return (
        PropagationLog(log.num_nodes, train),
        PropagationLog(log.num_nodes, holdout),
    )


def select_num_topics(
    graph: TopicGraph,
    log: PropagationLog,
    candidates=(2, 3, 5, 8),
    *,
    holdout_fraction: float = 0.2,
    max_iter: int = 25,
    seed=None,
) -> TopicSelectionResult:
    """Pick ``Z`` by held-out log-likelihood.

    Parameters
    ----------
    graph:
        The social graph (structure only).
    log:
        Full propagation log; items are split into train/validation.
    candidates:
        Candidate topic counts, each fitted independently.
    holdout_fraction:
        Fraction of items held out for validation.
    max_iter:
        EM budget per candidate.
    """
    candidate_list = sorted(set(int(z) for z in candidates))
    if not candidate_list or candidate_list[0] < 1:
        raise ValueError(
            f"candidates must be positive ints, got {candidates}"
        )
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError(
            f"holdout_fraction must be in (0, 1), got {holdout_fraction}"
        )
    rng = resolve_rng(seed)
    train_log, holdout_log = _split_log(log, holdout_fraction, rng)
    holdout_scores: dict[int, float] = {}
    train_scores: dict[int, float] = {}
    for z in candidate_list:
        learner = TICLearner(
            graph, z, max_iter=max_iter, seed=int(rng.integers(2**31))
        )
        result = learner.fit(
            train_log, init_item_topics="trace-clustering"
        )
        train_scores[z] = result.log_likelihood
        # Validation: arc probabilities frozen; per-item mixtures
        # inferred from each holdout trace.
        holdout_gammas = learner.infer_item_topics(result, holdout_log)
        holdout_scores[z] = learner.log_likelihood(
            holdout_log, result.probabilities, holdout_gammas
        )
    chosen = max(holdout_scores, key=lambda z: holdout_scores[z])
    return TopicSelectionResult(
        chosen=chosen,
        holdout_log_likelihood=holdout_scores,
        train_log_likelihood=train_scores,
    )
