"""Synthetic social-graph generators with topic-dependent influence.

The paper evaluates on Flixster: ~30k users, ~425k directed links, with
TIC parameters learned from a rating log.  That dataset is not
redistributable, so :mod:`repro.datasets.flixster` builds a synthetic
stand-in from the generators in this module.  What matters for the
reproduction is the *statistical signature* the INFLEX pipeline relies
on:

* heavy-tailed degree distribution (a few very influential hubs),
* community structure aligned with topics — users influence each other
  strongly on the topics their community cares about and weakly
  elsewhere, which is what makes topic-blind influence maximization
  perform so poorly in the paper's Figure 8,
* arc probabilities in a realistic (mostly small) range.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.rng import resolve_rng


def _dedupe_arcs(arcs: np.ndarray) -> np.ndarray:
    """Drop self-loops and duplicate arcs, preserving first occurrence."""
    if arcs.size == 0:
        return arcs.reshape(0, 2)
    keep = arcs[:, 0] != arcs[:, 1]
    arcs = arcs[keep]
    # Encode pairs into single ints for a fast unique pass.
    n = int(arcs.max()) + 1 if arcs.size else 1
    codes = arcs[:, 0] * n + arcs[:, 1]
    _, first = np.unique(codes, return_index=True)
    return arcs[np.sort(first)]


def _power_law_out_degrees(
    num_nodes: int, avg_out_degree: float, exponent: float, rng
) -> np.ndarray:
    """Sample out-degrees from a truncated discrete power law, rescaled to
    hit the requested average."""
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    weights *= num_nodes * avg_out_degree / weights.sum()
    degrees = np.maximum(1, np.round(weights)).astype(np.int64)
    return np.minimum(degrees, num_nodes - 1)


def _topic_affinities(
    num_nodes: int,
    num_topics: int,
    rng,
    *,
    concentration: float = 0.25,
) -> np.ndarray:
    """Per-node topic authority profiles.

    A low Dirichlet concentration makes users *specialists*: most of
    their influence mass sits on one or two topics, which is the regime
    in which topic-aware seed selection beats topic-blind selection.
    """
    return rng.dirichlet(np.full(num_topics, concentration), size=num_nodes)


def _arc_probabilities(
    arcs: np.ndarray,
    affinities: np.ndarray,
    rng,
    *,
    base_strength: float,
    strength_noise: float,
    max_probability: float,
) -> np.ndarray:
    """Per-topic probabilities for each arc.

    The probability of ``u`` influencing ``v`` on topic ``z`` is driven by
    the *tail's* authority on ``z`` (an expert spreads their expertise),
    modulated by arc-level noise and normalized by the tail's out-degree
    in the spirit of the weighted-cascade model, so hubs do not become
    implausibly powerful.
    """
    num_topics = affinities.shape[1]
    m = arcs.shape[0]
    if m == 0:
        return np.empty((0, num_topics))
    tails = arcs[:, 0]
    out_deg = np.bincount(tails, minlength=affinities.shape[0]).astype(
        np.float64
    )
    degree_damping = 1.0 / np.sqrt(np.maximum(out_deg[tails], 1.0))
    noise = rng.lognormal(mean=0.0, sigma=strength_noise, size=m)
    scale = base_strength * noise * degree_damping
    probs = affinities[tails] * scale[:, np.newaxis] * num_topics
    return np.clip(probs, 0.0, max_probability)


def power_law_topic_graph(
    num_nodes: int,
    num_topics: int,
    *,
    avg_out_degree: float = 8.0,
    exponent: float = 0.9,
    base_strength: float = 0.08,
    strength_noise: float = 0.5,
    max_probability: float = 0.8,
    affinity_concentration: float = 0.25,
    seed=None,
) -> TopicGraph:
    """Heavy-tailed directed graph with specialist topic influence.

    Targets of each arc are chosen preferentially (head sampling weights
    follow their own power law), giving correlated in/out heavy tails as
    in real follower graphs.
    """
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes}")
    rng = resolve_rng(seed)
    out_degrees = _power_law_out_degrees(
        num_nodes, avg_out_degree, exponent, rng
    )
    head_weights = np.arange(1, num_nodes + 1, dtype=np.float64) ** (-exponent)
    rng.shuffle(head_weights)
    head_weights /= head_weights.sum()
    tails = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degrees)
    heads = rng.choice(num_nodes, size=tails.size, p=head_weights)
    arcs = _dedupe_arcs(np.column_stack((tails, heads)))
    affinities = _topic_affinities(
        num_nodes, num_topics, rng, concentration=affinity_concentration
    )
    probs = _arc_probabilities(
        arcs,
        affinities,
        rng,
        base_strength=base_strength,
        strength_noise=strength_noise,
        max_probability=max_probability,
    )
    return TopicGraph.from_arcs(num_nodes, arcs, probs)


def community_topic_graph(
    num_nodes: int,
    num_topics: int,
    *,
    num_communities: int | None = None,
    avg_out_degree: float = 8.0,
    intra_community_fraction: float = 0.9,
    exponent: float = 0.9,
    base_strength: float = 0.10,
    strength_noise: float = 0.5,
    max_probability: float = 0.8,
    topic_focus: float = 0.9,
    seed=None,
) -> TopicGraph:
    """Community-structured graph with topic-aligned communities.

    Each community has a dominant topic; members' authority profiles put
    ``topic_focus`` of their mass on it (the rest spread uniformly).
    ``intra_community_fraction`` of each node's arcs stay inside the
    community.  This is the Flixster-like default generator: influence
    is strongly topic-localized, so the identity of the best seeds
    changes a lot as the query item moves across the simplex — the
    regime INFLEX is designed for.
    """
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes}")
    if not 0.0 <= intra_community_fraction <= 1.0:
        raise ValueError(
            f"intra_community_fraction must be in [0, 1], got "
            f"{intra_community_fraction}"
        )
    if not 0.0 < topic_focus < 1.0:
        raise ValueError(f"topic_focus must be in (0, 1), got {topic_focus}")
    rng = resolve_rng(seed)
    if num_communities is None:
        num_communities = max(2, num_topics)
    community = rng.integers(num_communities, size=num_nodes)
    community_topic = rng.integers(num_topics, size=num_communities)

    out_degrees = _power_law_out_degrees(
        num_nodes, avg_out_degree, exponent, rng
    )
    # Head sampling: split each node's stubs into intra- and inter-
    # community targets; both use preferential weights.
    head_weights = np.arange(1, num_nodes + 1, dtype=np.float64) ** (-exponent)
    rng.shuffle(head_weights)
    all_tails: list[np.ndarray] = []
    all_heads: list[np.ndarray] = []
    members_by_community = [
        np.flatnonzero(community == c) for c in range(num_communities)
    ]
    for node in range(num_nodes):
        degree = int(out_degrees[node])
        if degree == 0:
            continue
        n_intra = int(round(degree * intra_community_fraction))
        local = members_by_community[community[node]]
        picks: list[np.ndarray] = []
        if n_intra and local.size > 1:
            w = head_weights[local]
            picks.append(rng.choice(local, size=n_intra, p=w / w.sum()))
        n_inter = degree - (picks[0].size if picks else 0)
        if n_inter:
            w = head_weights
            picks.append(
                rng.choice(num_nodes, size=n_inter, p=w / w.sum())
            )
        heads = np.concatenate(picks)
        all_tails.append(np.full(heads.size, node, dtype=np.int64))
        all_heads.append(heads.astype(np.int64))
    arcs = _dedupe_arcs(
        np.column_stack((np.concatenate(all_tails), np.concatenate(all_heads)))
    )

    # Authority profiles: focus on the community topic.
    affinities = np.full(
        (num_nodes, num_topics), (1.0 - topic_focus) / max(num_topics - 1, 1)
    )
    affinities[np.arange(num_nodes), community_topic[community]] = topic_focus
    # Mild per-user noise so communities are not perfectly uniform.
    jitter = rng.dirichlet(np.full(num_topics, 2.0), size=num_nodes)
    affinities = 0.92 * affinities + 0.08 * jitter
    affinities /= affinities.sum(axis=1, keepdims=True)

    probs = _arc_probabilities(
        arcs,
        affinities,
        rng,
        base_strength=base_strength,
        strength_noise=strength_noise,
        max_probability=max_probability,
    )
    return TopicGraph.from_arcs(num_nodes, arcs, probs)


def interest_topic_graph(
    num_nodes: int,
    num_topics: int,
    *,
    topics_per_node: int = 2,
    avg_out_degree: float = 12.0,
    degree_sigma: float = 1.0,
    base_strength: float = 0.25,
    off_topic_ratio: float = 0.02,
    strength_noise: float = 0.5,
    max_probability: float = 0.8,
    topic_popularity_skew: float = 0.3,
    seed=None,
) -> TopicGraph:
    """One global social graph with per-node topical interest sets.

    This is the generator whose parameters mimic what TIC learning
    produces on real data (e.g. Flixster): the *graph structure* is a
    single social network with a lognormal out-degree hierarchy (many
    distinct mid-size influencers below the top hubs), and the
    *per-topic influence* of a user is concentrated on the few topics
    they are expert in — an arc ``(u, v)`` is strong on ``u``'s
    interest topics and more than an order of magnitude weaker
    elsewhere.

    For an item on topic ``z`` the relevant subnetwork is the roughly
    ``topics_per_node / Z`` fraction of users interested in ``z``,
    scattered *throughout* the graph — large, interconnected, and far
    from saturating at realistic seed budgets.  The regime the defaults
    target (verified by the experiment suite):

    * greedy marginal gains decay smoothly over dozens of ranks, so
      seed *rankings* are stable and reproducible (the property behind
      the paper's Kendall-tau evaluations);
    * topic-blind (uniform-mixture) seed selection wastes most of its
      budget on users irrelevant to the query topic, landing well below
      topic-aware selection (the paper's Figure 8);
    * random seeds land far below everything.

    Parameters
    ----------
    topics_per_node:
        Size of each user's interest set (sampled without replacement,
        weighted by global topic popularity).
    avg_out_degree / degree_sigma:
        Mean and lognormal shape of the out-degree distribution.
    base_strength:
        On-topic influence scale (per-arc, before lognormal noise).
    off_topic_ratio:
        Ratio of off-topic to on-topic arc probability.
    topic_popularity_skew:
        0 for equally popular topics; larger values concentrate
        interest on a few globally popular topics.
    """
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes}")
    if not 1 <= topics_per_node <= num_topics:
        raise ValueError(
            f"topics_per_node must be in [1, {num_topics}], "
            f"got {topics_per_node}"
        )
    if not 0.0 <= off_topic_ratio <= 1.0:
        raise ValueError(
            f"off_topic_ratio must be in [0, 1], got {off_topic_ratio}"
        )
    if degree_sigma < 0:
        raise ValueError(f"degree_sigma must be >= 0, got {degree_sigma}")
    rng = resolve_rng(seed)
    raw = rng.lognormal(mean=0.0, sigma=degree_sigma, size=num_nodes)
    out_degrees = np.maximum(
        1, np.round(raw * avg_out_degree / raw.mean())
    ).astype(np.int64)
    out_degrees = np.minimum(out_degrees, num_nodes - 1)
    tails = np.repeat(np.arange(num_nodes, dtype=np.int64), out_degrees)
    # Heads uniform: influence concentration lives in the out-degrees
    # and arc strengths; funneling in-links onto few heads would merge
    # all influencers' audiences into one core and erase the distinct
    # per-seed regions the greedy ranking depends on.
    heads = rng.integers(0, num_nodes, size=tails.size)
    arcs = _dedupe_arcs(np.column_stack((tails, heads)))

    popularity = np.arange(1, num_topics + 1, dtype=np.float64) ** (
        -topic_popularity_skew
    )
    rng.shuffle(popularity)
    popularity /= popularity.sum()
    interests = np.zeros((num_nodes, num_topics), dtype=bool)
    for node in range(num_nodes):
        chosen = rng.choice(
            num_topics, size=topics_per_node, replace=False, p=popularity
        )
        interests[node, chosen] = True

    m = arcs.shape[0]
    arc_tails = arcs[:, 0]
    noise = rng.lognormal(mean=0.0, sigma=strength_noise, size=m)
    on_strength = np.clip(base_strength * noise, 0.0, max_probability)
    probs = np.where(
        interests[arc_tails],
        on_strength[:, np.newaxis],
        (off_topic_ratio * on_strength)[:, np.newaxis],
    )
    return TopicGraph.from_arcs(num_nodes, arcs, probs)


def erdos_renyi_topic_graph(
    num_nodes: int,
    num_topics: int,
    *,
    arc_probability: float = 0.01,
    base_strength: float = 0.1,
    strength_noise: float = 0.5,
    max_probability: float = 0.8,
    seed=None,
) -> TopicGraph:
    """Uniform random directed graph — a structureless control case."""
    if num_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {num_nodes}")
    if not 0.0 <= arc_probability <= 1.0:
        raise ValueError(
            f"arc_probability must be in [0, 1], got {arc_probability}"
        )
    rng = resolve_rng(seed)
    mask = rng.random((num_nodes, num_nodes)) < arc_probability
    np.fill_diagonal(mask, False)
    tails, heads = np.nonzero(mask)
    arcs = np.column_stack((tails, heads)).astype(np.int64)
    affinities = _topic_affinities(num_nodes, num_topics, rng)
    probs = _arc_probabilities(
        arcs,
        affinities,
        rng,
        base_strength=base_strength,
        strength_noise=strength_noise,
        max_probability=max_probability,
    )
    return TopicGraph.from_arcs(num_nodes, arcs, probs)
