"""Directed social graph with per-topic influence probabilities.

The central input object of the paper: a directed graph ``G = (V, A)``
where each arc ``(u, v)`` carries ``Z`` probabilities ``p^z_{u,v}`` — the
strength of ``u``'s influence over ``v`` on each topic.  Given an item
described by a topic distribution ``gamma``, the item-specific arc
probability is the mixture ``p^i_{u,v} = sum_z gamma_z p^z_{u,v}``
(Eq. 1), which turns the topic graph into an ordinary IC instance.

Storage is CSR (compressed sparse row) over the out-adjacency: arcs of
node ``u`` occupy the slice ``indptr[u]:indptr[u+1]`` of ``indices`` (arc
heads) and of the ``(m, Z)`` probability matrix.  A reverse (in-
adjacency) view is built lazily for cascade-learning and RIS, which both
walk arcs backwards.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.errors import InvalidGraphError
from repro.simplex.vectors import as_distribution


class TopicGraph:
    """Immutable directed graph with a ``(num_arcs, num_topics)`` matrix
    of per-topic arc probabilities."""

    def __init__(self, num_nodes: int, indptr, indices, probabilities) -> None:
        self._num_nodes = int(num_nodes)
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._indices = np.asarray(indices, dtype=np.int64)
        self._probabilities = np.asarray(probabilities, dtype=np.float64)
        self._validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arcs(cls, num_nodes: int, arcs, probabilities) -> "TopicGraph":
        """Build a graph from an arc list.

        Parameters
        ----------
        num_nodes:
            Number of nodes ``|V|``; node ids are ``0..num_nodes-1``.
        arcs:
            Sequence of ``(tail, head)`` pairs (or an ``(m, 2)`` array).
        probabilities:
            Array of shape ``(m, Z)`` aligned with ``arcs``: the
            per-topic influence probability of each arc.
        """
        arc_array = np.asarray(arcs, dtype=np.int64)
        if arc_array.size == 0:
            arc_array = arc_array.reshape(0, 2)
        if arc_array.ndim != 2 or arc_array.shape[1] != 2:
            raise InvalidGraphError(
                f"arcs must be an (m, 2) array, got shape {arc_array.shape}"
            )
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.ndim != 2 or probs.shape[0] != arc_array.shape[0]:
            raise InvalidGraphError(
                f"probabilities must be (m, Z) aligned with arcs; got "
                f"{probs.shape} for {arc_array.shape[0]} arcs"
            )
        order = np.lexsort((arc_array[:, 1], arc_array[:, 0]))
        arc_array = arc_array[order]
        probs = probs[order]
        counts = np.bincount(arc_array[:, 0], minlength=num_nodes)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(num_nodes, indptr, arc_array[:, 1], probs)

    def _validate(self) -> None:
        n = self._num_nodes
        if n <= 0:
            raise InvalidGraphError(f"graph needs at least one node, got {n}")
        if self._indptr.ndim != 1 or self._indptr.size != n + 1:
            raise InvalidGraphError(
                f"indptr must have length num_nodes+1={n + 1}, "
                f"got {self._indptr.size}"
            )
        if self._indptr[0] != 0 or np.any(np.diff(self._indptr) < 0):
            raise InvalidGraphError("indptr must start at 0 and be nondecreasing")
        m = int(self._indptr[-1])
        if self._indices.size != m:
            raise InvalidGraphError(
                f"indices length {self._indices.size} != indptr[-1]={m}"
            )
        if m and (self._indices.min() < 0 or self._indices.max() >= n):
            raise InvalidGraphError("arc head out of node range")
        if self._probabilities.ndim != 2 or self._probabilities.shape[0] != m:
            raise InvalidGraphError(
                f"probabilities must be (m, Z) with m={m}, "
                f"got {self._probabilities.shape}"
            )
        if self._probabilities.shape[1] == 0:
            raise InvalidGraphError("graph must have at least one topic")
        if m:
            if not np.all(np.isfinite(self._probabilities)):
                raise InvalidGraphError("probabilities contain NaN/inf")
            if (
                self._probabilities.min() < 0.0
                or self._probabilities.max() > 1.0
            ):
                raise InvalidGraphError("probabilities must lie in [0, 1]")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self._num_nodes

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs ``|A|``."""
        return int(self._indptr[-1])

    @property
    def num_topics(self) -> int:
        """Number of topics ``Z``."""
        return int(self._probabilities.shape[1])

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer over out-arcs, shape ``(num_nodes + 1,)``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR arc heads, shape ``(num_arcs,)``."""
        return self._indices

    @property
    def probabilities(self) -> np.ndarray:
        """Per-topic arc probabilities, shape ``(num_arcs, num_topics)``."""
        return self._probabilities

    def out_degree(self, node: int | None = None):
        """Out-degree of ``node``, or the full out-degree vector."""
        degrees = np.diff(self._indptr)
        if node is None:
            return degrees
        return int(degrees[node])

    def in_degree(self, node: int | None = None):
        """In-degree of ``node``, or the full in-degree vector."""
        degrees = np.bincount(self._indices, minlength=self._num_nodes)
        if node is None:
            return degrees
        return int(degrees[node])

    def successors(self, node: int) -> np.ndarray:
        """Arc heads reachable in one hop from ``node``."""
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def arcs(self) -> np.ndarray:
        """All arcs as an ``(m, 2)`` array of ``(tail, head)`` pairs."""
        tails = np.repeat(
            np.arange(self._num_nodes, dtype=np.int64), np.diff(self._indptr)
        )
        return np.column_stack((tails, self._indices))

    # ------------------------------------------------------------------
    # The paper's Eq. 1: item-specific probabilities
    # ------------------------------------------------------------------
    def item_probabilities(self, gamma) -> np.ndarray:
        """Arc probabilities for an item with topic distribution ``gamma``.

        Implements Eq. 1 of the paper:
        ``p^i_{u,v} = sum_z gamma_z * p^z_{u,v}`` for every arc at once.
        """
        dist = as_distribution(gamma)
        if dist.size != self.num_topics:
            raise InvalidGraphError(
                f"item has {dist.size} topics, graph has {self.num_topics}"
            )
        return self._probabilities @ dist

    def topic_slice(self, topic: int) -> np.ndarray:
        """Arc probabilities for a single pure topic."""
        if not 0 <= topic < self.num_topics:
            raise InvalidGraphError(
                f"topic {topic} out of range [0, {self.num_topics})"
            )
        return self._probabilities[:, topic].copy()

    # ------------------------------------------------------------------
    # Reverse view (lazily built, cached)
    # ------------------------------------------------------------------
    @cached_property
    def reverse_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """In-adjacency CSR: ``(in_indptr, in_tails, in_arc_ids)``.

        ``in_arc_ids[k]`` is the position of the arc in the forward CSR
        arrays, so per-arc probabilities can be gathered for backward
        walks (RIS sampling, cascade-credit learning) without copying
        the ``(m, Z)`` matrix.
        """
        m = self.num_arcs
        order = np.argsort(self._indices, kind="stable")
        heads_sorted = self._indices[order]
        counts = np.bincount(heads_sorted, minlength=self._num_nodes)
        in_indptr = np.concatenate(([0], np.cumsum(counts)))
        tails = np.repeat(
            np.arange(self._num_nodes, dtype=np.int64), np.diff(self._indptr)
        )
        in_tails = tails[order]
        in_arc_ids = order.astype(np.int64)
        assert in_indptr[-1] == m
        return in_indptr, in_tails, in_arc_ids

    def predecessors(self, node: int) -> np.ndarray:
        """Arc tails that point into ``node``."""
        in_indptr, in_tails, _ = self.reverse_view
        return in_tails[in_indptr[node] : in_indptr[node + 1]]

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with a ``probabilities``
        array attribute per arc (mostly for inspection/plotting)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self._num_nodes))
        for arc_id, (tail, head) in enumerate(self.arcs()):
            graph.add_edge(
                int(tail),
                int(head),
                probabilities=self._probabilities[arc_id].copy(),
            )
        return graph

    @classmethod
    def from_networkx(cls, graph, *, num_topics: int | None = None) -> "TopicGraph":
        """Import a :class:`networkx.DiGraph` whose edges carry a
        ``probabilities`` attribute (array of length ``Z``)."""
        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            raise InvalidGraphError(
                "networkx graph must have integer nodes 0..n-1"
            )
        arcs = []
        probs = []
        for tail, head, data in graph.edges(data=True):
            if "probabilities" not in data:
                raise InvalidGraphError(
                    f"edge ({tail}, {head}) lacks a 'probabilities' attribute"
                )
            arcs.append((tail, head))
            probs.append(np.asarray(data["probabilities"], dtype=np.float64))
        if not arcs:
            if num_topics is None:
                raise InvalidGraphError(
                    "cannot infer num_topics from an edgeless graph; "
                    "pass num_topics explicitly"
                )
            return cls.from_arcs(
                len(nodes), np.empty((0, 2)), np.empty((0, num_topics))
            )
        return cls.from_arcs(len(nodes), np.asarray(arcs), np.vstack(probs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TopicGraph(num_nodes={self.num_nodes}, "
            f"num_arcs={self.num_arcs}, num_topics={self.num_topics})"
        )
