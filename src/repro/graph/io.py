"""Persistence for :class:`~repro.graph.topic_graph.TopicGraph`.

Graphs (and their potentially large probability matrices) are stored as
compressed ``.npz`` archives.  A plain-text arc-list format is provided
as an interchange path for graphs produced by external tools.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import InvalidGraphError
from repro.graph.topic_graph import TopicGraph

_FORMAT_VERSION = 1


def save_graph(graph: TopicGraph, path) -> None:
    """Write ``graph`` to ``path`` as a compressed ``.npz`` archive."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        target,
        format_version=np.int64(_FORMAT_VERSION),
        num_nodes=np.int64(graph.num_nodes),
        indptr=graph.indptr,
        indices=graph.indices,
        probabilities=graph.probabilities,
    )


def load_graph(path) -> TopicGraph:
    """Load a graph previously written by :func:`save_graph`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise InvalidGraphError(
                f"unsupported graph format version {version}"
            )
        return TopicGraph(
            int(data["num_nodes"]),
            data["indptr"],
            data["indices"],
            data["probabilities"],
        )


def save_arc_list(graph: TopicGraph, path) -> None:
    """Write a human-readable arc list: ``tail head p_1 ... p_Z``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    arcs = graph.arcs()
    with target.open("w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.num_nodes} topics={graph.num_topics}\n")
        for arc_id in range(graph.num_arcs):
            tail, head = arcs[arc_id]
            probs = " ".join(
                f"{p:.10g}" for p in graph.probabilities[arc_id]
            )
            handle.write(f"{tail} {head} {probs}\n")


def load_arc_list(path) -> TopicGraph:
    """Read a graph from the text format written by :func:`save_arc_list`."""
    source = Path(path)
    num_nodes = None
    num_topics = None
    arcs: list[tuple[int, int]] = []
    probs: list[list[float]] = []
    with source.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    key, _, value = token.partition("=")
                    if key == "nodes":
                        num_nodes = int(value)
                    elif key == "topics":
                        num_topics = int(value)
                continue
            fields = line.split()
            if num_topics is not None and len(fields) != 2 + num_topics:
                raise InvalidGraphError(
                    f"{source}:{line_no}: expected {2 + num_topics} fields, "
                    f"got {len(fields)}"
                )
            arcs.append((int(fields[0]), int(fields[1])))
            probs.append([float(x) for x in fields[2:]])
    if num_nodes is None:
        num_nodes = 1 + max(
            (max(tail, head) for tail, head in arcs), default=-1
        )
    if not arcs:
        raise InvalidGraphError(f"{source}: no arcs found")
    return TopicGraph.from_arcs(num_nodes, np.asarray(arcs), np.asarray(probs))
