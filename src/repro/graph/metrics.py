"""Descriptive statistics of topic graphs.

The synthetic dataset's usefulness rests on specific statistical
signatures (DESIGN.md §2): heavy-tailed influencer hierarchies,
topic-localized influence, near-critical propagation.  This module
computes the diagnostics that verify those signatures — used by the
dataset tests and handy when tuning a generator toward a new target
network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.topic_graph import TopicGraph
from repro.simplex.vectors import uniform_distribution


@dataclass(frozen=True)
class GraphSummary:
    """Structural and influence statistics of a topic graph.

    Attributes
    ----------
    num_nodes / num_arcs / num_topics:
        Basic dimensions.
    mean_out_degree / max_out_degree / degree_gini:
        Out-degree level and inequality (Gini of the out-degree
        distribution; higher = steeper influencer hierarchy).
    mean_arc_probability:
        Mean per-topic arc probability over all (arc, topic) pairs.
    topic_concentration:
        Mean Herfindahl index of each arc's probability vector across
        topics (1/Z for topic-blind arcs, 1.0 for single-topic arcs) —
        the "how topic-localized is influence" diagnostic.
    branching_factor:
        Expected number of direct activations triggered by a uniformly
        random activated node under a uniform item — the subcritical /
        supercritical propagation proxy (percolation near 1.0).
    reciprocity:
        Fraction of arcs whose reverse arc also exists.
    """

    num_nodes: int
    num_arcs: int
    num_topics: int
    mean_out_degree: float
    max_out_degree: int
    degree_gini: float
    mean_arc_probability: float
    topic_concentration: float
    branching_factor: float
    reciprocity: float

    def render(self) -> str:
        lines = [
            "Graph summary:",
            f"  nodes={self.num_nodes} arcs={self.num_arcs} "
            f"topics={self.num_topics}",
            f"  out-degree: mean={self.mean_out_degree:.2f} "
            f"max={self.max_out_degree} gini={self.degree_gini:.3f}",
            f"  arc probability: mean={self.mean_arc_probability:.4f}",
            f"  topic concentration (HHI): {self.topic_concentration:.3f} "
            f"(1/Z = {1.0 / self.num_topics:.3f} is topic-blind)",
            f"  branching factor (uniform item): {self.branching_factor:.3f}",
            f"  reciprocity: {self.reciprocity:.3f}",
        ]
        return "\n".join(lines)


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample."""
    sorted_values = np.sort(np.asarray(values, dtype=np.float64))
    n = sorted_values.size
    if n == 0 or sorted_values.sum() == 0:
        return 0.0
    cumulative = np.cumsum(sorted_values)
    return float(
        (n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n
    )


def summarize_graph(graph: TopicGraph) -> GraphSummary:
    """Compute the :class:`GraphSummary` diagnostics for ``graph``."""
    degrees = graph.out_degree()
    probs = graph.probabilities
    if graph.num_arcs:
        mean_prob = float(probs.mean())
        row_sums = probs.sum(axis=1)
        safe = np.where(row_sums > 0, row_sums, 1.0)
        shares = probs / safe[:, np.newaxis]
        concentration = float((shares**2).sum(axis=1).mean())
        uniform_probs = graph.item_probabilities(
            uniform_distribution(graph.num_topics)
        )
        branching = float(uniform_probs.sum() / graph.num_nodes)
        arcs = graph.arcs()
        arc_set = {(int(t), int(h)) for t, h in arcs}
        reciprocated = sum(
            1 for tail, head in arc_set if (head, tail) in arc_set
        )
        reciprocity = reciprocated / len(arc_set)
    else:
        mean_prob = 0.0
        concentration = 1.0 / graph.num_topics
        branching = 0.0
        reciprocity = 0.0
    return GraphSummary(
        num_nodes=graph.num_nodes,
        num_arcs=graph.num_arcs,
        num_topics=graph.num_topics,
        mean_out_degree=float(degrees.mean()),
        max_out_degree=int(degrees.max()) if degrees.size else 0,
        degree_gini=_gini(degrees),
        mean_arc_probability=mean_prob,
        topic_concentration=concentration,
        branching_factor=branching,
        reciprocity=reciprocity,
    )


def per_topic_strength(graph: TopicGraph) -> np.ndarray:
    """Total influence mass per topic: ``sum over arcs of p^z``.

    Reveals topic popularity imbalance — which topics have strong
    influence networks at all.
    """
    if graph.num_arcs == 0:
        return np.zeros(graph.num_topics)
    return graph.probabilities.sum(axis=0)
